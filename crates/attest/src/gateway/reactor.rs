//! The event-driven gateway I/O driver: sharded readiness loops.
//!
//! Where the thread-pool driver parks one OS thread per in-flight
//! connection, this driver runs `reactor_shards` event loops, each owning
//! a [`Poller`], a [`DeadlineWheel`], and a slab of per-connection state
//! machines. A connection never owns a thread: it is a continuation that
//! advances when its socket (or loopback notifier) reports readiness or
//! one of its deadlines fires. One shard comfortably holds thousands of
//! concurrent connections, so a single verifier process scales to the
//! fleet sizes of the paper's deployment story instead of the thread
//! count of its host.
//!
//! **Protocol semantics are shared, not re-derived.** The per-connection
//! state machine drives the exact same building blocks as the blocking
//! path: [`DriverCursor`] for one-shot retry accounting,
//! [`crate::channel`] for the attested handshake and sealed rounds, the
//! shared session table for resume, and [`super::record_conclusion`] for
//! the fleet ledger. The global [`super::GatewayStats`] partition laws
//! hold identically; each shard additionally satisfies its own law
//! ([`ShardSnapshot::partition_holds`]).
//!
//! Admission control mirrors the bounded queue: the accept thread
//! assigns each connection to the least-loaded shard, and when every
//! shard is at `max_conns_per_shard` it sheds with the same one-frame
//! `Busy` — deterministic, cheap, and honest provers already know to
//! back off.
//!
//! Two deliberate divergences from the blocking driver, both strictly
//! kinder to honest peers: per-session trace *spans* are not recorded
//! (a span guard cannot straddle poll iterations; all metrics counters
//! are identical), and a response frame arriving during a retry backoff
//! is discarded instead of being misread as the next attempt's answer.

use std::collections::VecDeque;
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use proverguard_reactor::{DeadlineWheel, Event, Events, Interest, Poller, TimerId, Token, Waker};
use proverguard_telemetry::metrics;
use proverguard_telemetry::trace;
use proverguard_transport::nb::{NbTransport, RawFd, ReadySource};
use proverguard_transport::{Acceptor, TransportError};

use crate::channel::{self, HandshakeAccept, HandshakeInit};
use crate::fleet::FleetController;
use crate::message::{AttestRequest, AttestResponse};
use crate::session::{AttemptOutcome, DriverCursor, DriverStep, RetryPolicy};

use super::{
    record_conclusion, DeviceDirectory, GatewayConfig, GatewayHandle, GatewayMsg, GatewayShared,
    GatewayStats, SessionEntry, SessionTable, ThreadExit,
};

/// Deadline-wheel granularity: timers fire never early and at most this
/// many milliseconds late. 4 ms is far below every protocol timeout and
/// keeps the idle poll cadence cheap.
const WHEEL_GRANULARITY_MS: u64 = 4;
const WHEEL_SLOTS: usize = 1024;

// ---------------------------------------------------------------------------
// Per-shard stats
// ---------------------------------------------------------------------------

/// Live per-shard counters (atomics; written by the shard's event loop
/// and the accept thread, read by observers and the CI partition check).
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Connections assigned to this shard by the accept thread.
    pub(super) assigned: AtomicU64,
    /// Connections currently owned by the shard (inbox + registered).
    pub(super) registered: AtomicU64,
    /// Assigned connections that died before/during handshake.
    pub(super) handshake_failed: AtomicU64,
    /// Assigned connections concluded with a verified attestation.
    pub(super) sessions_ok: AtomicU64,
    /// Assigned connections concluded without one.
    pub(super) sessions_failed: AtomicU64,
    /// Readiness events delivered to this shard's connections.
    pub(super) readiness_events: AtomicU64,
    /// Deadline-wheel timers that actually fired (stale ones excluded).
    pub(super) deadline_expiries: AtomicU64,
}

impl ShardStats {
    /// Connections currently charged to the shard, as the accept thread
    /// sees them when balancing load and enforcing the per-shard cap.
    fn load(&self) -> u64 {
        self.registered.load(Ordering::SeqCst)
    }

    pub(super) fn snapshot(&self, shard: usize) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            assigned: self.assigned.load(Ordering::SeqCst),
            registered: self.registered.load(Ordering::SeqCst),
            handshake_failed: self.handshake_failed.load(Ordering::SeqCst),
            sessions_ok: self.sessions_ok.load(Ordering::SeqCst),
            sessions_failed: self.sessions_failed.load(Ordering::SeqCst),
            readiness_events: self.readiness_events.load(Ordering::SeqCst),
            deadline_expiries: self.deadline_expiries.load(Ordering::SeqCst),
        }
    }
}

/// A point-in-time copy of one shard's [`ShardStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Shard index (0-based).
    pub shard: usize,
    /// Connections assigned to this shard by the accept thread.
    pub assigned: u64,
    /// Connections the shard still owns (0 once quiesced).
    pub registered: u64,
    /// Assigned connections that died before/during handshake.
    pub handshake_failed: u64,
    /// Assigned connections concluded with a verified attestation.
    pub sessions_ok: u64,
    /// Assigned connections concluded without one.
    pub sessions_failed: u64,
    /// Readiness events the shard's poller delivered.
    pub readiness_events: u64,
    /// Deadline-wheel timers that fired (stale timers excluded).
    pub deadline_expiries: u64,
}

impl ShardSnapshot {
    /// The shard-level conservation law, mirroring the global one: every
    /// connection assigned to the shard is exactly one of still-owned,
    /// handshake-failed, session-ok or session-failed. Exact once the
    /// shard quiesces (`registered == 0` after shutdown).
    #[must_use]
    pub fn partition_holds(&self) -> bool {
        self.assigned
            == self.registered + self.handshake_failed + self.sessions_ok + self.sessions_failed
    }
}

// ---------------------------------------------------------------------------
// Startup
// ---------------------------------------------------------------------------

/// A freshly accepted connection travelling from the accept thread to a
/// shard's inbox.
struct NewConn {
    nb: Box<dyn NbTransport>,
    accepted_at: Instant,
}

/// The accept thread's view of one shard.
struct ShardPort {
    inbox: Arc<Mutex<VecDeque<NewConn>>>,
    waker: Waker,
    stats: Arc<ShardStats>,
}

pub(super) fn start(
    acceptor: Box<dyn Acceptor>,
    directory: DeviceDirectory,
    config: GatewayConfig,
) -> GatewayHandle {
    let shards_n = config.reactor_shards.max(1);
    let fleet = FleetController::new(directory.len(), config.fleet);
    let shared = Arc::new(GatewayShared {
        directory,
        fleet: Mutex::new(fleet),
        stats: GatewayStats::new(shards_n),
        config,
        started: Instant::now(),
        sessions: Mutex::new(SessionTable::default()),
    });
    let shutdown = Arc::new(AtomicBool::new(false));

    let mut ports = Vec::with_capacity(shards_n);
    let mut shard_stats = Vec::with_capacity(shards_n);
    let mut shard_wakers = Vec::with_capacity(shards_n);
    let mut workers = Vec::with_capacity(shards_n);
    for idx in 0..shards_n {
        let stats = Arc::new(ShardStats::default());
        let inbox: Arc<Mutex<VecDeque<NewConn>>> = Arc::new(Mutex::new(VecDeque::new()));
        let poller = Poller::new().expect("create shard poller");
        let waker = poller.waker();
        ports.push(ShardPort {
            inbox: Arc::clone(&inbox),
            waker: waker.clone(),
            stats: Arc::clone(&stats),
        });
        shard_stats.push(Arc::clone(&stats));
        shard_wakers.push(waker);
        let shard = Shard {
            idx,
            ctx: Arc::clone(&shared),
            stats,
            poller,
            events: Events::with_capacity(1024),
            wheel: DeadlineWheel::new(WHEEL_GRANULARITY_MS, WHEEL_SLOTS),
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            inbox,
            shutdown: Arc::clone(&shutdown),
            spans: 0,
        };
        workers.push(
            thread::Builder::new()
                .name(format!("gw-shard-{idx}"))
                .spawn(move || shard.run())
                .expect("spawn gateway shard"),
        );
    }

    let accept_thread = {
        let ctx = Arc::clone(&shared);
        let flag = Arc::clone(&shutdown);
        thread::Builder::new()
            .name("gw-accept".to_string())
            .spawn(move || accept_main(acceptor, ports, &ctx, &flag))
            .expect("spawn gateway accept loop")
    };

    GatewayHandle {
        shared,
        shutdown,
        accept_thread,
        workers,
        shard_stats,
        shard_wakers,
    }
}

fn accept_main(
    mut acceptor: Box<dyn Acceptor>,
    ports: Vec<ShardPort>,
    ctx: &GatewayShared,
    shutdown: &AtomicBool,
) -> ThreadExit {
    metrics::reset();
    let poll = Duration::from_millis(ctx.config.accept_poll_ms.max(1));
    let cap = ctx.config.max_conns_per_shard.max(1) as u64;
    while !shutdown.load(Ordering::SeqCst) {
        let conn = match acceptor.poll_accept(poll) {
            Ok(Some(conn)) => conn,
            Ok(None) => continue,
            Err(_) => break,
        };
        ctx.stats.accepted.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.accepted", 1);
        let (best, load) = ports
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.stats.load()))
            .min_by_key(|&(_, load)| load)
            .expect("at least one shard");
        if load >= cap {
            // Every shard is full: the reactor's "queue full". Same
            // deterministic one-frame shed as the thread-pool driver.
            ctx.stats.busy_rejected.fetch_add(1, Ordering::SeqCst);
            metrics::counter_add("gateway.busy", 1);
            let mut conn = conn;
            let _ = conn.set_deadline(Some(Duration::from_millis(ctx.config.write_timeout_ms)));
            let _ = conn.send(&GatewayMsg::Busy.encode());
            continue;
        }
        match conn.into_nb() {
            Ok(nb) => {
                ctx.stats.enqueued.fetch_add(1, Ordering::SeqCst);
                let port = &ports[best];
                port.stats.assigned.fetch_add(1, Ordering::SeqCst);
                let owned = port.stats.registered.fetch_add(1, Ordering::SeqCst) + 1;
                ctx.stats.queue_peak.fetch_max(owned, Ordering::SeqCst);
                port.inbox
                    .lock()
                    .expect("shard inbox poisoned")
                    .push_back(NewConn {
                        nb,
                        accepted_at: Instant::now(),
                    });
                port.waker.wake();
            }
            Err(_) => {
                // A transport with no non-blocking mode (e.g. an
                // adversarial wrapper): account it as an enqueued
                // connection that failed before handshake, so the global
                // partition law stays exact.
                ctx.stats.enqueued.fetch_add(1, Ordering::SeqCst);
                ctx.stats.handshake_failed.fetch_add(1, Ordering::SeqCst);
                metrics::counter_add("gateway.handshake_failed", 1);
                metrics::counter_add("gateway.reactor.nb_unsupported", 1);
            }
        }
    }
    ThreadExit {
        registry: metrics::snapshot(),
        spans: 0,
        dropped_spans: 0,
    }
}

// ---------------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimerKind {
    /// Establishment budget: first hello, and the whole attested
    /// handshake, share one deadline (slowloris defence).
    Establish,
    /// The device's `service_floor_ms` wait (a timer, never a sleep).
    Floor,
    /// One in-flight attempt / in-session round awaiting its response.
    Attempt,
    /// Between one-shot retries.
    Backoff,
    /// Flushing buffered writes after conclusion.
    Drain,
}

/// What to start once the service-floor timer fires.
enum AfterFloor {
    Oneshot,
    Handshake,
    Round(Box<SessionEntry>),
}

enum ConnState {
    /// Waiting for the first frame (Hello / SessHello).
    AwaitHello,
    /// Service-floor wait; frames arriving early are buffered.
    Floor { next: AfterFloor },
    /// One-shot attestation driven by a [`DriverCursor`]. `request` is
    /// the in-flight attempt's request while `awaiting`, the backoff
    /// timer owns the connection otherwise.
    Oneshot {
        cursor: DriverCursor,
        request: Option<AttestRequest>,
        awaiting: bool,
    },
    /// Attested handshake: `SessInit` sent, awaiting `SessAccept`.
    Handshake {
        init: HandshakeInit,
        request: AttestRequest,
    },
    /// One sealed in-session round: request sealed out, awaiting the
    /// sealed reply. The session is held out of the table (fail closed).
    Round {
        session: Box<SessionEntry>,
        request: AttestRequest,
    },
    /// Concluded; flushing buffered writes before close.
    Draining,
}

struct Conn {
    nb: Box<dyn NbTransport>,
    fd: Option<RawFd>,
    token: Token,
    device_id: u64,
    state: ConnState,
    timer: Option<(TimerId, TimerKind)>,
    /// Absolute (gateway-clock) establishment deadline in ms.
    establish_deadline_ms: u64,
    /// Set when the link is unrecoverable; later attempts fail instantly
    /// (mirrors `GatewayLink::dead`).
    link_dead: bool,
    write_interest: bool,
    /// Frames received while a floor timer holds the connection.
    pending: VecDeque<Vec<u8>>,
    closed: bool,
}

// ---------------------------------------------------------------------------
// Shard event loop
// ---------------------------------------------------------------------------

struct Shard {
    idx: usize,
    ctx: Arc<GatewayShared>,
    stats: Arc<ShardStats>,
    poller: Poller,
    events: Events,
    wheel: DeadlineWheel,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    inbox: Arc<Mutex<VecDeque<NewConn>>>,
    shutdown: Arc<AtomicBool>,
    spans: u64,
}

impl Shard {
    fn run(mut self) -> ThreadExit {
        metrics::reset();
        trace::reset();
        trace::set_capacity(self.ctx.config.trace_capacity.max(16));
        trace::enable();
        let mut fired: Vec<(TimerId, Token)> = Vec::new();
        let mut batch: Vec<Event> = Vec::new();
        loop {
            self.drain_inbox();
            if self.shutdown.load(Ordering::SeqCst)
                && self.live == 0
                && self.inbox.lock().expect("shard inbox poisoned").is_empty()
            {
                break;
            }
            let timeout = self.wheel.next_timeout_ms().map(Duration::from_millis);
            let _ = self.poller.poll(&mut self.events, timeout);
            batch.clear();
            batch.extend(self.events.iter().copied());
            if !batch.is_empty() {
                self.stats
                    .readiness_events
                    .fetch_add(batch.len() as u64, Ordering::SeqCst);
                metrics::counter_add("gateway.reactor.readiness_events", batch.len() as u64);
            }
            for ev in &batch {
                self.handle_event(*ev);
            }
            fired.clear();
            let now = self.ctx.elapsed_ms();
            self.wheel.advance(now, &mut fired);
            for (id, token) in fired.drain(..) {
                self.handle_timer(id, token);
            }
            // Keep the trace ring shallow, preserving the dropped count.
            self.spans += trace::drain()
                .iter()
                .filter(|e| matches!(e, proverguard_telemetry::trace::TraceEvent::Span { .. }))
                .count() as u64;
        }
        ThreadExit {
            registry: metrics::snapshot(),
            spans: self.spans,
            dropped_spans: trace::dropped(),
        }
    }

    // -- connection lifecycle ------------------------------------------------

    fn drain_inbox(&mut self) {
        loop {
            let new = self.inbox.lock().expect("shard inbox poisoned").pop_front();
            let Some(new) = new else { break };
            self.register_conn(new);
        }
    }

    fn register_conn(&mut self, new: NewConn) {
        metrics::histogram_record(
            "gateway.queue_wait_us",
            u64::try_from(new.accepted_at.elapsed().as_micros()).unwrap_or(u64::MAX),
        );
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = Token(slot);
        let mut nb = new.nb;
        let fd = match nb.ready_source() {
            ReadySource::Fd(fd) => {
                if self.poller.register(fd, token, Interest::READABLE).is_err() {
                    // Cannot observe readiness: the connection is dead on
                    // arrival. Same accounting as a link failure.
                    self.free.push(slot);
                    self.fail_handshake("gateway.handshake.link");
                    self.stats.registered.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                Some(fd)
            }
            ReadySource::Notify => match self.poller.notifier(token) {
                Ok(notifier) => {
                    nb.attach_notifier(notifier);
                    None
                }
                Err(_) => {
                    self.free.push(slot);
                    self.fail_handshake("gateway.handshake.link");
                    self.stats.registered.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
            },
        };
        self.ctx.stats.per_worker_sessions[self.idx].fetch_add(1, Ordering::SeqCst);
        let establish_deadline_ms = self
            .ctx
            .elapsed_ms()
            .saturating_add(self.ctx.config.read_timeout_ms);
        let mut conn = Conn {
            nb,
            fd,
            token,
            device_id: u64::MAX,
            state: ConnState::AwaitHello,
            timer: None,
            establish_deadline_ms,
            link_dead: false,
            write_interest: false,
            pending: VecDeque::new(),
            closed: false,
        };
        self.arm(
            &mut conn,
            TimerKind::Establish,
            self.ctx.config.read_timeout_ms,
        );
        self.conns[slot] = Some(conn);
        self.live += 1;
        metrics::gauge_set("gateway.reactor.registered", self.live as u64);
    }

    /// Tears the connection down: timers cancelled, fd deregistered, slot
    /// recycled. Every terminal path funnels through here exactly once.
    fn finish_close(&mut self, mut conn: Conn) {
        if let Some((id, _)) = conn.timer.take() {
            self.wheel.cancel(id);
        }
        if let Some(fd) = conn.fd {
            let _ = self.poller.deregister(fd);
        }
        let slot = conn.token.0;
        drop(conn);
        self.conns[slot] = None;
        self.free.push(slot);
        self.live -= 1;
        self.stats.registered.fetch_sub(1, Ordering::SeqCst);
        metrics::gauge_set("gateway.reactor.registered", self.live as u64);
    }

    // -- readiness dispatch --------------------------------------------------

    fn handle_event(&mut self, ev: Event) {
        let Some(mut conn) = self.conns.get_mut(ev.token.0).and_then(Option::take) else {
            return;
        };
        if ev.writable && !conn.closed {
            self.pump_write(&mut conn);
        }
        if (ev.readable || ev.hangup) && !conn.closed {
            self.pump_read(&mut conn);
        }
        if conn.closed {
            self.finish_close(conn);
        } else {
            self.conns[ev.token.0] = Some(conn);
        }
    }

    fn handle_timer(&mut self, id: TimerId, token: Token) {
        let Some(mut conn) = self.conns.get_mut(token.0).and_then(Option::take) else {
            return;
        };
        let stale = conn.timer.map(|(tid, _)| tid) != Some(id);
        if stale {
            self.conns[token.0] = Some(conn);
            return;
        }
        let (_, kind) = conn.timer.take().expect("timer checked above");
        self.stats.deadline_expiries.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.reactor.deadline_expiries", 1);
        match kind {
            TimerKind::Establish => match conn.state {
                ConnState::AwaitHello => {
                    // Same label the blocking driver uses when the first
                    // read dies.
                    self.fail_handshake("gateway.handshake.link");
                    conn.closed = true;
                }
                ConnState::Handshake { .. } => {
                    self.fail_handshake("gateway.handshake.deadline");
                    conn.closed = true;
                }
                _ => {}
            },
            TimerKind::Floor => {
                if let ConnState::Floor { next } =
                    mem::replace(&mut conn.state, ConnState::Draining)
                {
                    match next {
                        AfterFloor::Oneshot => self.start_oneshot(&mut conn),
                        AfterFloor::Handshake => self.start_handshake(&mut conn),
                        AfterFloor::Round(session) => self.start_round(&mut conn, *session),
                    }
                    // Frames the peer sent while the floor held us.
                    while let Some(frame) = conn.pending.pop_front() {
                        if conn.closed {
                            break;
                        }
                        self.on_frame(&mut conn, &frame);
                    }
                }
            }
            TimerKind::Attempt => match mem::replace(&mut conn.state, ConnState::Draining) {
                ConnState::Oneshot {
                    cursor,
                    awaiting: true,
                    ..
                } => {
                    self.advance_oneshot(&mut conn, cursor, AttemptOutcome::ResponseLost);
                }
                ConnState::Round { session, .. } => {
                    self.teardown_session("gateway.session.link");
                    drop(session);
                    self.conclude(&mut conn, false);
                }
                other => conn.state = other,
            },
            TimerKind::Backoff => match mem::replace(&mut conn.state, ConnState::Draining) {
                ConnState::Oneshot {
                    cursor,
                    awaiting: false,
                    ..
                } => self.run_attempts(&mut conn, cursor),
                other => conn.state = other,
            },
            TimerKind::Drain => {
                // Could not flush within the write budget; drop the rest.
                conn.closed = true;
            }
        }
        if conn.closed {
            self.finish_close(conn);
        } else {
            self.conns[token.0] = Some(conn);
        }
    }

    fn pump_read(&mut self, conn: &mut Conn) {
        loop {
            if conn.closed {
                return;
            }
            match conn.nb.try_recv() {
                Ok(Some(frame)) => self.on_frame(conn, &frame),
                Ok(None) => return,
                Err(e) => {
                    self.on_link_error(conn, &e);
                    return;
                }
            }
        }
    }

    fn pump_write(&mut self, conn: &mut Conn) {
        match conn.nb.flush() {
            Ok(true) => {
                self.set_write_interest(conn, false);
                if matches!(conn.state, ConnState::Draining) {
                    conn.closed = true;
                }
            }
            Ok(false) => {}
            Err(_) => {
                conn.link_dead = true;
                conn.closed = true;
            }
        }
    }

    // -- frame dispatch ------------------------------------------------------

    fn on_frame(&mut self, conn: &mut Conn, bytes: &[u8]) {
        let msg = GatewayMsg::decode(bytes);
        match mem::replace(&mut conn.state, ConnState::Draining) {
            ConnState::AwaitHello => self.on_hello(conn, msg),
            ConnState::Floor { next } => {
                conn.pending.push_back(bytes.to_vec());
                conn.state = ConnState::Floor { next };
            }
            ConnState::Oneshot {
                cursor,
                request,
                awaiting,
            } => {
                if !awaiting {
                    // A response surfacing during backoff is stale: the
                    // attempt it answers has already been recorded lost.
                    conn.state = ConnState::Oneshot {
                        cursor,
                        request,
                        awaiting,
                    };
                    return;
                }
                let outcome = self.oneshot_outcome(conn, request.as_ref(), &msg);
                self.advance_oneshot(conn, cursor, outcome);
            }
            ConnState::Handshake { init, request } => {
                self.on_handshake_reply(conn, &init, &request, &msg);
            }
            ConnState::Round { session, request } => {
                self.on_round_reply(conn, *session, &request, &msg);
            }
            ConnState::Draining => {
                // Drained and discarded: level-triggered readiness must
                // consume or it spins.
            }
        }
    }

    fn on_hello(&mut self, conn: &mut Conn, msg: Result<GatewayMsg, crate::error::AttestError>) {
        match msg {
            Ok(GatewayMsg::Hello { device_id }) => {
                conn.device_id = device_id;
                let Some(entry) = self.ctx.directory.get(device_id) else {
                    self.unknown_device(conn);
                    return;
                };
                let floor = entry.service_floor_ms;
                self.clear_timer(conn);
                if floor > 0 {
                    conn.state = ConnState::Floor {
                        next: AfterFloor::Oneshot,
                    };
                    self.arm(conn, TimerKind::Floor, floor);
                } else {
                    self.start_oneshot(conn);
                }
            }
            Ok(GatewayMsg::SessHello {
                device_id,
                session_id: None,
            }) => {
                conn.device_id = device_id;
                let Some(entry) = self.ctx.directory.get(device_id) else {
                    self.unknown_device(conn);
                    return;
                };
                let floor = entry.service_floor_ms;
                self.clear_timer(conn);
                if floor > 0 {
                    conn.state = ConnState::Floor {
                        next: AfterFloor::Handshake,
                    };
                    self.arm(conn, TimerKind::Floor, floor);
                } else {
                    self.start_handshake(conn);
                }
            }
            Ok(GatewayMsg::SessHello {
                device_id,
                session_id: Some(sid),
            }) => {
                conn.device_id = device_id;
                let Some(entry) = self.ctx.directory.get(device_id) else {
                    self.unknown_device(conn);
                    return;
                };
                let floor = entry.service_floor_ms;
                let now_ms = self.ctx.elapsed_ms();
                let taken = self
                    .ctx
                    .sessions
                    .lock()
                    .expect("session table lock poisoned")
                    .take(
                        device_id,
                        sid,
                        now_ms,
                        self.ctx.config.session_idle_ms,
                        &self.ctx.stats,
                    );
                let Some(session) = taken else {
                    // Unknown/expired/foreign sid: cheap reject, no key
                    // material consulted.
                    self.fail_handshake("gateway.session.expired_lookup");
                    self.enqueue_msg(conn, &GatewayMsg::Reject(channel_expired()));
                    self.enqueue_msg(conn, &GatewayMsg::Bye { verified: false });
                    self.begin_drain(conn);
                    return;
                };
                self.clear_timer(conn);
                if floor > 0 {
                    conn.state = ConnState::Floor {
                        next: AfterFloor::Round(Box::new(session)),
                    };
                    self.arm(conn, TimerKind::Floor, floor);
                } else {
                    self.start_round(conn, session);
                }
            }
            Ok(_) | Err(_) => {
                self.fail_handshake("gateway.handshake.garbage");
                conn.closed = true;
            }
        }
    }

    fn unknown_device(&mut self, conn: &mut Conn) {
        self.fail_handshake("gateway.handshake.unknown_device");
        self.enqueue_msg(conn, &GatewayMsg::Bye { verified: false });
        self.begin_drain(conn);
    }

    // -- one-shot path (DriverCursor) ----------------------------------------

    fn start_oneshot(&mut self, conn: &mut Conn) {
        let policy = RetryPolicy {
            jitter_seed: self.ctx.config.retry.jitter_seed ^ conn.device_id,
            ..self.ctx.config.retry
        };
        let cursor = DriverCursor::new(policy);
        self.run_attempts(conn, cursor);
    }

    /// Launches attempts until one is in flight (awaiting I/O or a
    /// backoff timer) or the cursor completes. Mirrors the front half of
    /// `GatewayLink::attempt` plus the `SessionDriver::run` loop; a dead
    /// link burns the remaining budget synchronously, exactly like
    /// `GatewayLink::wait_ms` refusing to sleep.
    fn run_attempts(&mut self, conn: &mut Conn, mut cursor: DriverCursor) {
        loop {
            let outcome = if conn.link_dead {
                Some(AttemptOutcome::RequestLost)
            } else {
                let entry = self
                    .ctx
                    .directory
                    .get(conn.device_id)
                    .expect("device checked at hello");
                let request = {
                    let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
                    let now = self.ctx.elapsed_ms().max(verifier.now_ms());
                    verifier.set_time_ms(now);
                    verifier.make_request()
                };
                match request {
                    Err(e) => Some(AttemptOutcome::Error(e)),
                    Ok(request) => {
                        match self.send_framed(conn, &GatewayMsg::AttReq(request.to_bytes())) {
                            Ok(()) => {
                                let timeout = cursor.timeout_ms().max(1);
                                conn.state = ConnState::Oneshot {
                                    cursor,
                                    request: Some(request),
                                    awaiting: true,
                                };
                                self.arm(conn, TimerKind::Attempt, timeout);
                                return;
                            }
                            Err(e) => {
                                conn.link_dead = !e.is_transient();
                                Some(AttemptOutcome::RequestLost)
                            }
                        }
                    }
                }
            };
            let outcome = outcome.expect("non-inflight branches produce an outcome");
            match cursor.record(outcome) {
                DriverStep::Done => {
                    let verified = cursor.report().succeeded();
                    self.conclude(conn, verified);
                    return;
                }
                DriverStep::Retry { backoff_ms } => {
                    trace::event_with("session.backoff", backoff_ms);
                    if conn.link_dead {
                        continue;
                    }
                    let nap = backoff_ms.min(self.ctx.config.backoff_cap_ms);
                    conn.state = ConnState::Oneshot {
                        cursor,
                        request: None,
                        awaiting: false,
                    };
                    self.arm(conn, TimerKind::Backoff, nap);
                    return;
                }
            }
        }
    }

    /// Judges one received frame as the in-flight attempt's outcome,
    /// mirroring the back half of `GatewayLink::attempt`.
    fn oneshot_outcome(
        &mut self,
        conn: &mut Conn,
        request: Option<&AttestRequest>,
        msg: &Result<GatewayMsg, crate::error::AttestError>,
    ) -> AttemptOutcome {
        let Some(request) = request else {
            return AttemptOutcome::BadResponse;
        };
        let entry = self
            .ctx
            .directory
            .get(conn.device_id)
            .expect("device checked at hello");
        match msg {
            Ok(GatewayMsg::AttResp(raw)) => {
                let Ok(response) = AttestResponse::from_bytes(raw) else {
                    return AttemptOutcome::BadResponse;
                };
                if entry.check_and_note(request, &response) {
                    AttemptOutcome::Success
                } else {
                    AttemptOutcome::BadResponse
                }
            }
            Ok(GatewayMsg::Reject(reason)) => {
                let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
                verifier.note_failed(request);
                AttemptOutcome::Rejected(*reason)
            }
            _ => AttemptOutcome::BadResponse,
        }
    }

    fn advance_oneshot(
        &mut self,
        conn: &mut Conn,
        mut cursor: DriverCursor,
        outcome: AttemptOutcome,
    ) {
        self.clear_timer(conn);
        match cursor.record(outcome) {
            DriverStep::Done => {
                let verified = cursor.report().succeeded();
                self.conclude(conn, verified);
            }
            DriverStep::Retry { backoff_ms } => {
                trace::event_with("session.backoff", backoff_ms);
                if conn.link_dead {
                    self.run_attempts(conn, cursor);
                } else {
                    let nap = backoff_ms.min(self.ctx.config.backoff_cap_ms);
                    conn.state = ConnState::Oneshot {
                        cursor,
                        request: None,
                        awaiting: false,
                    };
                    self.arm(conn, TimerKind::Backoff, nap);
                }
            }
        }
    }

    // -- attested handshake path ---------------------------------------------

    fn start_handshake(&mut self, conn: &mut Conn) {
        let entry = self
            .ctx
            .directory
            .get(conn.device_id)
            .expect("device checked at hello");
        let begun = {
            let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
            let now = self.ctx.elapsed_ms().max(verifier.now_ms());
            verifier.set_time_ms(now);
            channel::verifier_begin(&mut verifier, self.ctx.config.rekey_after_rounds)
        };
        let Ok((init, request)) = begun else {
            self.fail_handshake("gateway.handshake.internal");
            conn.closed = true;
            return;
        };
        if self
            .send_framed(conn, &GatewayMsg::SessInit(init.encode()))
            .is_err()
        {
            self.fail_handshake("gateway.handshake.link");
            conn.closed = true;
            return;
        }
        // The accept read runs on whatever is left of the establishment
        // budget — a peer that stalls after SessInit is cut off here.
        let left = conn
            .establish_deadline_ms
            .saturating_sub(self.ctx.elapsed_ms());
        if left == 0 {
            self.fail_handshake("gateway.handshake.deadline");
            conn.closed = true;
            return;
        }
        conn.state = ConnState::Handshake { init, request };
        self.arm(conn, TimerKind::Establish, left);
    }

    fn on_handshake_reply(
        &mut self,
        conn: &mut Conn,
        init: &HandshakeInit,
        request: &AttestRequest,
        msg: &Result<GatewayMsg, crate::error::AttestError>,
    ) {
        self.clear_timer(conn);
        match msg {
            Ok(GatewayMsg::SessAccept(raw)) => {
                let Ok(accept) = HandshakeAccept::decode(raw) else {
                    self.fail_handshake("gateway.handshake.garbage");
                    conn.closed = true;
                    return;
                };
                self.confirm_handshake(conn, init, request, &accept);
            }
            Ok(GatewayMsg::Reject(_)) => {
                // The prover's own defences refused the embedded
                // attestation: a completed (failed) attempt, not a dead
                // link.
                self.conclude(conn, false);
            }
            Ok(_) | Err(_) => {
                self.fail_handshake("gateway.handshake.garbage");
                conn.closed = true;
            }
        }
    }

    fn confirm_handshake(
        &mut self,
        conn: &mut Conn,
        init: &HandshakeInit,
        request: &AttestRequest,
        accept: &HandshakeAccept,
    ) {
        let entry = self
            .ctx
            .directory
            .get(conn.device_id)
            .expect("device checked at hello");
        let confirmed = entry.confirm_session(init, request, accept);
        match confirmed {
            Ok(chan) => {
                let now_ms = self.ctx.elapsed_ms();
                self.ctx
                    .stats
                    .sessions_opened
                    .fetch_add(1, Ordering::SeqCst);
                self.ctx
                    .stats
                    .sessions_active
                    .fetch_add(1, Ordering::SeqCst);
                metrics::counter_add("gateway.session.opened", 1);
                self.ctx
                    .sessions
                    .lock()
                    .expect("session table lock poisoned")
                    .insert(
                        SessionEntry {
                            device_id: conn.device_id,
                            chan,
                            last_used_ms: now_ms,
                        },
                        self.ctx.config.session_capacity,
                        now_ms,
                        self.ctx.config.session_idle_ms,
                        &self.ctx.stats,
                    );
                self.conclude(conn, true);
            }
            Err(_) => {
                metrics::counter_add("gateway.session.confirm_failed", 1);
                self.conclude(conn, false);
            }
        }
    }

    // -- in-session round path -----------------------------------------------

    fn start_round(&mut self, conn: &mut Conn, mut session: SessionEntry) {
        let entry = self
            .ctx
            .directory
            .get(conn.device_id)
            .expect("device checked at hello");
        let request = {
            let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
            let now = self.ctx.elapsed_ms().max(verifier.now_ms());
            verifier.set_time_ms(now);
            verifier.make_session_request()
        };
        let Ok(request) = request else {
            self.teardown_session("gateway.session.internal");
            self.conclude(conn, false);
            return;
        };
        let payload = GatewayMsg::AttReq(request.to_bytes()).encode();
        let frame = session.chan.seal_next(&payload);
        if self
            .send_framed(conn, &GatewayMsg::SessFrame(frame))
            .is_err()
        {
            self.teardown_session("gateway.session.link");
            self.conclude(conn, false);
            return;
        }
        conn.state = ConnState::Round {
            session: Box::new(session),
            request,
        };
        self.arm(conn, TimerKind::Attempt, self.ctx.config.read_timeout_ms);
    }

    fn on_round_reply(
        &mut self,
        conn: &mut Conn,
        mut session: SessionEntry,
        request: &AttestRequest,
        msg: &Result<GatewayMsg, crate::error::AttestError>,
    ) {
        self.clear_timer(conn);
        // Downgrade defence: inside a session only sealed frames count.
        let sealed = match msg {
            Ok(GatewayMsg::SessFrame(sealed)) => sealed,
            Ok(_) => {
                self.teardown_session("gateway.session.downgrade");
                self.conclude(conn, false);
                return;
            }
            Err(_) => {
                self.teardown_session("gateway.session.link");
                self.conclude(conn, false);
                return;
            }
        };
        let inner = match session.chan.open(sealed) {
            Ok(inner) => inner,
            Err(e) => {
                let label = match e.reject_reason() {
                    Some(crate::error::RejectReason::SessionReplay) => "gateway.session.replay",
                    _ => "gateway.session.auth_fail",
                };
                self.teardown_session(label);
                self.conclude(conn, false);
                return;
            }
        };
        let entry = self
            .ctx
            .directory
            .get(conn.device_id)
            .expect("device checked at hello");
        let verified = match GatewayMsg::decode(&inner) {
            Ok(GatewayMsg::AttResp(raw)) => match AttestResponse::from_bytes(&raw) {
                Ok(response) => entry.check_and_note(request, &response),
                Err(_) => false,
            },
            Ok(GatewayMsg::Reject(_)) => {
                let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
                verifier.note_failed(request);
                false
            }
            _ => false,
        };
        if verified {
            if session.chan.note_round() {
                // Deterministic lockstep ratchet, same accounting as the
                // blocking driver.
                self.ctx
                    .stats
                    .sessions_rekeyed
                    .fetch_add(1, Ordering::SeqCst);
                self.ctx
                    .stats
                    .sessions_opened
                    .fetch_add(1, Ordering::SeqCst);
                metrics::counter_add("gateway.session.rekeyed", 1);
            }
            session.last_used_ms = self.ctx.elapsed_ms();
            let now_ms = self.ctx.elapsed_ms();
            self.ctx
                .sessions
                .lock()
                .expect("session table lock poisoned")
                .insert(
                    session,
                    self.ctx.config.session_capacity,
                    now_ms,
                    self.ctx.config.session_idle_ms,
                    &self.ctx.stats,
                );
        } else {
            self.teardown_session("gateway.session.round_failed");
        }
        self.conclude(conn, verified);
    }

    /// Fail-closed retirement of a taken-out session (it is simply not
    /// reinserted; this records the eviction).
    fn teardown_session(&mut self, label: &'static str) {
        self.ctx
            .stats
            .sessions_evicted
            .fetch_add(1, Ordering::SeqCst);
        self.ctx
            .stats
            .sessions_active
            .fetch_sub(1, Ordering::SeqCst);
        metrics::counter_add("gateway.session.evicted", 1);
        metrics::counter_add(label, 1);
    }

    // -- conclusions & accounting --------------------------------------------

    /// Non-blocking [`super::conclude`]: enqueue `Bye`, record the
    /// outcome through the shared helper, then drain out.
    fn conclude(&mut self, conn: &mut Conn, verified: bool) {
        self.clear_timer(conn);
        self.enqueue_msg(conn, &GatewayMsg::Bye { verified });
        record_conclusion(conn.device_id, verified, &self.ctx);
        if verified {
            self.stats.sessions_ok.fetch_add(1, Ordering::SeqCst);
        } else {
            self.stats.sessions_failed.fetch_add(1, Ordering::SeqCst);
        }
        self.begin_drain(conn);
    }

    fn fail_handshake(&mut self, label: &'static str) {
        self.ctx
            .stats
            .handshake_failed
            .fetch_add(1, Ordering::SeqCst);
        self.stats.handshake_failed.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.handshake_failed", 1);
        metrics::counter_add(label, 1);
    }

    fn begin_drain(&mut self, conn: &mut Conn) {
        conn.state = ConnState::Draining;
        if conn.link_dead || !conn.nb.has_pending_write() {
            conn.closed = true;
            return;
        }
        self.set_write_interest(conn, true);
        self.arm(conn, TimerKind::Drain, self.ctx.config.write_timeout_ms);
    }

    // -- I/O helpers ---------------------------------------------------------

    /// Enqueues and flushes one message, registering write interest when
    /// the sink pushes back. Errors mark the link dead.
    fn send_framed(&mut self, conn: &mut Conn, msg: &GatewayMsg) -> Result<(), TransportError> {
        if conn.link_dead {
            return Err(TransportError::Closed);
        }
        conn.nb.enqueue_send(&msg.encode())?;
        match conn.nb.flush() {
            Ok(true) => Ok(()),
            Ok(false) => {
                self.set_write_interest(conn, true);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Best-effort send for verdict frames (`Busy`/`Bye`/`Reject`) where
    /// the blocking driver also ignores the result.
    fn enqueue_msg(&mut self, conn: &mut Conn, msg: &GatewayMsg) {
        if let Err(e) = self.send_framed(conn, msg) {
            conn.link_dead = !e.is_transient();
        }
    }

    fn set_write_interest(&mut self, conn: &mut Conn, on: bool) {
        if conn.write_interest == on {
            return;
        }
        conn.write_interest = on;
        if let Some(fd) = conn.fd {
            let interest = if on {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            let _ = self.poller.reregister(fd, conn.token, interest);
        }
    }

    fn on_link_error(&mut self, conn: &mut Conn, e: &TransportError) {
        let poisoned = matches!(
            e,
            TransportError::Malformed { .. } | TransportError::TooLarge { .. }
        );
        conn.link_dead = true;
        match mem::replace(&mut conn.state, ConnState::Draining) {
            ConnState::AwaitHello | ConnState::Floor { .. } => {
                self.fail_handshake(if poisoned {
                    "gateway.handshake.garbage"
                } else {
                    "gateway.handshake.link"
                });
                conn.closed = true;
            }
            ConnState::Oneshot {
                cursor, awaiting, ..
            } => {
                if awaiting {
                    let outcome = if poisoned {
                        // Stream poisoned by garbage — no point retrying.
                        AttemptOutcome::BadResponse
                    } else {
                        AttemptOutcome::ResponseLost
                    };
                    self.advance_oneshot(conn, cursor, outcome);
                } else {
                    // Link died during backoff: burn the remaining budget
                    // synchronously (dead-link attempts are instant).
                    self.clear_timer(conn);
                    self.run_attempts(conn, cursor);
                }
            }
            ConnState::Handshake { .. } => {
                self.fail_handshake("gateway.handshake.deadline");
                conn.closed = true;
            }
            ConnState::Round { session, .. } => {
                self.teardown_session("gateway.session.link");
                drop(session);
                self.conclude(conn, false);
            }
            ConnState::Draining => {
                conn.closed = true;
            }
        }
    }

    // -- timers --------------------------------------------------------------

    fn arm(&mut self, conn: &mut Conn, kind: TimerKind, delay_ms: u64) {
        if let Some((id, _)) = conn.timer.take() {
            self.wheel.cancel(id);
        }
        let deadline = self.ctx.elapsed_ms().saturating_add(delay_ms);
        let id = self.wheel.schedule(conn.token, deadline);
        conn.timer = Some((id, kind));
    }

    fn clear_timer(&mut self, conn: &mut Conn) {
        if let Some((id, _)) = conn.timer.take() {
            self.wheel.cancel(id);
        }
    }
}

/// `RejectReason::SessionExpired` spelled as a function to keep the
/// `use` surface of this module small.
fn channel_expired() -> crate::error::RejectReason {
    crate::error::RejectReason::SessionExpired
}
