//! The verifier **gateway**: a concurrent attestation server for a fleet
//! of socketed provers.
//!
//! Everything below this module drives one verifier against one prover
//! through in-process calls. The gateway is the production shape: an
//! accept loop pulls connections off a [`proverguard_transport::Acceptor`]
//! (TCP, or the in-memory loopback hub for CI), pushes them through a
//! **bounded** work queue, and a fixed pool of worker threads runs one
//! [`SessionDriver`] attestation per connection against the per-device
//! [`Verifier`] state held in a [`DeviceDirectory`].
//!
//! Backpressure is explicit and cheap, mirroring the paper's prover-side
//! philosophy at the fleet level: when the queue is full the accept loop
//! answers with a one-frame [`GatewayMsg::Busy`] and drops the connection
//! — it never queues unboundedly and never spends a worker on load it
//! cannot serve. Honest provers treat `Busy` as a retry-with-backoff
//! signal (see [`ProverAgent::attest_with_retry`]); floods just get a
//! 1-frame brush-off.
//!
//! Every worker keeps thread-local [`proverguard_telemetry`] metrics and
//! traces; [`GatewayHandle::shutdown`] joins the threads and folds their
//! registries into one [`GatewayReport`] via `Registry::merge`, so byte
//! counters, queue-depth gauges and per-session latency histograms
//! survive the thread boundary.
//!
//! # I/O drivers
//!
//! Two interchangeable I/O drivers share all of the above protocol and
//! accounting machinery, selected by [`GatewayConfig::io_driver`]:
//!
//! - [`IoDriver::ThreadPool`] (the default): one blocking OS thread per
//!   in-flight connection, bounded by `workers` + `queue_depth`. Simple,
//!   and the reference semantics for differential testing.
//! - [`IoDriver::Reactor`]: `reactor_shards` event-loop threads, each
//!   owning a [`proverguard_reactor::Poller`] plus a deadline wheel and
//!   driving every one of its connections as a poll-driven continuation
//!   ([`crate::session::DriverCursor`] for one-shot retries, the same
//!   [`crate::channel`] state machines for secure sessions). Capacity is
//!   `reactor_shards * max_conns_per_shard` concurrent connections — tens
//!   of thousands per process instead of tens — and overload is still
//!   shed with the same deterministic one-frame `Busy`.
//!
//! Both drivers feed the same [`GatewayStats`], so the conservation laws
//! ([`GatewaySnapshot::partition_holds`],
//! [`GatewaySnapshot::session_partition_holds`]) hold identically; the
//! reactor additionally exposes per-shard [`ShardSnapshot`]s with their
//! own partition law.

mod reactor;

pub use reactor::ShardSnapshot;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use proverguard_telemetry::metrics::{self, Registry};
use proverguard_telemetry::trace;
use proverguard_transport::{Acceptor, Transport, TransportError};

use proverguard_crypto::mac::MacAlgorithm;

use crate::channel::{self, HandshakeAccept, HandshakeInit, SecureChannel};
use crate::error::{AttestError, RejectReason};
use crate::fleet::{FleetController, FleetPolicy};
use crate::imagecache::{CachedImage, ExpectedView, ImageCache};
use crate::message::{AttestRequest, AttestResponse, FreshnessField};
use crate::prover::Prover;
use crate::session::{AttemptOutcome, RetryPolicy, SessionDriver, SessionLink};
use crate::verifier::Verifier;

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_ATTREQ: u8 = 2;
const TAG_ATTRESP: u8 = 3;
const TAG_REJECT: u8 = 4;
const TAG_BUSY: u8 = 5;
const TAG_BYE: u8 = 6;
const TAG_COMMAND: u8 = 7;
const TAG_RECEIPT: u8 = 8;
const TAG_SESS_HELLO: u8 = 9;
const TAG_SESS_INIT: u8 = 10;
const TAG_SESS_ACCEPT: u8 = 11;
const TAG_SESS_FRAME: u8 = 12;

/// One gateway-protocol message, carried as the payload of one transport
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayMsg {
    /// Prover → gateway, first message: which device is calling.
    Hello {
        /// Index of the device in the gateway's [`DeviceDirectory`].
        device_id: u64,
    },
    /// Gateway → prover: a serialized [`crate::message::AttestRequest`].
    AttReq(Vec<u8>),
    /// Prover → gateway: a serialized [`AttestResponse`].
    AttResp(Vec<u8>),
    /// Prover → gateway: the prover's defences rejected the request.
    Reject(RejectReason),
    /// Gateway → prover: load shed at admission — try again later.
    Busy,
    /// Gateway → prover: session over.
    Bye {
        /// Whether the attestation verified.
        verified: bool,
    },
    /// Verifier → prover: a serialized
    /// [`crate::services::CommandRequest`] (gated OTA/erase commands over
    /// the same session protocol).
    Command(Vec<u8>),
    /// Prover → verifier: a serialized
    /// [`crate::services::CommandReceipt`].
    Receipt(Vec<u8>),
    /// Prover → gateway, first message of a **session-mode** connection:
    /// which device is calling and, for a resumed session, which session.
    SessHello {
        /// Index of the device in the gateway's [`DeviceDirectory`].
        device_id: u64,
        /// `None` opens a new session (attested handshake); `Some`
        /// resumes an established one for a cheap in-session round.
        session_id: Option<[u8; channel::SESSION_ID_SIZE]>,
    },
    /// Gateway → prover: a serialized [`channel::HandshakeInit`].
    SessInit(Vec<u8>),
    /// Prover → gateway: a serialized [`channel::HandshakeAccept`].
    SessAccept(Vec<u8>),
    /// Either direction: one sealed [`channel::SecureChannel`] frame
    /// carrying a gateway message (`AttReq`/`AttResp`/`Reject`).
    SessFrame(Vec<u8>),
}

fn reason_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::BadAuth => 1,
        RejectReason::NonceReused => 2,
        RejectReason::StaleCounter => 3,
        RejectReason::TimestampNotMonotonic => 4,
        RejectReason::TimestampOutOfWindow => 5,
        RejectReason::FreshnessKindMismatch => 6,
        RejectReason::Malformed => 7,
        RejectReason::Throttled => 8,
        RejectReason::DegradedMode => 9,
        RejectReason::ScopeUnsupported => 10,
        RejectReason::SessionExpired => 11,
        RejectReason::SessionReplay => 12,
        RejectReason::SessionAuth => 13,
    }
}

fn reason_from_code(code: u8) -> Option<RejectReason> {
    Some(match code {
        1 => RejectReason::BadAuth,
        2 => RejectReason::NonceReused,
        3 => RejectReason::StaleCounter,
        4 => RejectReason::TimestampNotMonotonic,
        5 => RejectReason::TimestampOutOfWindow,
        6 => RejectReason::FreshnessKindMismatch,
        7 => RejectReason::Malformed,
        8 => RejectReason::Throttled,
        9 => RejectReason::DegradedMode,
        10 => RejectReason::ScopeUnsupported,
        11 => RejectReason::SessionExpired,
        12 => RejectReason::SessionReplay,
        13 => RejectReason::SessionAuth,
        _ => return None,
    })
}

impl GatewayMsg {
    /// Serializes the message (tag byte + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            GatewayMsg::Hello { device_id } => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_HELLO);
                out.extend_from_slice(&device_id.to_be_bytes());
                out
            }
            GatewayMsg::AttReq(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_ATTREQ);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::AttResp(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_ATTRESP);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::Reject(reason) => vec![TAG_REJECT, reason_code(*reason)],
            GatewayMsg::Busy => vec![TAG_BUSY],
            GatewayMsg::Bye { verified } => vec![TAG_BYE, u8::from(*verified)],
            GatewayMsg::Command(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_COMMAND);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::Receipt(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_RECEIPT);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::SessHello {
                device_id,
                session_id,
            } => {
                let mut out = Vec::with_capacity(10 + channel::SESSION_ID_SIZE);
                out.push(TAG_SESS_HELLO);
                out.extend_from_slice(&device_id.to_be_bytes());
                match session_id {
                    None => out.push(0),
                    Some(sid) => {
                        out.push(1);
                        out.extend_from_slice(sid);
                    }
                }
                out
            }
            GatewayMsg::SessInit(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_SESS_INIT);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::SessAccept(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_SESS_ACCEPT);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::SessFrame(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_SESS_FRAME);
                out.extend_from_slice(bytes);
                out
            }
        }
    }

    /// Parses one message. Unknown tags, truncated bodies and unknown
    /// reject codes are all [`AttestError::MalformedMessage`] — never a
    /// panic.
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] as above.
    pub fn decode(bytes: &[u8]) -> Result<Self, AttestError> {
        let malformed = |reason: &str| AttestError::MalformedMessage {
            reason: reason.to_string(),
        };
        let (&tag, body) = bytes
            .split_first()
            .ok_or_else(|| malformed("empty message"))?;
        match tag {
            TAG_HELLO => {
                let raw: [u8; 8] = body
                    .try_into()
                    .map_err(|_| malformed("hello body must be 8 bytes"))?;
                Ok(GatewayMsg::Hello {
                    device_id: u64::from_be_bytes(raw),
                })
            }
            TAG_ATTREQ => Ok(GatewayMsg::AttReq(body.to_vec())),
            TAG_ATTRESP => Ok(GatewayMsg::AttResp(body.to_vec())),
            TAG_REJECT => {
                let [code] = body else {
                    return Err(malformed("reject body must be 1 byte"));
                };
                let reason =
                    reason_from_code(*code).ok_or_else(|| malformed("unknown reject code"))?;
                Ok(GatewayMsg::Reject(reason))
            }
            TAG_BUSY => {
                if body.is_empty() {
                    Ok(GatewayMsg::Busy)
                } else {
                    Err(malformed("busy carries no body"))
                }
            }
            TAG_BYE => {
                let [flag] = body else {
                    return Err(malformed("bye body must be 1 byte"));
                };
                Ok(GatewayMsg::Bye {
                    verified: *flag == 1,
                })
            }
            TAG_COMMAND => Ok(GatewayMsg::Command(body.to_vec())),
            TAG_RECEIPT => Ok(GatewayMsg::Receipt(body.to_vec())),
            TAG_SESS_HELLO => {
                if body.len() < 9 {
                    return Err(malformed("session hello too short"));
                }
                let device_id = u64::from_be_bytes(body[..8].try_into().expect("8 bytes"));
                let session_id = match body[8] {
                    0 if body.len() == 9 => None,
                    1 if body.len() == 9 + channel::SESSION_ID_SIZE => {
                        let mut sid = [0u8; channel::SESSION_ID_SIZE];
                        sid.copy_from_slice(&body[9..]);
                        Some(sid)
                    }
                    _ => return Err(malformed("session hello malformed")),
                };
                Ok(GatewayMsg::SessHello {
                    device_id,
                    session_id,
                })
            }
            TAG_SESS_INIT => Ok(GatewayMsg::SessInit(body.to_vec())),
            TAG_SESS_ACCEPT => Ok(GatewayMsg::SessAccept(body.to_vec())),
            TAG_SESS_FRAME => Ok(GatewayMsg::SessFrame(body.to_vec())),
            _ => Err(malformed("unknown message tag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Device directory
// ---------------------------------------------------------------------------

/// Per-device verifier state the gateway serves sessions from.
#[derive(Debug)]
pub struct DeviceEntry {
    verifier: Mutex<Verifier>,
    /// Behind its own mutex so a running gateway can be re-targeted at a
    /// new expected image mid-campaign (per-wave OTA targets).
    image: Mutex<DeviceImage>,
    cache: Arc<ImageCache>,
    service_floor_ms: u64,
}

/// One device's expected image, split into the fleet-shared interned
/// baseline and a persistent per-device scratch buffer that only ever
/// diverges from that baseline at the freshness word. Patching for a
/// request writes 8 bytes in place — the per-attempt full-image clone the
/// thread-pool gateway originally paid is gone.
#[derive(Debug)]
struct DeviceImage {
    baseline: Arc<CachedImage>,
    scratch: Vec<u8>,
    /// Segment indices where `scratch` currently differs from `baseline`
    /// (at the baseline's digest granularity). In steady state this is
    /// exactly the segment holding `counter_R`.
    patched: Vec<usize>,
}

impl DeviceImage {
    fn new(cache: &ImageCache, scratch: Vec<u8>, segment_len: u32) -> DeviceImage {
        let baseline = cache.intern(&scratch, segment_len);
        cache.note_scratch_rebuild();
        DeviceImage {
            baseline,
            scratch,
            patched: Vec::new(),
        }
    }

    /// Brings `scratch` to the image the device will present for a
    /// request carrying `field`: the baseline everywhere except the
    /// freshness word the prover commits before MACing (reject-then-MAC
    /// ordering, §4.2).
    fn patch(&mut self, field: &FreshnessField) {
        match field {
            FreshnessField::Counter(_) | FreshnessField::Timestamp(_) => {
                if let Some(seg) = crate::freshness::patch_expected_image_tracked(
                    &mut self.scratch,
                    field,
                    self.baseline.segment_len(),
                ) {
                    if !self.patched.contains(&seg) {
                        self.patched.push(seg);
                    }
                }
            }
            FreshnessField::None | FreshnessField::Nonce(_) => {
                // These leave the device image untouched — restore the
                // word a previous counter/timestamp request patched so
                // the scratch matches the baseline again.
                let off = crate::freshness::counter_r_offset();
                if self.scratch.len() >= off + 8 {
                    self.scratch[off..off + 8]
                        .copy_from_slice(&self.baseline.bytes()[off..off + 8]);
                }
                self.patched.clear();
            }
        }
    }
}

/// The fleet roster: one [`Verifier`] (plus expected memory image) per
/// device, indexed by the `device_id` provers present in their `Hello`.
///
/// Entries are added before the gateway starts; at runtime the directory
/// is shared read-only and each entry guards its verifier with its own
/// mutex, so sessions for *different* devices never contend. Expected
/// images are interned into a shared [`ImageCache`]: every device on the
/// same firmware shares one baseline and one precomputed digest vector.
#[derive(Debug, Default)]
pub struct DeviceDirectory {
    entries: Vec<DeviceEntry>,
    cache: Arc<ImageCache>,
}

impl DeviceDirectory {
    /// An empty directory with its own image cache.
    #[must_use]
    pub fn new() -> Self {
        DeviceDirectory::default()
    }

    /// An empty directory interning expected images into `cache`. Hand
    /// the same handle to several directories — e.g. a thread-pool
    /// gateway and a reactor gateway — to share one fleet-wide digest
    /// cache across all their workers and shards.
    #[must_use]
    pub fn with_cache(cache: Arc<ImageCache>) -> Self {
        DeviceDirectory {
            entries: Vec::new(),
            cache,
        }
    }

    /// The shared expected-image cache.
    #[must_use]
    pub fn cache(&self) -> &Arc<ImageCache> {
        &self.cache
    }

    /// Registers a device; returns its `device_id`.
    pub fn register(&mut self, verifier: Verifier, expected_memory: Vec<u8>) -> u64 {
        self.register_with_floor(verifier, expected_memory, 0)
    }

    /// Registers a device whose sessions take at least `service_floor_ms`
    /// of wall time — a worker-occupancy knob used by backpressure tests
    /// and the bench's per-worker probe phase.
    pub fn register_with_floor(
        &mut self,
        verifier: Verifier,
        expected_memory: Vec<u8>,
        service_floor_ms: u64,
    ) -> u64 {
        let id = self.entries.len() as u64;
        let segment_len = verifier.segmented_params().map_or(0, |p| p.segment_len);
        let image = DeviceImage::new(&self.cache, expected_memory, segment_len);
        self.entries.push(DeviceEntry {
            verifier: Mutex::new(verifier),
            image: Mutex::new(image),
            cache: Arc::clone(&self.cache),
            service_floor_ms,
        });
        id
    }

    /// Replaces the expected memory image of `device_id` — what a
    /// campaign does when a device's wave moves it to a new firmware
    /// target (or back to the old one on rollback). Takes `&self`: the
    /// directory is shared read-only with running workers, and each
    /// entry's image has its own lock.
    ///
    /// The new image is re-interned and the device's scratch rebuilt; if
    /// this device was the last one pointing at the superseded baseline,
    /// its cache entry is invalidated, so a stale digest vector can never
    /// outlive a retarget.
    ///
    /// Returns `false` for an unknown device.
    pub fn set_expected_memory(&self, device_id: u64, expected_memory: Vec<u8>) -> bool {
        match self.get(device_id) {
            Some(entry) => {
                let old = {
                    let mut image = entry.image.lock().expect("image lock poisoned");
                    let segment_len = image.baseline.segment_len();
                    let old = Arc::clone(&image.baseline);
                    *image = DeviceImage::new(&self.cache, expected_memory, segment_len);
                    old
                };
                // Strong count 2 = this handle + the cache's slot: no
                // other device entry still references the old baseline.
                // (A re-target to the *same* image holds a third
                // reference through the rebuilt scratch, protecting the
                // entry from self-invalidation.)
                if Arc::strong_count(&old) <= 2 {
                    self.cache.invalidate(old.key());
                }
                true
            }
            None => false,
        }
    }

    /// Number of registered devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no devices are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs `f` against the expected-image view for `device_id` patched
    /// for `field` — the exact cached path gateway verifications take.
    /// Bench and differential-test hook. Returns `None` for an unknown
    /// device.
    pub fn with_expected<R>(
        &self,
        device_id: u64,
        field: &FreshnessField,
        f: impl FnOnce(&ExpectedView<'_>) -> R,
    ) -> Option<R> {
        self.get(device_id).map(|e| e.with_expected(field, f))
    }

    /// Runs `f` against the verifier of `device_id` (request minting for
    /// tests and benches that drive the cached verify path without a
    /// wire). Returns `None` for an unknown device.
    pub fn with_verifier<R>(
        &self,
        device_id: u64,
        f: impl FnOnce(&mut Verifier) -> R,
    ) -> Option<R> {
        self.get(device_id).map(|e| {
            let mut verifier = e.verifier.lock().expect("verifier lock poisoned");
            f(&mut verifier)
        })
    }

    /// Verifies `response` for `device_id` through the cached
    /// expected-image path and records the outcome on its verifier —
    /// exactly what both gateway drivers do for a completed attestation
    /// attempt. Returns `None` for an unknown device.
    pub fn verify_response(
        &self,
        device_id: u64,
        request: &AttestRequest,
        response: &AttestResponse,
    ) -> Option<bool> {
        self.get(device_id)
            .map(|e| e.check_and_note(request, response))
    }

    fn get(&self, device_id: u64) -> Option<&DeviceEntry> {
        usize::try_from(device_id)
            .ok()
            .and_then(|i| self.entries.get(i))
    }
}

impl DeviceEntry {
    /// Runs `f` with the expected-image view for a request carrying
    /// `field`: touches the shared cache (hit accounting + LRU refresh,
    /// refilling an evicted baseline for free), patches the persistent
    /// scratch in place, and exposes baseline digests so Segmented and
    /// History checks re-digest only the freshness segment.
    fn with_expected<R>(
        &self,
        field: &FreshnessField,
        f: impl FnOnce(&ExpectedView<'_>) -> R,
    ) -> R {
        let mut image = self.image.lock().expect("image lock poisoned");
        self.cache.touch(&image.baseline);
        image.patch(field);
        let DeviceImage {
            baseline,
            scratch,
            patched,
        } = &*image;
        f(&ExpectedView::cached(scratch, baseline, patched))
    }

    /// Verifies `response` against the cached expected view and records
    /// the outcome — the verify-and-note step shared by both gateway
    /// drivers for one-shot attempts and session rounds. Lock order is
    /// image → verifier, uniformly.
    fn check_and_note(&self, request: &AttestRequest, response: &AttestResponse) -> bool {
        self.with_expected(&request.freshness, |view| {
            let mut verifier = self.verifier.lock().expect("verifier lock poisoned");
            if verifier.check_response_view(request, response, view) {
                verifier.note_verified_view(request, response, view);
                true
            } else {
                verifier.note_failed(request);
                false
            }
        })
    }

    /// Confirms a session handshake's key-confirming attestation against
    /// the cached expected view (both drivers' handshake path).
    fn confirm_session(
        &self,
        init: &HandshakeInit,
        request: &AttestRequest,
        accept: &HandshakeAccept,
    ) -> Result<SecureChannel, AttestError> {
        self.with_expected(&request.freshness, |view| {
            let mut verifier = self.verifier.lock().expect("verifier lock poisoned");
            channel::verifier_confirm_view(&mut verifier, init, request, accept, view)
        })
    }
}

// ---------------------------------------------------------------------------
// Configuration & stats
// ---------------------------------------------------------------------------

/// Which I/O engine drives accepted connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoDriver {
    /// Blocking worker threads behind a bounded queue (the classic
    /// shape): concurrency = `workers` in service + `queue_depth` parked.
    #[default]
    ThreadPool,
    /// Sharded readiness event loops: concurrency = `reactor_shards` ×
    /// `max_conns_per_shard`, with worker-thread count = `reactor_shards`.
    Reactor,
}

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Which I/O engine serves accepted connections (see [`IoDriver`]).
    pub io_driver: IoDriver,
    /// Event-loop shard threads for [`IoDriver::Reactor`] (ignored by the
    /// thread pool).
    pub reactor_shards: usize,
    /// Per-shard connection cap for [`IoDriver::Reactor`]: once every
    /// shard is full, further accepts shed `Busy` — the reactor's
    /// equivalent of a full work queue.
    pub max_conns_per_shard: usize,
    /// Worker threads serving sessions.
    pub workers: usize,
    /// Bounded work-queue depth; a full queue sheds with `Busy`.
    pub queue_depth: usize,
    /// Per-connection read deadline (handshake and responses).
    pub read_timeout_ms: u64,
    /// Per-connection write deadline (where the OS supports one).
    pub write_timeout_ms: u64,
    /// Retry/backoff policy per session. `jitter_seed` is XORed with the
    /// device id so concurrent sessions decorrelate.
    pub retry: RetryPolicy,
    /// Hard cap on any single real backoff sleep a worker performs, so a
    /// saturated schedule cannot park a worker.
    pub backoff_cap_ms: u64,
    /// Accept-loop poll granularity (shutdown latency bound).
    pub accept_poll_ms: u64,
    /// Per-worker trace-ring capacity.
    pub trace_capacity: usize,
    /// Fleet-health tuning for the embedded [`FleetController`].
    pub fleet: FleetPolicy,
    /// Bounded session-table capacity; opening a session past it evicts
    /// the least-recently-used one.
    pub session_capacity: usize,
    /// Idle expiry for established sessions: a session untouched for this
    /// long is expired on next lookup or insert (the resuming prover gets
    /// [`RejectReason::SessionExpired`] and re-handshakes).
    pub session_idle_ms: u64,
    /// Verified in-session rounds between deterministic rekey ratchets
    /// (0 = never rekey).
    pub rekey_after_rounds: u32,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            io_driver: IoDriver::ThreadPool,
            reactor_shards: 2,
            max_conns_per_shard: 8_192,
            workers: 4,
            queue_depth: 16,
            read_timeout_ms: 1_000,
            write_timeout_ms: 1_000,
            retry: RetryPolicy {
                timeout_ms: 500,
                max_retries: 2,
                backoff_base_ms: 5,
                backoff_factor: 2,
                jitter_per_mille: 500,
                jitter_seed: 0x6761_7465, // "gate"
            },
            backoff_cap_ms: 50,
            accept_poll_ms: 10,
            trace_capacity: 4_096,
            fleet: FleetPolicy::default(),
            session_capacity: 64,
            session_idle_ms: 30_000,
            rekey_after_rounds: 8,
        }
    }
}

/// Live gateway counters (atomics; shared between accept loop, workers
/// and observers).
#[derive(Debug)]
pub struct GatewayStats {
    accepted: AtomicU64,
    busy_rejected: AtomicU64,
    enqueued: AtomicU64,
    handshake_failed: AtomicU64,
    sessions_ok: AtomicU64,
    sessions_failed: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    per_worker_sessions: Vec<AtomicU64>,
    sessions_opened: AtomicU64,
    sessions_active: AtomicU64,
    sessions_expired: AtomicU64,
    sessions_evicted: AtomicU64,
    sessions_rekeyed: AtomicU64,
}

impl GatewayStats {
    fn new(workers: usize) -> Self {
        GatewayStats {
            accepted: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            handshake_failed: AtomicU64::new(0),
            sessions_ok: AtomicU64::new(0),
            sessions_failed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            per_worker_sessions: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            sessions_opened: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            sessions_expired: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_rekeyed: AtomicU64::new(0),
        }
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> GatewaySnapshot {
        GatewaySnapshot {
            accepted: self.accepted.load(Ordering::SeqCst),
            busy_rejected: self.busy_rejected.load(Ordering::SeqCst),
            enqueued: self.enqueued.load(Ordering::SeqCst),
            handshake_failed: self.handshake_failed.load(Ordering::SeqCst),
            sessions_ok: self.sessions_ok.load(Ordering::SeqCst),
            sessions_failed: self.sessions_failed.load(Ordering::SeqCst),
            queue_peak: self.queue_peak.load(Ordering::SeqCst),
            per_worker_sessions: self
                .per_worker_sessions
                .iter()
                .map(|c| c.load(Ordering::SeqCst))
                .collect(),
            sessions_opened: self.sessions_opened.load(Ordering::SeqCst),
            sessions_active: self.sessions_active.load(Ordering::SeqCst),
            sessions_expired: self.sessions_expired.load(Ordering::SeqCst),
            sessions_evicted: self.sessions_evicted.load(Ordering::SeqCst),
            sessions_rekeyed: self.sessions_rekeyed.load(Ordering::SeqCst),
        }
    }
}

/// A point-in-time copy of [`GatewayStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewaySnapshot {
    /// Connections pulled off the acceptor.
    pub accepted: u64,
    /// Connections shed with a `Busy` frame (queue full).
    pub busy_rejected: u64,
    /// Connections that made it onto the work queue.
    pub enqueued: u64,
    /// Enqueued connections that died before/during `Hello` (timeout,
    /// garbage, unknown device).
    pub handshake_failed: u64,
    /// Sessions whose attestation verified.
    pub sessions_ok: u64,
    /// Sessions driven to completion without a verified response.
    pub sessions_failed: u64,
    /// Highest simultaneous queue depth observed.
    pub queue_peak: u64,
    /// Sessions served per worker (ok + failed + handshake failures).
    pub per_worker_sessions: Vec<u64>,
    /// Secure-session **epochs** opened: one per attested handshake plus
    /// one per rekey ratchet (the post-ratchet keys are a new epoch).
    pub sessions_opened: u64,
    /// Session epochs currently live in the table.
    pub sessions_active: u64,
    /// Session epochs retired by idle expiry.
    pub sessions_expired: u64,
    /// Session epochs retired by LRU eviction, replacement on
    /// re-handshake, or fail-closed teardown after a bad round.
    pub sessions_evicted: u64,
    /// Session epochs retired by a deterministic rekey ratchet (the
    /// session lives on under the next epoch's keys).
    pub sessions_rekeyed: u64,
}

impl GatewaySnapshot {
    /// The conservation law every quiesced gateway must satisfy: each
    /// accepted connection was either shed `Busy` or enqueued, and each
    /// enqueued connection ended as exactly one of handshake-failed,
    /// session-ok or session-failed. Only meaningful once no sessions are
    /// in flight (after [`GatewayHandle::shutdown`]).
    #[must_use]
    pub fn partition_holds(&self) -> bool {
        self.accepted == self.busy_rejected + self.enqueued
            && self.enqueued == self.handshake_failed + self.sessions_ok + self.sessions_failed
    }

    /// Total sessions driven to completion (verified or not).
    #[must_use]
    pub fn sessions_total(&self) -> u64 {
        self.sessions_ok + self.sessions_failed
    }

    /// The session-table conservation law: every opened session epoch is
    /// exactly one of still-active, idle-expired, evicted, or rekeyed
    /// into its successor epoch. Only meaningful once no sessions are in
    /// flight (after [`GatewayHandle::shutdown`]).
    #[must_use]
    pub fn session_partition_holds(&self) -> bool {
        self.sessions_opened
            == self.sessions_active
                + self.sessions_expired
                + self.sessions_evicted
                + self.sessions_rekeyed
    }
}

// ---------------------------------------------------------------------------
// Session table
// ---------------------------------------------------------------------------

/// One established secure session held by the gateway.
struct SessionEntry {
    device_id: u64,
    chan: SecureChannel,
    last_used_ms: u64,
}

/// The gateway's bounded table of established sessions. Shared across
/// the worker pool (connections are not pinned to workers, so a resume
/// must find its session no matter which worker serves it); the single
/// mutex is held only for lookup/insert, never across a round's I/O.
/// Capacity is enforced by LRU eviction, idleness by lazy expiry on
/// lookup and insert. All transitions feed the [`GatewayStats`] session
/// counters so `opened = active + expired + evicted + rekeyed` holds.
#[derive(Default)]
struct SessionTable {
    entries: Vec<SessionEntry>,
}

impl SessionTable {
    /// Drops every idle-expired session.
    fn sweep(&mut self, now_ms: u64, idle_ms: u64, stats: &GatewayStats) {
        let before = self.entries.len();
        self.entries
            .retain(|e| now_ms.saturating_sub(e.last_used_ms) <= idle_ms);
        let expired = (before - self.entries.len()) as u64;
        if expired > 0 {
            stats.sessions_expired.fetch_add(expired, Ordering::SeqCst);
            stats.sessions_active.fetch_sub(expired, Ordering::SeqCst);
            metrics::counter_add("gateway.session.expired", expired);
        }
    }

    /// Takes the session named `sid` out of the table for serving (the
    /// caller reinserts it on success — fail-closed teardown otherwise).
    /// `None` if unknown, idle-expired, or bound to another device.
    fn take(
        &mut self,
        device_id: u64,
        sid: [u8; channel::SESSION_ID_SIZE],
        now_ms: u64,
        idle_ms: u64,
        stats: &GatewayStats,
    ) -> Option<SessionEntry> {
        self.sweep(now_ms, idle_ms, stats);
        let at = self
            .entries
            .iter()
            .position(|e| e.chan.session_id() == sid && e.device_id == device_id)?;
        Some(self.entries.remove(at))
    }

    /// Inserts a session, evicting the least-recently-used entry when the
    /// table is full and replacing any existing session for the same
    /// device (a re-handshake supersedes the old keys).
    fn insert(
        &mut self,
        entry: SessionEntry,
        capacity: usize,
        now_ms: u64,
        idle_ms: u64,
        stats: &GatewayStats,
    ) {
        self.sweep(now_ms, idle_ms, stats);
        let mut evicted = 0u64;
        let before = self.entries.len();
        self.entries.retain(|e| e.device_id != entry.device_id);
        evicted += (before - self.entries.len()) as u64;
        while self.entries.len() >= capacity.max(1) {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used_ms)
                .map(|(i, _)| i)
                .expect("non-empty table has an LRU entry");
            self.entries.remove(lru);
            evicted += 1;
        }
        if evicted > 0 {
            stats.sessions_evicted.fetch_add(evicted, Ordering::SeqCst);
            stats.sessions_active.fetch_sub(evicted, Ordering::SeqCst);
            metrics::counter_add("gateway.session.evicted", evicted);
        }
        self.entries.push(entry);
    }
}

// ---------------------------------------------------------------------------
// Gateway runtime
// ---------------------------------------------------------------------------

struct GatewayShared {
    directory: DeviceDirectory,
    fleet: Mutex<FleetController>,
    stats: GatewayStats,
    config: GatewayConfig,
    started: Instant,
    sessions: Mutex<SessionTable>,
}

impl GatewayShared {
    fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

struct QueueItem {
    conn: Box<dyn Transport>,
    enqueued_at: Instant,
}

/// What one gateway thread hands back when it exits.
struct ThreadExit {
    registry: Registry,
    spans: u64,
    dropped_spans: u64,
}

/// The merged post-shutdown picture of a gateway run.
#[derive(Debug)]
pub struct GatewayReport {
    /// All thread registries folded together (`Registry::merge`): byte
    /// counters, queue gauges, session latency histograms.
    pub metrics: Registry,
    /// Trace spans recorded across all workers.
    pub spans: u64,
    /// Trace spans lost to ring overflow across all workers (0 when the
    /// configured `trace_capacity` sufficed).
    pub dropped_spans: u64,
    /// Final counter snapshot.
    pub stats: GatewaySnapshot,
}

/// A running gateway: accept loop + worker pool (or reactor shards).
pub struct GatewayHandle {
    shared: Arc<GatewayShared>,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<ThreadExit>,
    workers: Vec<JoinHandle<ThreadExit>>,
    /// Per-shard counters ([`IoDriver::Reactor`] only; empty otherwise).
    shard_stats: Vec<Arc<reactor::ShardStats>>,
    /// One waker per shard event loop, so shutdown can interrupt a
    /// timeout-less poll immediately.
    shard_wakers: Vec<proverguard_reactor::Waker>,
}

/// Namespace for [`Gateway::start`].
#[derive(Debug)]
pub struct Gateway;

impl Gateway {
    /// Starts the accept loop and worker pool over `acceptor`, serving
    /// the devices in `directory`. Runs until
    /// [`GatewayHandle::shutdown`].
    #[must_use]
    pub fn start(
        acceptor: Box<dyn Acceptor>,
        directory: DeviceDirectory,
        config: GatewayConfig,
    ) -> GatewayHandle {
        if config.io_driver == IoDriver::Reactor {
            return reactor::start(acceptor, directory, config);
        }
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let fleet = FleetController::new(directory.len(), config.fleet);
        let shared = Arc::new(GatewayShared {
            directory,
            fleet: Mutex::new(fleet),
            stats: GatewayStats::new(workers),
            config,
            started: Instant::now(),
            sessions: Mutex::new(SessionTable::default()),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (work_tx, work_rx) = sync_channel::<QueueItem>(queue_depth);
        let work_rx = Arc::new(Mutex::new(work_rx));

        let worker_handles = (0..workers)
            .map(|w| {
                let rx = Arc::clone(&work_rx);
                let ctx = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gw-worker-{w}"))
                    .spawn(move || worker_main(w, &rx, &ctx))
                    .expect("spawn gateway worker")
            })
            .collect();

        let accept_thread = {
            let ctx = Arc::clone(&shared);
            let flag = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("gw-accept".to_string())
                .spawn(move || accept_main(acceptor, &work_tx, &ctx, &flag))
                .expect("spawn gateway accept loop")
        };

        GatewayHandle {
            shared,
            shutdown,
            accept_thread,
            workers: worker_handles,
            shard_stats: Vec::new(),
            shard_wakers: Vec::new(),
        }
    }
}

impl GatewayHandle {
    /// Live counters.
    #[must_use]
    pub fn stats(&self) -> GatewaySnapshot {
        self.shared.stats.snapshot()
    }

    /// Read access to the per-device health ledger.
    pub fn with_fleet<R>(&self, f: impl FnOnce(&FleetController) -> R) -> R {
        f(&self.shared.fleet.lock().expect("fleet lock poisoned"))
    }

    /// Per-shard counter snapshots. Empty under [`IoDriver::ThreadPool`];
    /// one entry per event-loop shard under [`IoDriver::Reactor`]. Each
    /// satisfies [`ShardSnapshot::partition_holds`] and their sums match
    /// the global [`GatewaySnapshot`] partition terms.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardSnapshot> {
        self.shard_stats
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(i))
            .collect()
    }

    /// Graceful shutdown: stops accepting, lets in-flight sessions and
    /// the queued backlog finish, joins every thread and merges their
    /// telemetry.
    #[must_use]
    pub fn shutdown(self) -> GatewayReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Reactor shards may be parked in a timeout-less poll; a wake per
        // shard bounds shutdown latency without a polling loop.
        for waker in &self.shard_wakers {
            waker.wake();
        }
        // Joining the accept thread drops the queue sender; workers drain
        // the backlog, then their `recv` fails and they exit.
        let accept_exit = self
            .accept_thread
            .join()
            .expect("gateway accept thread panicked");
        for waker in &self.shard_wakers {
            waker.wake();
        }
        let mut metrics = accept_exit.registry;
        let mut spans = accept_exit.spans;
        let mut dropped_spans = accept_exit.dropped_spans;
        for handle in self.workers {
            let exit = handle.join().expect("gateway worker panicked");
            metrics.merge(&exit.registry);
            spans += exit.spans;
            dropped_spans += exit.dropped_spans;
        }
        GatewayReport {
            metrics,
            spans,
            dropped_spans,
            stats: self.shared.stats.snapshot(),
        }
    }
}

fn accept_main(
    mut acceptor: Box<dyn Acceptor>,
    work_tx: &SyncSender<QueueItem>,
    ctx: &GatewayShared,
    shutdown: &AtomicBool,
) -> ThreadExit {
    metrics::reset();
    let poll = Duration::from_millis(ctx.config.accept_poll_ms.max(1));
    while !shutdown.load(Ordering::SeqCst) {
        let conn = match acceptor.poll_accept(poll) {
            Ok(Some(conn)) => conn,
            Ok(None) => continue,
            Err(_) => break,
        };
        ctx.stats.accepted.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.accepted", 1);
        let item = QueueItem {
            conn,
            enqueued_at: Instant::now(),
        };
        // Count the slot *before* the send so a fast worker's decrement
        // can never observe (and underflow past) a not-yet-incremented
        // depth.
        let depth = ctx.stats.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        match work_tx.try_send(item) {
            Ok(()) => {
                ctx.stats.enqueued.fetch_add(1, Ordering::SeqCst);
                ctx.stats.queue_peak.fetch_max(depth, Ordering::SeqCst);
                metrics::gauge_set("gateway.queue_depth", depth);
            }
            Err(TrySendError::Full(item)) => {
                ctx.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
                ctx.stats.busy_rejected.fetch_add(1, Ordering::SeqCst);
                metrics::counter_add("gateway.busy", 1);
                let mut conn = item.conn;
                let _ = conn.set_deadline(Some(Duration::from_millis(ctx.config.write_timeout_ms)));
                let _ = conn.send(&GatewayMsg::Busy.encode());
            }
            Err(TrySendError::Disconnected(_)) => {
                ctx.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
                break;
            }
        }
    }
    ThreadExit {
        registry: metrics::snapshot(),
        spans: 0,
        dropped_spans: 0,
    }
}

fn worker_main(w: usize, rx: &Mutex<Receiver<QueueItem>>, ctx: &GatewayShared) -> ThreadExit {
    metrics::reset();
    trace::reset();
    trace::set_capacity(ctx.config.trace_capacity.max(16));
    trace::enable();
    let mut spans = 0u64;
    loop {
        // Holding the lock across the blocking `recv` serializes only the
        // *dequeue*, never the session work; idle workers park here.
        let item = match rx.lock().expect("gateway queue lock poisoned").recv() {
            Ok(item) => item,
            Err(_) => break,
        };
        let depth = ctx
            .stats
            .queue_depth
            .fetch_sub(1, Ordering::SeqCst)
            .saturating_sub(1);
        metrics::gauge_set("gateway.queue_depth", depth);
        serve_connection(w, item, ctx);
        // Keep the ring shallow so long runs never overflow it; `drain`
        // (unlike `clear`) preserves the dropped-span count.
        spans += trace::drain()
            .iter()
            .filter(|e| matches!(e, proverguard_telemetry::trace::TraceEvent::Span { .. }))
            .count() as u64;
    }
    ThreadExit {
        registry: metrics::snapshot(),
        spans,
        dropped_spans: trace::dropped(),
    }
}

fn serve_connection(w: usize, item: QueueItem, ctx: &GatewayShared) {
    let mut conn = item.conn;
    metrics::histogram_record(
        "gateway.queue_wait_us",
        u64::try_from(item.enqueued_at.elapsed().as_micros()).unwrap_or(u64::MAX),
    );
    let session_start = Instant::now();
    trace::set_now(ctx.elapsed_us());
    let span = trace::span("gateway.session");

    ctx.stats.per_worker_sessions[w].fetch_add(1, Ordering::SeqCst);
    let read_timeout = Duration::from_millis(ctx.config.read_timeout_ms);
    // One budget covers *every* read until the connection reaches serving
    // state — the first hello and each later handshake message draw down
    // the same deadline, so a slowloris peer dribbling one frame per
    // timeout cannot hold a worker for k × read_timeout.
    let establish_deadline = session_start + read_timeout;

    let fail_handshake = |label: &'static str| {
        ctx.stats.handshake_failed.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.handshake_failed", 1);
        metrics::counter_add(label, 1);
    };

    let _ = conn.set_deadline(Some(read_timeout));
    let first = match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
        Ok(Ok(msg)) => msg,
        Ok(Err(_)) => {
            fail_handshake("gateway.handshake.garbage");
            finish_span(ctx, span);
            return;
        }
        Err(_) => {
            fail_handshake("gateway.handshake.link");
            finish_span(ctx, span);
            return;
        }
    };
    match first {
        GatewayMsg::Hello { device_id } => {
            serve_oneshot(conn.as_mut(), device_id, ctx, &fail_handshake);
        }
        GatewayMsg::SessHello {
            device_id,
            session_id: None,
        } => {
            serve_session_handshake(
                conn.as_mut(),
                device_id,
                establish_deadline,
                ctx,
                &fail_handshake,
            );
        }
        GatewayMsg::SessHello {
            device_id,
            session_id: Some(sid),
        } => {
            serve_session_round(conn.as_mut(), device_id, sid, ctx, &fail_handshake);
        }
        _ => fail_handshake("gateway.handshake.garbage"),
    }
    metrics::histogram_record(
        "gateway.session_us",
        u64::try_from(session_start.elapsed().as_micros()).unwrap_or(u64::MAX),
    );
    finish_span(ctx, span);
}

/// Time left until `deadline`, if any.
fn remaining(deadline: Instant) -> Option<Duration> {
    let left = deadline.saturating_duration_since(Instant::now());
    (left > Duration::ZERO).then_some(left)
}

/// Records a finished attestation attempt (one-shot session, handshake,
/// or in-session round): Bye, fleet ledger, ok/failed counters.
fn conclude(conn: &mut dyn Transport, device_id: u64, verified: bool, ctx: &GatewayShared) {
    let write_timeout = Duration::from_millis(ctx.config.write_timeout_ms);
    let _ = conn.set_deadline(Some(write_timeout));
    let _ = conn.send(&GatewayMsg::Bye { verified }.encode());
    record_conclusion(device_id, verified, ctx);
}

/// The driver-independent half of [`conclude`]: fleet ledger + ok/failed
/// counters. The reactor driver enqueues its own (non-blocking) `Bye` and
/// then calls this, so both drivers account outcomes identically.
fn record_conclusion(device_id: u64, verified: bool, ctx: &GatewayShared) {
    let now_ms = ctx.elapsed_ms();
    ctx.fleet
        .lock()
        .expect("fleet lock poisoned")
        .record_outcome(device_id as usize, verified, now_ms);
    if verified {
        ctx.stats.sessions_ok.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.sessions_ok", 1);
    } else {
        ctx.stats.sessions_failed.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.sessions_failed", 1);
    }
}

/// The classic one-shot path: a full [`SessionDriver`] exchange with
/// retries, every request carrying its own outer authenticator.
fn serve_oneshot(
    conn: &mut dyn Transport,
    hello: u64,
    ctx: &GatewayShared,
    fail_handshake: &dyn Fn(&'static str),
) {
    let write_timeout = Duration::from_millis(ctx.config.write_timeout_ms);
    let Some(entry) = ctx.directory.get(hello) else {
        fail_handshake("gateway.handshake.unknown_device");
        let _ = conn.set_deadline(Some(write_timeout));
        let _ = conn.send(&GatewayMsg::Bye { verified: false }.encode());
        return;
    };

    if entry.service_floor_ms > 0 {
        thread::sleep(Duration::from_millis(entry.service_floor_ms));
    }

    let policy = RetryPolicy {
        jitter_seed: ctx.config.retry.jitter_seed ^ hello,
        ..ctx.config.retry
    };
    let mut link = GatewayLink {
        conn: &mut *conn,
        entry,
        ctx,
        dead: false,
    };
    let report = SessionDriver::new(policy).run(&mut link);
    conclude(conn, hello, report.succeeded(), ctx);
}

/// Session establishment: the attested handshake. Every read draws down
/// `deadline` (the per-connection establishment budget), the embedded
/// attestation is full-scope, and the session enters the shared table
/// only after the response verifies.
fn serve_session_handshake(
    conn: &mut dyn Transport,
    device_id: u64,
    deadline: Instant,
    ctx: &GatewayShared,
    fail_handshake: &dyn Fn(&'static str),
) {
    let write_timeout = Duration::from_millis(ctx.config.write_timeout_ms);
    let Some(entry) = ctx.directory.get(device_id) else {
        fail_handshake("gateway.handshake.unknown_device");
        let _ = conn.set_deadline(Some(write_timeout));
        let _ = conn.send(&GatewayMsg::Bye { verified: false }.encode());
        return;
    };
    if entry.service_floor_ms > 0 {
        thread::sleep(Duration::from_millis(entry.service_floor_ms));
    }
    trace::set_now(ctx.elapsed_us());
    let hs_span = trace::span("gateway.handshake");

    let (init, request) = {
        let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
        let now = ctx.elapsed_ms().max(verifier.now_ms());
        verifier.set_time_ms(now);
        match channel::verifier_begin(&mut verifier, ctx.config.rekey_after_rounds) {
            Ok(pair) => pair,
            Err(_) => {
                fail_handshake("gateway.handshake.internal");
                finish_span(ctx, hs_span);
                return;
            }
        }
    };
    let _ = conn.set_deadline(Some(write_timeout));
    if conn
        .send(&GatewayMsg::SessInit(init.encode()).encode())
        .is_err()
    {
        fail_handshake("gateway.handshake.link");
        finish_span(ctx, hs_span);
        return;
    }

    // The accept read runs on whatever is left of the establishment
    // budget — a peer that stalls after SessInit is cut off here.
    let Some(left) = remaining(deadline) else {
        fail_handshake("gateway.handshake.deadline");
        finish_span(ctx, hs_span);
        return;
    };
    let _ = conn.set_deadline(Some(left));
    let accept = match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
        Ok(Ok(GatewayMsg::SessAccept(raw))) => match HandshakeAccept::decode(&raw) {
            Ok(accept) => accept,
            Err(_) => {
                fail_handshake("gateway.handshake.garbage");
                finish_span(ctx, hs_span);
                return;
            }
        },
        Ok(Ok(GatewayMsg::Reject(_))) => {
            // The prover's own defences refused the embedded attestation:
            // a completed (failed) attestation attempt, not a dead link.
            finish_span(ctx, hs_span);
            conclude(conn, device_id, false, ctx);
            return;
        }
        Ok(_) => {
            fail_handshake("gateway.handshake.garbage");
            finish_span(ctx, hs_span);
            return;
        }
        Err(_) => {
            fail_handshake("gateway.handshake.deadline");
            finish_span(ctx, hs_span);
            return;
        }
    };

    let confirmed = entry.confirm_session(&init, &request, &accept);
    finish_span(ctx, hs_span);
    match confirmed {
        Ok(chan) => {
            let now_ms = ctx.elapsed_ms();
            ctx.stats.sessions_opened.fetch_add(1, Ordering::SeqCst);
            ctx.stats.sessions_active.fetch_add(1, Ordering::SeqCst);
            metrics::counter_add("gateway.session.opened", 1);
            ctx.sessions
                .lock()
                .expect("session table lock poisoned")
                .insert(
                    SessionEntry {
                        device_id,
                        chan,
                        last_used_ms: now_ms,
                    },
                    ctx.config.session_capacity,
                    now_ms,
                    ctx.config.session_idle_ms,
                    &ctx.stats,
                );
            conclude(conn, device_id, true, ctx);
        }
        Err(_) => {
            metrics::counter_add("gateway.session.confirm_failed", 1);
            conclude(conn, device_id, false, ctx);
        }
    }
}

/// One cheap in-session attestation round over an established session:
/// unsigned inner request out, sealed frame back, lockstep rekey when
/// the cadence is reached. Any irregularity fails closed — the session
/// is torn down (evicted) and the prover must re-handshake.
fn serve_session_round(
    conn: &mut dyn Transport,
    device_id: u64,
    sid: [u8; channel::SESSION_ID_SIZE],
    ctx: &GatewayShared,
    fail_handshake: &dyn Fn(&'static str),
) {
    let write_timeout = Duration::from_millis(ctx.config.write_timeout_ms);
    let read_timeout = Duration::from_millis(ctx.config.read_timeout_ms);
    let Some(entry) = ctx.directory.get(device_id) else {
        fail_handshake("gateway.handshake.unknown_device");
        let _ = conn.set_deadline(Some(write_timeout));
        let _ = conn.send(&GatewayMsg::Bye { verified: false }.encode());
        return;
    };
    let now_ms = ctx.elapsed_ms();
    let Some(mut session) = ctx
        .sessions
        .lock()
        .expect("session table lock poisoned")
        .take(
            device_id,
            sid,
            now_ms,
            ctx.config.session_idle_ms,
            &ctx.stats,
        )
    else {
        // Unknown/expired/foreign session id: cheap reject, no key
        // material consulted, the prover re-handshakes.
        fail_handshake("gateway.session.expired_lookup");
        let _ = conn.set_deadline(Some(write_timeout));
        let _ = conn.send(&GatewayMsg::Reject(RejectReason::SessionExpired).encode());
        let _ = conn.send(&GatewayMsg::Bye { verified: false }.encode());
        return;
    };
    if entry.service_floor_ms > 0 {
        thread::sleep(Duration::from_millis(entry.service_floor_ms));
    }
    trace::set_now(ctx.elapsed_us());
    let round_span = trace::span("gateway.session_round");

    // The taken-out session is torn down (fail closed) unless the round
    // completes verified; only then is it reinserted.
    let teardown = |label: &'static str| {
        ctx.stats.sessions_evicted.fetch_add(1, Ordering::SeqCst);
        ctx.stats.sessions_active.fetch_sub(1, Ordering::SeqCst);
        metrics::counter_add("gateway.session.evicted", 1);
        metrics::counter_add(label, 1);
    };

    let request = {
        let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
        let now = ctx.elapsed_ms().max(verifier.now_ms());
        verifier.set_time_ms(now);
        match verifier.make_session_request() {
            Ok(r) => r,
            Err(_) => {
                teardown("gateway.session.internal");
                finish_span(ctx, round_span);
                conclude(conn, device_id, false, ctx);
                return;
            }
        }
    };
    let payload = GatewayMsg::AttReq(request.to_bytes()).encode();
    let frame = session.chan.seal_next(&payload);
    let _ = conn.set_deadline(Some(write_timeout));
    if conn.send(&GatewayMsg::SessFrame(frame).encode()).is_err() {
        teardown("gateway.session.link");
        finish_span(ctx, round_span);
        conclude(conn, device_id, false, ctx);
        return;
    }

    let _ = conn.set_deadline(Some(read_timeout));
    let reply = match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
        Ok(Ok(msg)) => msg,
        _ => {
            teardown("gateway.session.link");
            finish_span(ctx, round_span);
            conclude(conn, device_id, false, ctx);
            return;
        }
    };
    // Downgrade defence: inside a session only sealed frames count. A
    // plain AttResp (an attacker stripping the channel) is refused
    // *before* any session-key work.
    let GatewayMsg::SessFrame(sealed) = reply else {
        teardown("gateway.session.downgrade");
        finish_span(ctx, round_span);
        conclude(conn, device_id, false, ctx);
        return;
    };
    let inner = match session.chan.open(&sealed) {
        Ok(inner) => inner,
        Err(e) => {
            let label = match e.reject_reason() {
                Some(RejectReason::SessionReplay) => "gateway.session.replay",
                _ => "gateway.session.auth_fail",
            };
            teardown(label);
            finish_span(ctx, round_span);
            conclude(conn, device_id, false, ctx);
            return;
        }
    };
    let verified = match GatewayMsg::decode(&inner) {
        Ok(GatewayMsg::AttResp(raw)) => match AttestResponse::from_bytes(&raw) {
            Ok(response) => entry.check_and_note(&request, &response),
            Err(_) => false,
        },
        Ok(GatewayMsg::Reject(_)) => {
            let mut verifier = entry.verifier.lock().expect("verifier lock poisoned");
            verifier.note_failed(&request);
            false
        }
        _ => false,
    };
    if verified {
        if session.chan.note_round() {
            // Deterministic lockstep ratchet: the old epoch retires as
            // "rekeyed", its successor counts as newly opened.
            ctx.stats.sessions_rekeyed.fetch_add(1, Ordering::SeqCst);
            ctx.stats.sessions_opened.fetch_add(1, Ordering::SeqCst);
            metrics::counter_add("gateway.session.rekeyed", 1);
            trace::set_now(ctx.elapsed_us());
            let rekey_span = trace::span("gateway.rekey");
            finish_span(ctx, rekey_span);
        }
        session.last_used_ms = ctx.elapsed_ms();
        ctx.sessions
            .lock()
            .expect("session table lock poisoned")
            .insert(
                session,
                ctx.config.session_capacity,
                ctx.elapsed_ms(),
                ctx.config.session_idle_ms,
                &ctx.stats,
            );
    } else {
        teardown("gateway.session.round_failed");
    }
    finish_span(ctx, round_span);
    conclude(conn, device_id, verified, ctx);
}

fn finish_span(ctx: &GatewayShared, span: proverguard_telemetry::trace::SpanGuard) {
    trace::set_now(ctx.elapsed_us());
    drop(span);
}

/// [`SessionLink`] over one accepted connection: real frames out, real
/// deadlines, real sleeps for backoff.
struct GatewayLink<'a> {
    conn: &'a mut dyn Transport,
    entry: &'a DeviceEntry,
    ctx: &'a GatewayShared,
    /// Set once the link is unrecoverable (peer gone, stream poisoned);
    /// later attempts fail instantly instead of burning timeouts.
    dead: bool,
}

impl SessionLink for GatewayLink<'_> {
    fn attempt(&mut self, timeout_ms: u64) -> AttemptOutcome {
        if self.dead {
            return AttemptOutcome::RequestLost;
        }
        let request = {
            let mut verifier = self.entry.verifier.lock().expect("verifier lock poisoned");
            // Keep the verifier clock in step with gateway wall time so
            // timestamp-freshness fleets work over real links.
            let now = self.ctx.elapsed_ms().max(verifier.now_ms());
            verifier.set_time_ms(now);
            match verifier.make_request() {
                Ok(r) => r,
                Err(e) => return AttemptOutcome::Error(e),
            }
        };
        let deadline = Duration::from_millis(timeout_ms.max(1));
        if self.conn.set_deadline(Some(deadline)).is_err() {
            self.dead = true;
            return AttemptOutcome::RequestLost;
        }
        if let Err(e) = self
            .conn
            .send(&GatewayMsg::AttReq(request.to_bytes()).encode())
        {
            self.dead = !e.is_transient();
            return AttemptOutcome::RequestLost;
        }
        match self.conn.recv() {
            Ok(bytes) => match GatewayMsg::decode(&bytes) {
                Ok(GatewayMsg::AttResp(raw)) => {
                    let Ok(response) = AttestResponse::from_bytes(&raw) else {
                        return AttemptOutcome::BadResponse;
                    };
                    if self.entry.check_and_note(&request, &response) {
                        AttemptOutcome::Success
                    } else {
                        AttemptOutcome::BadResponse
                    }
                }
                Ok(GatewayMsg::Reject(reason)) => {
                    let mut verifier = self.entry.verifier.lock().expect("verifier lock poisoned");
                    verifier.note_failed(&request);
                    AttemptOutcome::Rejected(reason)
                }
                _ => AttemptOutcome::BadResponse,
            },
            Err(TransportError::Timeout) => AttemptOutcome::ResponseLost,
            Err(TransportError::Malformed { .. } | TransportError::TooLarge { .. }) => {
                // Stream poisoned by garbage — no point retrying.
                self.dead = true;
                AttemptOutcome::BadResponse
            }
            Err(_) => {
                self.dead = true;
                AttemptOutcome::ResponseLost
            }
        }
    }

    fn wait_ms(&mut self, ms: u64) {
        if !self.dead {
            thread::sleep(Duration::from_millis(
                ms.min(self.ctx.config.backoff_cap_ms),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Prover agent (client side)
// ---------------------------------------------------------------------------

/// How one prover-side gateway session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentOutcome {
    /// The gateway drove the session to completion and said goodbye.
    Served {
        /// Attestation requests the prover processed (incl. rejected).
        requests_handled: u32,
        /// What the gateway's `Bye` said about the final attempt.
        verified: bool,
    },
    /// The gateway shed the connection with `Busy`.
    Busy,
    /// The link died (timeout, hangup, I/O error).
    ConnectionLost,
    /// The gateway spoke something that is not the protocol.
    ProtocolError,
    /// The named session is gone at the gateway (idle-expired, evicted,
    /// or never known) or desynced: the agent dropped its local session
    /// state and must re-handshake.
    /// [`ProverAgent::attest_with_retry`] does so transparently.
    SessionExpired,
}

impl AgentOutcome {
    /// `true` iff the session completed with a verified attestation.
    #[must_use]
    pub fn is_verified(&self) -> bool {
        matches!(self, AgentOutcome::Served { verified: true, .. })
    }
}

/// The prover side of the gateway protocol: dials in, answers `AttReq`
/// frames with the device's real [`Prover`] pipeline (so every paper
/// defence — auth, freshness, admission — applies on the wire), and obeys
/// `Busy`.
#[derive(Debug)]
pub struct ProverAgent {
    prover: Prover,
    device_id: u64,
    /// `true` → dial with `SessHello` and ride the secure channel;
    /// `false` → classic one-shot protocol.
    session_mode: bool,
    /// The live prover-side channel state. Volatile by design: a device
    /// reboot loses it (session keys live in RAM, never in NV), which is
    /// exactly what makes the mid-session-reboot story safe — the sealed
    /// freshness record survives, the session keys do not.
    session: Option<SecureChannel>,
}

impl ProverAgent {
    /// An agent for `prover`, registered as `device_id` at the gateway.
    #[must_use]
    pub fn new(prover: Prover, device_id: u64) -> Self {
        ProverAgent {
            prover,
            device_id,
            session_mode: false,
            session: None,
        }
    }

    /// A session-mode agent: dials with `SessHello`, runs the attested
    /// handshake once, then rides cheap sealed session rounds.
    #[must_use]
    pub fn with_sessions(prover: Prover, device_id: u64) -> Self {
        ProverAgent {
            prover,
            device_id,
            session_mode: true,
            session: None,
        }
    }

    /// The wrapped prover.
    #[must_use]
    pub fn prover(&self) -> &Prover {
        &self.prover
    }

    /// Mutable access (e.g. to install an admission policy).
    pub fn prover_mut(&mut self) -> &mut Prover {
        &mut self.prover
    }

    /// The live session's public id, if one is established.
    #[must_use]
    pub fn session_id(&self) -> Option<[u8; channel::SESSION_ID_SIZE]> {
        self.session.as_ref().map(SecureChannel::session_id)
    }

    /// Removes and returns the live session state (adversary probes use
    /// this to capture keys for cross-session-reuse attempts).
    pub fn take_session(&mut self) -> Option<SecureChannel> {
        self.session.take()
    }

    /// Installs session state (adversary probes: stale or foreign keys).
    pub fn install_session(&mut self, session: SecureChannel) {
        self.session = Some(session);
    }

    /// Reboots the device through the prover's recovery-boot path and
    /// drops the volatile session state, like a real power cycle: the
    /// sealed freshness record is restored from NV, the session keys are
    /// gone. The next dial re-handshakes from scratch.
    ///
    /// # Errors
    ///
    /// As [`Prover::reboot`].
    pub fn reboot(&mut self) -> Result<crate::persist::RecoveryOutcome, AttestError> {
        self.session = None;
        self.prover.reboot()
    }

    /// Runs one session over an established connection.
    pub fn run_session(&mut self, conn: &mut dyn Transport, io_timeout: Duration) -> AgentOutcome {
        if self.session_mode {
            return self.run_secure_session(conn, io_timeout);
        }
        self.run_oneshot(conn, io_timeout)
    }

    fn run_oneshot(&mut self, conn: &mut dyn Transport, io_timeout: Duration) -> AgentOutcome {
        if conn.set_deadline(Some(io_timeout)).is_err() {
            return AgentOutcome::ConnectionLost;
        }
        let hello = GatewayMsg::Hello {
            device_id: self.device_id,
        };
        if conn.send(&hello.encode()).is_err() {
            // The gateway may have shed this connection before reading a
            // byte — a Busy (or Bye) frame can already be queued on our
            // side even though the peer is gone.
            return drain_outcome(conn, 0);
        }
        let mut requests_handled = 0u32;
        let session_start = Instant::now();
        let mut last_seen = Duration::ZERO;
        loop {
            let bytes = match conn.recv() {
                Ok(bytes) => bytes,
                Err(_) => return AgentOutcome::ConnectionLost,
            };
            // Real wall time passed while we waited; let it pass for the
            // prover's simulated clock too (freshness windows, admission
            // refill).
            let elapsed = session_start.elapsed();
            let delta_ms = (elapsed - last_seen).as_millis() as u64;
            last_seen = elapsed;
            if delta_ms > 0 {
                let _ = self.prover.advance_time_ms(delta_ms);
            }
            match GatewayMsg::decode(&bytes) {
                Ok(GatewayMsg::AttReq(raw)) => {
                    let reply = match self.prover.handle_wire_request(&raw) {
                        Ok(resp) => GatewayMsg::AttResp(resp),
                        Err(AttestError::Rejected(reason)) => GatewayMsg::Reject(reason),
                        Err(_) => GatewayMsg::Reject(RejectReason::Malformed),
                    };
                    requests_handled += 1;
                    if conn.send(&reply.encode()).is_err() {
                        // The gateway may have timed this attempt out and
                        // hung up with a queued Bye.
                        return drain_outcome(conn, requests_handled);
                    }
                }
                Ok(GatewayMsg::Command(raw)) => {
                    let reply = match crate::services::CommandRequest::from_bytes(&raw)
                        .and_then(|request| self.prover.handle_command(&request))
                    {
                        Ok(receipt) => GatewayMsg::Receipt(receipt.to_bytes()),
                        Err(AttestError::Rejected(reason)) => GatewayMsg::Reject(reason),
                        Err(AttestError::MalformedMessage { .. }) => {
                            GatewayMsg::Reject(RejectReason::Malformed)
                        }
                        // A torn flash (injected power loss) kills the
                        // device, not the protocol: the connection just
                        // drops, like the real board browning out.
                        Err(AttestError::PowerLoss) => return AgentOutcome::ConnectionLost,
                        Err(_) => GatewayMsg::Reject(RejectReason::Malformed),
                    };
                    requests_handled += 1;
                    if conn.send(&reply.encode()).is_err() {
                        return drain_outcome(conn, requests_handled);
                    }
                }
                Ok(GatewayMsg::Busy) => return AgentOutcome::Busy,
                Ok(GatewayMsg::Bye { verified }) => {
                    return AgentOutcome::Served {
                        requests_handled,
                        verified,
                    }
                }
                _ => return AgentOutcome::ProtocolError,
            }
        }
    }

    /// Session-mode connection: attested handshake when no session is
    /// live, one sealed attestation round when one is. Frame MAC work is
    /// charged to the device's cycle clock (`prover.session_auth` /
    /// `prover.session_seal` spans) — that small HMAC *is* the per-round
    /// auth cost the session amortizes the one-shot outer MAC down to.
    fn run_secure_session(
        &mut self,
        conn: &mut dyn Transport,
        io_timeout: Duration,
    ) -> AgentOutcome {
        if conn.set_deadline(Some(io_timeout)).is_err() {
            return AgentOutcome::ConnectionLost;
        }
        let resumed = self.session_id();
        let hello = GatewayMsg::SessHello {
            device_id: self.device_id,
            session_id: resumed,
        };
        if conn.send(&hello.encode()).is_err() {
            return drain_outcome(conn, 0);
        }
        let mut requests_handled = 0u32;
        let mut in_round = false;
        let session_start = Instant::now();
        let mut last_seen = Duration::ZERO;
        loop {
            let bytes = match conn.recv() {
                Ok(bytes) => bytes,
                Err(_) => return AgentOutcome::ConnectionLost,
            };
            let elapsed = session_start.elapsed();
            let delta_ms = (elapsed - last_seen).as_millis() as u64;
            last_seen = elapsed;
            if delta_ms > 0 {
                let _ = self.prover.advance_time_ms(delta_ms);
            }
            match GatewayMsg::decode(&bytes) {
                Ok(GatewayMsg::SessInit(raw)) if resumed.is_none() => {
                    let Ok(init) = HandshakeInit::decode(&raw) else {
                        return AgentOutcome::ProtocolError;
                    };
                    requests_handled += 1;
                    match channel::prover_accept(&mut self.prover, &init) {
                        Ok((accept, chan)) => {
                            self.session = Some(chan);
                            let msg = GatewayMsg::SessAccept(accept.encode());
                            if conn.send(&msg.encode()).is_err() {
                                return drain_outcome(conn, requests_handled);
                            }
                        }
                        Err(AttestError::Rejected(reason)) => {
                            if conn.send(&GatewayMsg::Reject(reason).encode()).is_err() {
                                return drain_outcome(conn, requests_handled);
                            }
                        }
                        Err(AttestError::PowerLoss) => return AgentOutcome::ConnectionLost,
                        Err(_) => {
                            let msg = GatewayMsg::Reject(RejectReason::Malformed);
                            if conn.send(&msg.encode()).is_err() {
                                return drain_outcome(conn, requests_handled);
                            }
                        }
                    }
                }
                Ok(GatewayMsg::SessFrame(raw)) if self.session.is_some() => {
                    // Cheap per-message auth: one short HMAC over the
                    // frame, charged to the device clock.
                    let open_cycles = self
                        .prover
                        .mcu()
                        .cost_table()
                        .mac_cost(MacAlgorithm::HmacSha1, raw.len());
                    let session = self.session.as_mut().expect("session checked above");
                    let opened =
                        self.prover
                            .charge_stage("prover.session_auth", open_cycles, |_| {
                                session.open(&raw)
                            });
                    let payload = match opened {
                        Ok(payload) => payload,
                        Err(e) => {
                            // A frame our own keys cannot open: replay
                            // (drop it, stay alive) or desync/forgery
                            // (fail closed, force a re-handshake).
                            let reason = e.reject_reason().unwrap_or(RejectReason::Malformed);
                            if reason == RejectReason::SessionReplay {
                                let msg = GatewayMsg::Reject(reason);
                                if conn.send(&msg.encode()).is_err() {
                                    return drain_outcome(conn, requests_handled);
                                }
                                continue;
                            }
                            self.session = None;
                            let _ = conn.send(&GatewayMsg::Reject(reason).encode());
                            return AgentOutcome::SessionExpired;
                        }
                    };
                    let reply = match GatewayMsg::decode(&payload) {
                        Ok(GatewayMsg::AttReq(req_raw)) => {
                            requests_handled += 1;
                            in_round = true;
                            match self.prover.handle_session_wire_request(&req_raw) {
                                Ok(resp) => GatewayMsg::AttResp(resp),
                                Err(AttestError::Rejected(reason)) => GatewayMsg::Reject(reason),
                                Err(AttestError::PowerLoss) => return AgentOutcome::ConnectionLost,
                                Err(_) => GatewayMsg::Reject(RejectReason::Malformed),
                            }
                        }
                        _ => return AgentOutcome::ProtocolError,
                    };
                    let inner = reply.encode();
                    let seal_cycles = self
                        .prover
                        .mcu()
                        .cost_table()
                        .mac_cost(MacAlgorithm::HmacSha1, inner.len());
                    let session = self.session.as_mut().expect("session checked above");
                    let frame =
                        self.prover
                            .charge_stage("prover.session_seal", seal_cycles, |_| {
                                session.seal_next(&inner)
                            });
                    if conn.send(&GatewayMsg::SessFrame(frame).encode()).is_err() {
                        return drain_outcome(conn, requests_handled);
                    }
                }
                Ok(GatewayMsg::AttReq(_) | GatewayMsg::Command(_)) => {
                    // Downgrade-to-one-shot: a session-mode agent never
                    // answers bare requests. Refused before any pipeline
                    // or key-schedule work.
                    let _ = conn.send(&GatewayMsg::Reject(RejectReason::SessionAuth).encode());
                    return AgentOutcome::ProtocolError;
                }
                Ok(GatewayMsg::Reject(RejectReason::SessionExpired)) => {
                    self.session = None;
                    return AgentOutcome::SessionExpired;
                }
                Ok(GatewayMsg::Busy) => return AgentOutcome::Busy,
                Ok(GatewayMsg::Bye { verified }) => {
                    if verified && in_round {
                        // Lockstep rekey: count the verified round exactly
                        // when the gateway does. A lost Bye desyncs the
                        // ratchet and the next round fails closed into a
                        // re-handshake — never an accepted forgery.
                        if let Some(session) = self.session.as_mut() {
                            session.note_round();
                        }
                    }
                    return AgentOutcome::Served {
                        requests_handled,
                        verified,
                    };
                }
                _ => return AgentOutcome::ProtocolError,
            }
        }
    }

    /// Dials, runs a session, and retries `Busy` shed with the jittered
    /// backoff of `policy` (each sleep capped at `busy_cap_ms`). Gives up
    /// after `policy.max_retries` re-dials. A [`AgentOutcome::
    /// SessionExpired`] verdict triggers one transparent re-handshake
    /// dial (the local session state is already dropped, so the next dial
    /// opens fresh) without consuming the busy budget.
    pub fn attest_with_retry<F>(
        &mut self,
        mut connect: F,
        policy: &RetryPolicy,
        io_timeout: Duration,
        busy_cap_ms: u64,
    ) -> AgentOutcome
    where
        F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
    {
        let total = policy.max_retries + 1;
        let mut attempt = 1;
        let mut rehandshaken = false;
        loop {
            let mut conn = match connect() {
                Ok(conn) => conn,
                Err(_) => return AgentOutcome::ConnectionLost,
            };
            match self.run_session(conn.as_mut(), io_timeout) {
                AgentOutcome::Busy => {
                    if attempt >= total {
                        return AgentOutcome::Busy;
                    }
                    let nap = policy.backoff_ms(attempt).min(busy_cap_ms);
                    thread::sleep(Duration::from_millis(nap));
                    let _ = self.prover.advance_time_ms(nap);
                    attempt += 1;
                }
                AgentOutcome::SessionExpired if !rehandshaken => {
                    rehandshaken = true;
                }
                outcome => return outcome,
            }
        }
    }
}

/// Reads out whatever verdict frames the gateway left behind after a
/// failed send (the peer hangs up right after writing `Busy`/`Bye`, so
/// the frames outlive the connection).
fn drain_outcome(conn: &mut dyn Transport, requests_handled: u32) -> AgentOutcome {
    loop {
        match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
            Ok(Ok(GatewayMsg::Busy)) => return AgentOutcome::Busy,
            Ok(Ok(GatewayMsg::Bye { verified })) => {
                return AgentOutcome::Served {
                    requests_handled,
                    verified,
                }
            }
            Ok(Ok(_)) => continue, // stale in-session frame
            Ok(Err(_)) => return AgentOutcome::ProtocolError,
            Err(_) => return AgentOutcome::ConnectionLost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::ProverConfig;
    use proverguard_transport::frame::DEFAULT_MAX_FRAME;
    use proverguard_transport::mem::LoopbackHub;

    const KEY: [u8; 16] = [0x42; 16];

    fn provisioned(config: &ProverConfig) -> (Prover, Verifier) {
        let prover = Prover::provision(config.clone(), &KEY, b"app v1").unwrap();
        let verifier = Verifier::new(config, &KEY).unwrap();
        (prover, verifier)
    }

    #[test]
    fn wire_msgs_roundtrip() {
        let msgs = [
            GatewayMsg::Hello { device_id: 7 },
            GatewayMsg::AttReq(vec![1, 2, 3]),
            GatewayMsg::AttResp(vec![]),
            GatewayMsg::Reject(RejectReason::StaleCounter),
            GatewayMsg::Busy,
            GatewayMsg::Bye { verified: true },
            GatewayMsg::Bye { verified: false },
            GatewayMsg::SessHello {
                device_id: 3,
                session_id: None,
            },
            GatewayMsg::SessHello {
                device_id: 3,
                session_id: Some([9; channel::SESSION_ID_SIZE]),
            },
            GatewayMsg::SessInit(vec![4, 5]),
            GatewayMsg::SessAccept(vec![]),
            GatewayMsg::SessFrame(vec![6; 40]),
        ];
        for msg in msgs {
            assert_eq!(GatewayMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn wire_msgs_reject_garbage_without_panicking() {
        let bad: &[&[u8]] = &[
            &[],
            &[0],
            &[99, 1, 2],
            &[TAG_HELLO],                                    // truncated id
            &[TAG_HELLO, 1, 2, 3],                           // short id
            &[TAG_REJECT],                                   // missing code
            &[TAG_REJECT, 200],                              // unknown code
            &[TAG_BUSY, 1],                                  // busy with body
            &[TAG_BYE],                                      // missing flag
            &[TAG_BYE, 1, 2],                                // long flag
            &[TAG_SESS_HELLO],                               // no id
            &[TAG_SESS_HELLO, 0, 0, 0, 0, 0, 0, 0, 1],       // missing flag byte
            &[TAG_SESS_HELLO, 0, 0, 0, 0, 0, 0, 0, 1, 2],    // unknown flag
            &[TAG_SESS_HELLO, 0, 0, 0, 0, 0, 0, 0, 1, 1, 9], // short sid
            &[TAG_SESS_HELLO, 0, 0, 0, 0, 0, 0, 0, 1, 0, 9], // trailing after none
        ];
        for bytes in bad {
            assert!(
                matches!(
                    GatewayMsg::decode(bytes),
                    Err(AttestError::MalformedMessage { .. })
                ),
                "{bytes:?} should be malformed"
            );
        }
    }

    #[test]
    fn every_reject_reason_roundtrips() {
        for reason in [
            RejectReason::BadAuth,
            RejectReason::NonceReused,
            RejectReason::StaleCounter,
            RejectReason::TimestampNotMonotonic,
            RejectReason::TimestampOutOfWindow,
            RejectReason::FreshnessKindMismatch,
            RejectReason::Malformed,
            RejectReason::Throttled,
            RejectReason::DegradedMode,
            RejectReason::ScopeUnsupported,
            RejectReason::SessionExpired,
            RejectReason::SessionReplay,
            RejectReason::SessionAuth,
        ] {
            let msg = GatewayMsg::Reject(reason);
            assert_eq!(GatewayMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn gateway_serves_honest_sessions_over_loopback() {
        let config = ProverConfig::recommended();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let mut directory = DeviceDirectory::new();
        let mut agents = Vec::new();
        for id in 0..3u64 {
            let (prover, verifier) = provisioned(&config);
            let expected = prover.expected_memory().to_vec();
            assert_eq!(directory.register(verifier, expected), id);
            agents.push(ProverAgent::new(prover, id));
        }
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 2,
                // Debug-build memory MACs are slow; don't let a loaded CI
                // machine turn compute time into spurious retries.
                retry: RetryPolicy {
                    timeout_ms: 10_000,
                    ..GatewayConfig::default().retry
                },
                ..GatewayConfig::default()
            },
        );

        for agent in &mut agents {
            for _ in 0..2 {
                let mut conn = connector.connect().unwrap();
                let outcome = agent.run_session(&mut conn, Duration::from_secs(5));
                assert!(outcome.is_verified(), "honest session failed: {outcome:?}");
            }
        }

        let report = handle.shutdown();
        assert_eq!(report.stats.sessions_ok, 6);
        assert_eq!(report.stats.sessions_failed, 0);
        assert_eq!(report.stats.handshake_failed, 0);
        assert!(report.stats.partition_holds(), "{:?}", report.stats);
        // At least the per-session "gateway.session" span each; crypto
        // stages inside the workers add more.
        assert!(report.spans >= 6, "spans = {}", report.spans);
        assert_eq!(report.dropped_spans, 0);
        assert_eq!(report.metrics.counter("gateway.sessions_ok"), Some(6));
        let hist = report.metrics.histogram("gateway.session_us").unwrap();
        assert_eq!(hist.count(), 6);
        // Transport byte counters crossed the thread boundary too.
        assert!(report.metrics.counter("transport.bytes_in").unwrap_or(0) > 0);
    }

    #[test]
    fn secure_sessions_handshake_round_rekey_and_expire() {
        use crate::verifier::ScopePolicy;

        let config = ProverConfig::recommended_segmented();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let prover = Prover::provision(config.clone(), &KEY, b"app v1").unwrap();
        let mut verifier = Verifier::new(&config, &KEY).unwrap();
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
        let mut directory = DeviceDirectory::new();
        directory.register(verifier, prover.expected_memory().to_vec());
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 2,
                read_timeout_ms: 10_000,
                rekey_after_rounds: 2,
                ..GatewayConfig::default()
            },
        );
        let mut agent = ProverAgent::with_sessions(prover, 0);

        // Dial 1: attested handshake (full-scope attest inside).
        let mut conn = connector.connect().unwrap();
        let outcome = agent.run_session(&mut conn, Duration::from_secs(30));
        assert!(outcome.is_verified(), "handshake failed: {outcome:?}");
        let sid = agent.session_id().expect("session established");

        // Dials 2..=5: cheap sealed History rounds; cadence 2 → rekeys.
        for round in 0..4 {
            let mut conn = connector.connect().unwrap();
            let outcome = agent.run_session(&mut conn, Duration::from_secs(30));
            assert!(outcome.is_verified(), "round {round} failed: {outcome:?}");
            assert_eq!(agent.session_id(), Some(sid), "session id is stable");
        }

        // A forgotten session id must be rejected cheaply and the retry
        // wrapper must transparently re-handshake.
        let stale = agent.take_session().unwrap();
        let mut desynced = stale.clone();
        for _ in 0..3 {
            desynced.note_round(); // force epoch ahead of the gateway's
        }
        agent.install_session(desynced);
        let outcome = agent.attest_with_retry(
            || {
                connector
                    .connect()
                    .map(|c| Box::new(c) as Box<dyn Transport>)
            },
            &RetryPolicy::default(),
            Duration::from_secs(30),
            100,
        );
        assert!(outcome.is_verified(), "re-handshake failed: {outcome:?}");
        assert_ne!(agent.session_id(), Some(sid), "fresh session after desync");

        let report = handle.shutdown();
        // 1 handshake + 4 rounds + (1 failed desynced round + 1 fresh
        // handshake) = 6 ok, 1 failed.
        assert_eq!(report.stats.sessions_ok, 6, "{:?}", report.stats);
        assert_eq!(report.stats.sessions_failed, 1, "{:?}", report.stats);
        assert!(report.stats.partition_holds(), "{:?}", report.stats);
        assert!(
            report.stats.session_partition_holds(),
            "session partition: {:?}",
            report.stats
        );
        assert!(report.stats.sessions_rekeyed >= 2, "{:?}", report.stats);
        assert_eq!(report.stats.sessions_active, 1, "{:?}", report.stats);
        assert!(
            report
                .metrics
                .counter("gateway.session.opened")
                .unwrap_or(0)
                >= 2
        );
        assert!(
            report
                .metrics
                .counter("gateway.session.rekeyed")
                .unwrap_or(0)
                >= 2
        );
    }

    #[test]
    fn unknown_device_and_garbage_hello_fail_handshake() {
        let config = ProverConfig::recommended();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let (prover, verifier) = provisioned(&config);
        let mut directory = DeviceDirectory::new();
        directory.register(verifier, prover.expected_memory().to_vec());
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 1,
                read_timeout_ms: 200,
                ..GatewayConfig::default()
            },
        );

        // Unknown device id: polite Bye{false}.
        let mut conn = connector.connect().unwrap();
        conn.set_deadline(Some(Duration::from_secs(5))).unwrap();
        conn.send(&GatewayMsg::Hello { device_id: 99 }.encode())
            .unwrap();
        assert_eq!(
            GatewayMsg::decode(&conn.recv().unwrap()).unwrap(),
            GatewayMsg::Bye { verified: false }
        );

        // Garbage instead of Hello: connection just closes.
        let mut conn = connector.connect().unwrap();
        conn.send(b"not a gateway message").unwrap();
        conn.set_deadline(Some(Duration::from_secs(5))).unwrap();
        assert!(conn.recv().is_err());

        let report = handle.shutdown();
        assert_eq!(report.stats.handshake_failed, 2);
        assert_eq!(report.stats.sessions_total(), 0);
        assert!(report.stats.partition_holds());
    }

    #[test]
    fn full_queue_sheds_with_busy_and_honest_retry_gets_through() {
        let config = ProverConfig::recommended();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let mut directory = DeviceDirectory::new();
        let (prover, verifier) = provisioned(&config);
        // A slow device pins the single worker for ~150 ms per session.
        directory.register_with_floor(verifier, prover.expected_memory().to_vec(), 150);
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 1,
                queue_depth: 1,
                retry: RetryPolicy {
                    timeout_ms: 10_000,
                    ..GatewayConfig::default().retry
                },
                ..GatewayConfig::default()
            },
        );
        let mut agent = ProverAgent::new(prover, 0);

        // Pin the single worker with a silent connection (it blocks on the
        // Hello read timeout), then fill the 1-slot queue with another.
        let pin_worker = connector.connect().unwrap();
        thread::sleep(Duration::from_millis(50));
        let pin_queue = connector.connect().unwrap();
        thread::sleep(Duration::from_millis(50));
        // An honest dial now must be shed with a cheap Busy frame.
        let mut conn = connector.connect().unwrap();
        let outcome = agent.run_session(&mut conn, Duration::from_secs(30));
        assert_eq!(outcome, AgentOutcome::Busy);

        // With retries, the same agent eventually lands a verified
        // session (the dropped pinning connections free the worker).
        drop(pin_worker);
        drop(pin_queue);
        let policy = RetryPolicy {
            max_retries: 20,
            backoff_base_ms: 25,
            backoff_factor: 1,
            ..RetryPolicy::default()
        };
        let outcome = agent.attest_with_retry(
            || {
                connector
                    .connect()
                    .map(|c| Box::new(c) as Box<dyn Transport>)
            },
            &policy,
            Duration::from_secs(30),
            100,
        );
        assert!(outcome.is_verified(), "retrying agent failed: {outcome:?}");

        let report = handle.shutdown();
        assert!(report.stats.busy_rejected >= 1, "{:?}", report.stats);
        assert_eq!(report.stats.sessions_ok, 1);
        assert!(report.stats.partition_holds(), "{:?}", report.stats);
        assert_eq!(
            report.metrics.counter("gateway.busy"),
            report.stats.busy_rejected.into()
        );
    }
}
