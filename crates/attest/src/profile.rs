//! Protection profiles: the EA-MPU rule sets of §6.2 / Figure 1.
//!
//! [`rules_for`] produces the rules secure boot installs for a given
//! protection level and clock choice. The `Open` profile installs nothing
//! — it is the paper's strawman whose key, counter and clock `Adv_roam`
//! can manipulate at will.

use proverguard_mcu::map;
use proverguard_mcu::mpu::{Permissions, Rule};

use crate::clock::ClockKind;

/// How hard the prover's critical state is protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protection {
    /// No EA-MPU rules, MPU unlocked: the vulnerable baseline.
    Open,
    /// Execution-aware memory access control per §6.2, locked by secure
    /// boot.
    #[default]
    EaMac,
}

/// The rules secure boot installs for `protection` + `clock`.
///
/// With [`Protection::EaMac`]:
///
/// 1. `MPU-lockdown` — the configuration registers become read-only for
///    everyone (Figure 1a: "EA-MPU set up at system start by a secure boot
///    mechanism").
/// 2. `K_Attest` — readable only by `Code_Attest`, writable by no one.
/// 3. `counter_R` — read/write only by `Code_Attest`.
/// 4. Clock rules:
///    - hardware clocks: the RTC MMIO window is readable by everyone and
///      writable by no one;
///    - SW-clock: `Clock_MSB` owned by `Code_Clock` (with read access for
///      `Code_Attest`), the IDT write-locked, and the timer control
///      register write-locked ("disabling the timer interrupt must also
///      be prevented").
#[must_use]
pub fn rules_for(protection: Protection, clock: ClockKind) -> Vec<Rule> {
    match protection {
        Protection::Open => Vec::new(),
        Protection::EaMac => {
            let mut rules = vec![
                Rule::new(
                    "MPU-lockdown",
                    map::MMIO_MPU_CONFIG,
                    map::ALL_CODE,
                    Permissions::READ_ONLY,
                ),
                Rule::new(
                    "K_Attest",
                    map::ATTEST_KEY,
                    map::ATTEST_CODE,
                    Permissions::READ_ONLY,
                ),
                Rule::new(
                    "counter_R",
                    map::COUNTER_R,
                    map::ATTEST_CODE,
                    Permissions::READ_WRITE,
                ),
                // Extension state for the §7 services (clock-sync offset
                // and per-service counters) — same ownership as counter_R.
                Rule::new(
                    "trust-state",
                    map::TRUST_STATE,
                    map::ATTEST_CODE,
                    Permissions::READ_WRITE,
                ),
            ];
            match clock {
                ClockKind::None => {}
                ClockKind::Hw64 | ClockKind::Hw32Div => {
                    rules.push(Rule::new(
                        "RTC",
                        map::MMIO_RTC,
                        map::ALL_CODE,
                        Permissions::READ_ONLY,
                    ));
                }
                ClockKind::Software => {
                    rules.push(Rule::new(
                        "Clock_MSB",
                        map::CLOCK_MSB,
                        map::CLOCK_CODE,
                        Permissions::READ_WRITE,
                    ));
                    rules.push(Rule::new(
                        "Clock_MSB-read",
                        map::CLOCK_MSB,
                        map::ATTEST_CODE,
                        Permissions::READ_ONLY,
                    ));
                    rules.push(Rule::new(
                        "IDT",
                        map::IDT,
                        map::ALL_CODE,
                        Permissions::READ_ONLY,
                    ));
                    rules.push(Rule::new(
                        "Timer-control",
                        map::MMIO_TIMER,
                        map::ALL_CODE,
                        Permissions::READ_ONLY,
                    ));
                }
            }
            rules
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_profile_installs_nothing() {
        assert!(rules_for(Protection::Open, ClockKind::Software).is_empty());
    }

    #[test]
    fn eamac_base_has_four_rules() {
        let rules = rules_for(Protection::EaMac, ClockKind::None);
        assert_eq!(rules.len(), 4);
        let names: Vec<&str> = rules.iter().map(|r| r.name).collect();
        assert!(names.contains(&"MPU-lockdown"));
        assert!(names.contains(&"K_Attest"));
        assert!(names.contains(&"counter_R"));
        assert!(names.contains(&"trust-state"));
    }

    #[test]
    fn hardware_clock_adds_one_rule() {
        for kind in [ClockKind::Hw64, ClockKind::Hw32Div] {
            let rules = rules_for(Protection::EaMac, kind);
            assert_eq!(rules.len(), 5, "{kind:?}");
            assert!(rules.iter().any(|r| r.name == "RTC"));
        }
    }

    #[test]
    fn sw_clock_adds_four_rules() {
        let rules = rules_for(Protection::EaMac, ClockKind::Software);
        assert_eq!(rules.len(), 8);
        for name in ["Clock_MSB", "Clock_MSB-read", "IDT", "Timer-control"] {
            assert!(rules.iter().any(|r| r.name == name), "{name} missing");
        }
    }

    #[test]
    fn rule_count_fits_default_mpu() {
        use proverguard_mcu::device::DEFAULT_MPU_CAPACITY;
        for clock in [
            ClockKind::None,
            ClockKind::Hw64,
            ClockKind::Hw32Div,
            ClockKind::Software,
        ] {
            assert!(rules_for(Protection::EaMac, clock).len() <= DEFAULT_MPU_CAPACITY);
        }
    }
}
