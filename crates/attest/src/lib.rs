//! Prover-side DoS-protected remote attestation.
//!
//! This crate is the reproduction's **core library**: the attestation
//! protocol of the DAC'16 paper *"Remote Attestation for Low-End Embedded
//! Devices: the Prover's Perspective"*, with every prover-protection
//! mechanism the paper proposes:
//!
//! - **Request authentication** (§4.1): the verifier authenticates each
//!   `attreq` with a symmetric MAC ([`auth::AuthMethod::Mac`]) — or, to
//!   demonstrate the paper's "authentication-as-DoS paradox", with an
//!   ECDSA signature ([`auth::AuthMethod::Ecdsa`]).
//! - **Freshness** (§4.2): nonce history, monotonic counter, or timestamp
//!   ([`freshness`]), with the trade-offs of Table 2.
//! - **`Adv_roam` hardening** (§5–6): `K_Attest`, `counter_R`, the clock
//!   and the IDT protected by execution-aware MPU rules installed by
//!   secure boot ([`profile`]), for both the dedicated-hardware-clock
//!   prototype (Figure 1a) and the SW-clock prototype (Figure 1b,
//!   [`clock::SwClock`]).
//!
//! The [`prover::Prover`] runs on the simulated MCU from
//! [`proverguard_mcu`]; every access it makes to key, counter, clock and
//! RAM goes through the EA-MPU as `Code_Attest` / `Code_Clock`, so the
//! adversary crate can attack exactly the surfaces the paper analyses.
//!
//! # Quickstart
//!
//! ```
//! use proverguard_attest::prover::{Prover, ProverConfig};
//! use proverguard_attest::verifier::Verifier;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ProverConfig::recommended();
//! let key = [0x42u8; 16];
//! let mut prover = Prover::provision(config.clone(), &key, b"app v1")?;
//! let mut verifier = Verifier::new(&config, &key)?;
//!
//! let request = verifier.make_request()?;
//! let response = prover.handle_request(&request)?;
//! assert!(verifier.check_response(&request, &response, prover.expected_memory()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod auth;
pub mod campaign;
pub mod channel;
pub mod clock;
pub mod clocksync;
pub mod error;
pub mod fleet;
pub mod freshness;
pub mod gateway;
pub mod imagecache;
pub mod message;
pub mod persist;
pub mod profile;
pub mod prover;
pub mod segcache;
pub mod services;
pub mod session;
pub mod verifier;

pub use admission::{AdmissionController, AdmissionDecision, AdmissionPolicy};
pub use campaign::{
    CampaignAction, CampaignConfig, CampaignController, CampaignPhase, CampaignStats,
    DeviceOutcome, DeviceState, ImageId,
};
pub use channel::{HandshakeAccept, HandshakeInit, ReplayWindow, SecureChannel, SessionKeys};
pub use error::{AttestError, RejectReason};
pub use fleet::{
    BreakerPolicy, BreakerState, CircuitBreaker, DeviceHealth, FleetController, FleetPolicy,
};
pub use gateway::{
    AgentOutcome, DeviceDirectory, Gateway, GatewayConfig, GatewayHandle, GatewayMsg,
    GatewayReport, GatewaySnapshot, ProverAgent,
};
pub use imagecache::{CachedImage, ExpectedView, ImageCache, ImageCacheSnapshot, ImageKey};
pub use message::{AttestRequest, AttestResponse, AttestScope, FreshnessField};
pub use persist::{
    EpochLogRecord, FreshnessRecord, InMemoryNvStore, PersistedState, RecoveryOutcome,
    SharedNvStore,
};
pub use prover::{Prover, ProverConfig};
pub use segcache::{HistoryReport, SegmentCache, SegmentedParams};
pub use session::{
    AttemptOutcome, DirectLink, RetryPolicy, SessionDriver, SessionLink, SessionReport,
};
pub use verifier::{HistoryOutcome, ScopePolicy, Verifier};
