//! Gated security services — the paper's §7 future-work item 3.
//!
//! "Generalize proposed techniques to other network protocols (beyond
//! attestation) to mitigate DoS attacks on other security services on
//! embedded devices." The paper's introduction names two such services
//! built on attestation: **secure code update** and **secure memory
//! erasure** (SCUBA-style). This module generalizes the prover-protection
//! gate — authenticate first, check freshness second, only then do the
//! expensive thing — to an arbitrary command protocol:
//!
//! - [`Command::EraseAppRam`] — zero the application RAM (expensive:
//!   ~512 KiB of writes);
//! - [`Command::UpdateFirmware`] — reprogram flash (very expensive);
//! - [`Command::Ping`] — a cheap liveness probe, for contrast.
//!
//! Each command carries its own monotonic counter (persisted in the
//! EA-MAC-protected [`map::TRUST_STATE`] word) and the same authenticator
//! as attestation requests. The receipt MACs the post-state digest, so
//! the verifier gets attestation-grade evidence that the command ran.

use proverguard_crypto::mac::MacKey;
use proverguard_crypto::sha1::Sha1;
use proverguard_mcu::device::Mcu;
use proverguard_mcu::map;

use crate::error::{AttestError, RejectReason};

/// A gated command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Cheap liveness probe.
    Ping,
    /// Zero the application RAM (secure memory erasure).
    EraseAppRam,
    /// Replace the flash image (secure code update).
    UpdateFirmware {
        /// The new application image.
        image: Vec<u8>,
    },
}

impl Command {
    fn kind_byte(&self) -> u8 {
        match self {
            Command::Ping => 0,
            Command::EraseAppRam => 1,
            Command::UpdateFirmware { .. } => 2,
        }
    }

    /// Payload bytes folded into the authenticated message.
    fn payload(&self) -> &[u8] {
        match self {
            Command::UpdateFirmware { image } => image,
            _ => &[],
        }
    }
}

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::Ping => write!(f, "ping"),
            Command::EraseAppRam => write!(f, "erase app RAM"),
            Command::UpdateFirmware { image } => {
                write!(f, "update firmware ({} bytes)", image.len())
            }
        }
    }
}

/// An authenticated command request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandRequest {
    /// Monotonic command counter (independent stream).
    pub counter: u64,
    /// The command.
    pub command: Command,
    /// Authenticator over [`CommandRequest::signed_bytes`].
    pub auth: Vec<u8>,
}

impl CommandRequest {
    /// The bytes the authenticator covers.
    #[must_use]
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(11 + self.command.payload().len());
        out.extend_from_slice(b"CM"); // domain separation
        out.extend_from_slice(&self.counter.to_be_bytes());
        out.push(self.command.kind_byte());
        out.extend_from_slice(self.command.payload());
        out
    }

    /// Wire encoding: `counter u64 BE ‖ kind u8 ‖ auth_len u16 BE ‖ auth
    /// ‖ payload_len u32 BE ‖ payload`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.command.payload();
        let mut out = Vec::with_capacity(15 + self.auth.len() + payload.len());
        out.extend_from_slice(&self.counter.to_be_bytes());
        out.push(self.command.kind_byte());
        out.extend_from_slice(&(self.auth.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.auth);
        out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Parses the [`CommandRequest::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] on truncation, trailing bytes,
    /// an unknown kind, or a payload on a payload-less command.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AttestError> {
        let malformed = |reason: &str| AttestError::MalformedMessage {
            reason: reason.to_string(),
        };
        if bytes.len() < 15 {
            return Err(malformed("command request truncated"));
        }
        let counter = u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let kind = bytes[8];
        let auth_len = u16::from_be_bytes(bytes[9..11].try_into().expect("2 bytes")) as usize;
        let rest = &bytes[11..];
        if rest.len() < auth_len + 4 {
            return Err(malformed("command request auth truncated"));
        }
        let auth = rest[..auth_len].to_vec();
        let rest = &rest[auth_len..];
        let payload_len = u32::from_be_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let payload = &rest[4..];
        if payload.len() != payload_len {
            return Err(malformed("command request payload length mismatch"));
        }
        let command = match kind {
            0 | 1 => {
                if !payload.is_empty() {
                    return Err(malformed("unexpected payload on payload-less command"));
                }
                if kind == 0 {
                    Command::Ping
                } else {
                    Command::EraseAppRam
                }
            }
            2 => Command::UpdateFirmware {
                image: payload.to_vec(),
            },
            _ => return Err(malformed("unknown command kind")),
        };
        Ok(CommandRequest {
            counter,
            command,
            auth,
        })
    }
}

/// Attestation-grade evidence that a command executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandReceipt {
    /// Echoed command counter.
    pub counter: u64,
    /// SHA-1 digest of the affected region after execution.
    pub post_state_digest: [u8; 20],
    /// `MAC(K_Attest, "RC" ‖ counter ‖ kind ‖ digest)`.
    pub tag: Vec<u8>,
}

impl CommandReceipt {
    fn tag_message(counter: u64, kind: u8, digest: &[u8; 20]) -> Vec<u8> {
        let mut msg = Vec::with_capacity(31);
        msg.extend_from_slice(b"RC");
        msg.extend_from_slice(&counter.to_be_bytes());
        msg.push(kind);
        msg.extend_from_slice(digest);
        msg
    }

    /// Verifier-side check: does this receipt attest that `command` ran
    /// and left `expected_digest` behind?
    #[must_use]
    pub fn verify(&self, key: &MacKey, command: &Command, expected_digest: &[u8; 20]) -> bool {
        self.post_state_digest == *expected_digest
            && key.verify(
                &Self::tag_message(self.counter, command.kind_byte(), &self.post_state_digest),
                &self.tag,
            )
    }

    /// Wire encoding: `counter u64 BE ‖ digest (20) ‖ tag_len u16 BE ‖
    /// tag`.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(30 + self.tag.len());
        out.extend_from_slice(&self.counter.to_be_bytes());
        out.extend_from_slice(&self.post_state_digest);
        out.extend_from_slice(&(self.tag.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.tag);
        out
    }

    /// Parses the [`CommandReceipt::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] on truncation or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AttestError> {
        let malformed = |reason: &str| AttestError::MalformedMessage {
            reason: reason.to_string(),
        };
        if bytes.len() < 30 {
            return Err(malformed("command receipt truncated"));
        }
        let counter = u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let post_state_digest: [u8; 20] = bytes[8..28].try_into().expect("20 bytes");
        let tag_len = u16::from_be_bytes(bytes[28..30].try_into().expect("2 bytes")) as usize;
        let tag = &bytes[30..];
        if tag.len() != tag_len {
            return Err(malformed("command receipt tag length mismatch"));
        }
        Ok(CommandReceipt {
            counter,
            post_state_digest,
            tag: tag.to_vec(),
        })
    }
}

const COMMAND_COUNTER_ADDR: u32 = map::TRUST_STATE.start + 16;

fn read_command_counter(mcu: &mut Mcu) -> Result<u64, AttestError> {
    let mut buf = [0u8; 8];
    mcu.bus_read(COMMAND_COUNTER_ADDR, &mut buf, map::ATTEST_PC)?;
    Ok(u64::from_le_bytes(buf))
}

/// Pre-auth peek at the command counter for the degraded-mode admission
/// gate; `None` if the protected word is unreadable.
pub(crate) fn peek_command_counter(mcu: &mut Mcu) -> Option<u64> {
    read_command_counter(mcu).ok()
}

fn write_command_counter(mcu: &mut Mcu, value: u64) -> Result<(), AttestError> {
    mcu.bus_write(COMMAND_COUNTER_ADDR, &value.to_le_bytes(), map::ATTEST_PC)?;
    Ok(())
}

/// Cycle cost model for command execution: one cycle per two bytes
/// written (flash programming is charged double).
const ERASE_CYCLES_PER_BYTE: u64 = 1;
const FLASH_CYCLES_PER_BYTE: u64 = 2;

/// The whole-flash digest after a *completed* update to `image`:
/// erase-then-program leaves `image ‖ 0x00…` in flash, the same layout
/// provisioning produces. What the verifier's secure-boot reference and
/// the campaign's per-wave expected digest are computed from.
#[must_use]
pub fn updated_flash_digest(image: &[u8]) -> [u8; 20] {
    let mut flash = vec![0u8; map::FLASH.len() as usize];
    let n = image.len().min(flash.len());
    flash[..n].copy_from_slice(&image[..n]);
    Sha1::digest(&flash)
}

/// The firmware-update flash procedure: erase the whole flash, program
/// the new image, then DMA the flash contents into the execute-from-RAM
/// mirror window. Returns the post-update whole-flash digest.
///
/// `tear_at` injects a power loss after exactly that many image bytes
/// have been programmed (test/fault-injection hook): the erase has
/// happened, a prefix is written, and neither the mirror install nor
/// any commit runs — the flash holds a digest matching *neither* the
/// old nor the new image.
///
/// Note the mirror DMA deliberately does **not** mark the covering RAM
/// segments dirty — that is the flash controller's real behaviour (see
/// [`Mcu::dma_copy_flash_to_ram`]); the prover's update handler is
/// responsible for the explicit mark.
///
/// # Errors
///
/// - [`AttestError::Device`] if `image` exceeds flash.
/// - [`AttestError::PowerLoss`] if `tear_at` fired.
pub fn apply_firmware_image(
    mcu: &mut Mcu,
    image: &[u8],
    tear_at: Option<usize>,
) -> Result<[u8; 20], AttestError> {
    if image.len() > map::FLASH.len() as usize {
        return Err(AttestError::Device(proverguard_mcu::McuError::BusFault {
            addr: map::FLASH.start,
        }));
    }
    // Erase: flash programs 1→0, so a real update always erases first.
    let zeros = vec![0u8; map::FLASH.len() as usize];
    mcu.program_flash(&zeros)?;
    mcu.advance_active(zeros.len() as u64 * ERASE_CYCLES_PER_BYTE);

    if let Some(k) = tear_at {
        let k = k.min(image.len());
        mcu.program_flash(&image[..k])?;
        mcu.advance_active(k as u64 * FLASH_CYCLES_PER_BYTE);
        return Err(AttestError::PowerLoss);
    }

    mcu.program_flash(image)?;
    mcu.advance_active(image.len() as u64 * FLASH_CYCLES_PER_BYTE);

    // Install the execute-from-RAM shadow copy of the new image.
    mcu.dma_copy_flash_to_ram(0, map::APP_IMAGE_MIRROR.start, map::FLASH.len())?;

    Ok(Sha1::digest(mcu.physical_memory().flash()))
}

/// Executes a *pre-authenticated* command: checks the counter, runs the
/// command as `Code_Attest`, charges cycles, returns a MACed receipt.
///
/// # Errors
///
/// - [`AttestError::Rejected`]`(StaleCounter)` for replays/reorders.
/// - [`AttestError::Device`] on EA-MPU or bus faults.
pub fn execute_command(
    mcu: &mut Mcu,
    key: &MacKey,
    request: &CommandRequest,
) -> Result<CommandReceipt, AttestError> {
    execute_command_with_tear(mcu, key, request, None)
}

/// [`execute_command`] with a fault-injection hook: `tear_at` cuts power
/// after that many image bytes of an `UpdateFirmware` are programmed.
pub(crate) fn execute_command_with_tear(
    mcu: &mut Mcu,
    key: &MacKey,
    request: &CommandRequest,
    tear_at: Option<usize>,
) -> Result<CommandReceipt, AttestError> {
    let last = read_command_counter(mcu)?;
    if request.counter <= last {
        return Err(AttestError::Rejected(RejectReason::StaleCounter));
    }
    write_command_counter(mcu, request.counter)?;

    let digest = match &request.command {
        Command::Ping => Sha1::digest(b"pong"),
        Command::EraseAppRam => {
            let len = map::APP_RAM.len() as usize;
            // Zero in bus-sized chunks so the EA-MPU sees every write.
            let zeros = vec![0u8; 4096];
            let mut addr = map::APP_RAM.start;
            let mut remaining = len;
            while remaining > 0 {
                let chunk = remaining.min(zeros.len());
                mcu.bus_write(addr, &zeros[..chunk], map::ATTEST_PC)?;
                addr += chunk as u32;
                remaining -= chunk;
            }
            mcu.advance_active(len as u64 * ERASE_CYCLES_PER_BYTE);
            let mut region = vec![0u8; len];
            mcu.bus_read(map::APP_RAM.start, &mut region, map::ATTEST_PC)?;
            Sha1::digest(&region)
        }
        Command::UpdateFirmware { image } => apply_firmware_image(mcu, image, tear_at)?,
    };

    let tag = key.compute(&CommandReceipt::tag_message(
        request.counter,
        request.command.kind_byte(),
        &digest,
    ));
    Ok(CommandReceipt {
        counter: request.counter,
        post_state_digest: digest,
        tag,
    })
}

/// The digest a verifier should expect after [`Command::EraseAppRam`].
#[must_use]
pub fn erased_app_ram_digest() -> [u8; 20] {
    Sha1::digest(&vec![0u8; map::APP_RAM.len() as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_crypto::mac::MacAlgorithm;

    fn key() -> MacKey {
        MacKey::new(MacAlgorithm::HmacSha1, &[0x42; 16]).expect("key")
    }

    fn request(counter: u64, command: Command) -> CommandRequest {
        CommandRequest {
            counter,
            command,
            auth: Vec::new(),
        }
    }

    #[test]
    fn ping_executes_and_receipt_verifies() {
        let mut mcu = Mcu::new();
        let k = key();
        let req = request(1, Command::Ping);
        let receipt = execute_command(&mut mcu, &k, &req).unwrap();
        assert!(receipt.verify(&k, &Command::Ping, &Sha1::digest(b"pong")));
        // Wrong command kind fails verification.
        assert!(!receipt.verify(&k, &Command::EraseAppRam, &Sha1::digest(b"pong")));
    }

    #[test]
    fn erase_zeroes_app_ram() {
        let mut mcu = Mcu::new();
        mcu.bus_write(
            map::APP_RAM.start + 100,
            b"secret sensor data",
            map::APP_CODE,
        )
        .unwrap();
        let k = key();
        let receipt = execute_command(&mut mcu, &k, &request(1, Command::EraseAppRam)).unwrap();
        assert_eq!(receipt.post_state_digest, erased_app_ram_digest());
        let mut buf = [0u8; 18];
        mcu.bus_read(map::APP_RAM.start + 100, &mut buf, map::APP_CODE)
            .unwrap();
        assert_eq!(buf, [0u8; 18]);
        assert!(receipt.verify(&k, &Command::EraseAppRam, &erased_app_ram_digest()));
    }

    #[test]
    fn erase_is_charged_cycles() {
        let mut mcu = Mcu::new();
        let before = mcu.clock().cycles();
        execute_command(&mut mcu, &key(), &request(1, Command::EraseAppRam)).unwrap();
        assert!(mcu.clock().cycles() - before >= map::APP_RAM.len() as u64);
    }

    #[test]
    fn firmware_update_reprograms_flash() {
        let mut mcu = Mcu::new();
        let k = key();
        let image = b"firmware v2".to_vec();
        let receipt = execute_command(
            &mut mcu,
            &k,
            &request(
                1,
                Command::UpdateFirmware {
                    image: image.clone(),
                },
            ),
        )
        .unwrap();
        assert_eq!(&mcu.physical_memory().flash()[..image.len()], &image[..]);
        let expected = Sha1::digest(mcu.physical_memory().flash());
        assert!(receipt.verify(&k, &Command::UpdateFirmware { image }, &expected));
    }

    #[test]
    fn update_digest_matches_helper_and_installs_mirror() {
        let mut mcu = Mcu::new();
        let k = key();
        let image = b"firmware v2".to_vec();
        let receipt = execute_command(
            &mut mcu,
            &k,
            &request(
                1,
                Command::UpdateFirmware {
                    image: image.clone(),
                },
            ),
        )
        .unwrap();
        assert_eq!(receipt.post_state_digest, updated_flash_digest(&image));
        // The execute-from-RAM mirror holds the new image.
        let mut buf = [0u8; 11];
        mcu.bus_read(map::APP_IMAGE_MIRROR.start, &mut buf, map::APP_CODE)
            .unwrap();
        assert_eq!(&buf, image.as_slice());
    }

    #[test]
    fn erase_then_program_clears_old_image_tail() {
        let mut mcu = Mcu::new();
        let k = key();
        let long = vec![0xAA; 1000];
        execute_command(
            &mut mcu,
            &k,
            &request(1, Command::UpdateFirmware { image: long }),
        )
        .unwrap();
        let short = b"tiny".to_vec();
        let receipt = execute_command(
            &mut mcu,
            &k,
            &request(
                2,
                Command::UpdateFirmware {
                    image: short.clone(),
                },
            ),
        )
        .unwrap();
        // No 0xAA residue past the short image: erase preceded program.
        assert_eq!(receipt.post_state_digest, updated_flash_digest(&short));
        assert!(mcu.physical_memory().flash()[4..1000]
            .iter()
            .all(|b| *b == 0));
    }

    #[test]
    fn torn_flash_matches_neither_image() {
        let mut mcu = Mcu::new();
        let old = b"old image".to_vec();
        mcu.program_flash(&old).unwrap();
        let new = b"new image, longer".to_vec();
        let err = apply_firmware_image(&mut mcu, &new, Some(5)).unwrap_err();
        assert_eq!(err, AttestError::PowerLoss);
        let torn = Sha1::digest(mcu.physical_memory().flash());
        assert_ne!(torn, updated_flash_digest(&old));
        assert_ne!(torn, updated_flash_digest(&new));
        // Prefix programmed, rest erased.
        assert_eq!(&mcu.physical_memory().flash()[..5], &new[..5]);
        assert!(mcu.physical_memory().flash()[5..].iter().all(|b| *b == 0));
    }

    #[test]
    fn command_request_wire_roundtrip() {
        for command in [
            Command::Ping,
            Command::EraseAppRam,
            Command::UpdateFirmware {
                image: vec![1, 2, 3, 4],
            },
        ] {
            let req = CommandRequest {
                counter: 77,
                command,
                auth: vec![9; 12],
            };
            let parsed = CommandRequest::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(parsed, req);
        }
        assert!(CommandRequest::from_bytes(&[0; 5]).is_err());
        // Trailing garbage rejected.
        let mut bytes = CommandRequest {
            counter: 1,
            command: Command::Ping,
            auth: Vec::new(),
        }
        .to_bytes();
        bytes.push(0);
        assert!(CommandRequest::from_bytes(&bytes).is_err());
    }

    #[test]
    fn command_receipt_wire_roundtrip() {
        let mut mcu = Mcu::new();
        let k = key();
        let receipt = execute_command(&mut mcu, &k, &request(1, Command::Ping)).unwrap();
        let parsed = CommandReceipt::from_bytes(&receipt.to_bytes()).unwrap();
        assert_eq!(parsed, receipt);
        assert!(parsed.verify(&k, &Command::Ping, &Sha1::digest(b"pong")));
        assert!(CommandReceipt::from_bytes(&[0; 10]).is_err());
    }

    #[test]
    fn replayed_command_rejected() {
        let mut mcu = Mcu::new();
        let k = key();
        execute_command(&mut mcu, &k, &request(3, Command::Ping)).unwrap();
        let err = execute_command(&mut mcu, &k, &request(3, Command::Ping)).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
        let err = execute_command(&mut mcu, &k, &request(2, Command::Ping)).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
        assert!(execute_command(&mut mcu, &k, &request(4, Command::Ping)).is_ok());
    }

    #[test]
    fn receipt_tag_binds_counter() {
        let mut mcu = Mcu::new();
        let k = key();
        let receipt = execute_command(&mut mcu, &k, &request(1, Command::Ping)).unwrap();
        let mut forged = receipt.clone();
        forged.counter = 99;
        assert!(!forged.verify(&k, &Command::Ping, &receipt.post_state_digest));
    }

    #[test]
    fn signed_bytes_cover_payload() {
        let a = request(
            1,
            Command::UpdateFirmware {
                image: vec![1, 2, 3],
            },
        );
        let b = request(
            1,
            Command::UpdateFirmware {
                image: vec![1, 2, 4],
            },
        );
        assert_ne!(a.signed_bytes(), b.signed_bytes());
    }

    #[test]
    fn command_and_sync_counters_are_independent() {
        use crate::clocksync::{apply_sync, SyncParams, SyncRequest};
        let mut mcu = Mcu::new();
        let k = key();
        execute_command(&mut mcu, &k, &request(5, Command::Ping)).unwrap();
        // Sync counter stream is untouched: counter 1 still accepted.
        let sync = SyncRequest {
            counter: 1,
            verifier_time_ms: 100,
            auth: Vec::new(),
        };
        assert!(apply_sync(&mut mcu, &SyncParams::default(), &sync, 100).is_ok());
    }
}
