//! Verifier-side session driving: timeouts, bounded retries, backoff.
//!
//! The paper's verifier fires one request and waits ~754 ms for the
//! memory MAC. Over a real (lossy) link that is not a protocol: requests
//! drop, responses drop, and the prover may reboot mid-session. The
//! [`SessionDriver`] turns one *logical* attestation into a bounded retry
//! loop with exponential backoff, recording what happened on every
//! attempt so experiments can grade a channel, not just a run.
//!
//! The transport is abstracted behind [`SessionLink`]: [`DirectLink`]
//! wires a verifier straight to a prover (lossless), while the adversary
//! crate's fault injector implements the same trait over a faulty channel.

use crate::error::{AttestError, RejectReason};
use crate::message::AttestResponse;
use crate::prover::Prover;
use crate::verifier::Verifier;

/// Retry/backoff configuration for one attestation session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long (prover/verifier simulated ms) one attempt may take
    /// before it is declared lost.
    pub timeout_ms: u64,
    /// Retries after the first attempt (total attempts = `max_retries`
    /// + 1).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff_base_ms: u64,
    /// Multiplier applied to the backoff after every failed attempt.
    pub backoff_factor: u32,
    /// Deterministic jitter amplitude in ‰ of the computed backoff
    /// (0 = no jitter, 1000 = ±100 %). When many sessions share one
    /// gateway, un-jittered exponential backoff synchronizes their
    /// retries into periodic thundering herds; jitter decorrelates them.
    /// Capped at 1000 ‰.
    pub jitter_per_mille: u16,
    /// Seed for the jitter schedule. Same seed + same attempt number =
    /// same jitter, so experiments stay reproducible; concurrent sessions
    /// get distinct seeds (e.g. their device id) to decorrelate.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_ms: 1000,
            max_retries: 5,
            backoff_base_ms: 100,
            backoff_factor: 2,
            jitter_per_mille: 0,
            jitter_seed: 0,
        }
    }
}

/// SplitMix64 finalizer — the jitter's deterministic "randomness".
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Backoff to wait after failed attempt number `attempt` (1-based):
    /// `base * factor^(attempt-1)`, saturating, then jittered by up to
    /// ±`jitter_per_mille` ‰ of that value. The exponent is capped at
    /// 63: any factor ≥ 2 has saturated every u64 base by then, and the
    /// cap keeps absurd attempt counts from ever wrapping the arithmetic.
    /// The jitter is a pure function of `(jitter_seed, attempt)`, centred
    /// on the un-jittered value and hard-capped at ±100 %, so the result
    /// stays within `[0, 2 × backoff]`.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        let exp = u64::from(self.backoff_factor).saturating_pow(shift);
        let base = self.backoff_base_ms.saturating_mul(exp);
        let jitter = u64::from(self.jitter_per_mille.min(1000));
        if jitter == 0 || base == 0 {
            return base;
        }
        let span = ((u128::from(base) * u128::from(jitter)) / 1000) as u64;
        if span == 0 {
            return base;
        }
        let roll = splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9))
            % (span.saturating_mul(2).saturating_add(1));
        base.saturating_sub(span).saturating_add(roll)
    }
}

/// What one attempt did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// A valid response arrived and verified.
    Success,
    /// The request never reached the prover (or timed out on the way).
    RequestLost,
    /// The prover answered but the response never arrived in time.
    ResponseLost,
    /// The prover actively rejected the request.
    Rejected(RejectReason),
    /// A response arrived but failed verification (corrupt or forged).
    BadResponse,
    /// The attempt died on an internal error.
    Error(AttestError),
}

impl AttemptOutcome {
    /// `true` iff the attempt succeeded.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, AttemptOutcome::Success)
    }
}

/// One attempt's entry in the session report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// What happened.
    pub outcome: AttemptOutcome,
    /// Backoff waited *after* this attempt (0 for the last one).
    pub backoff_ms: u64,
}

/// Everything a driven session did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionReport {
    /// Per-attempt outcomes, in order.
    pub attempts: Vec<AttemptRecord>,
}

impl SessionReport {
    /// `true` iff the final attempt succeeded.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.attempts.last().is_some_and(|a| a.outcome.is_success())
    }

    /// Number of attempts made.
    #[must_use]
    pub fn attempt_count(&self) -> u32 {
        self.attempts.len() as u32
    }

    /// Total backoff time spent waiting between attempts, saturating: a
    /// session whose per-attempt backoffs saturated must not overflow the
    /// sum (a plain `sum()` would panic in debug builds).
    #[must_use]
    pub fn total_backoff_ms(&self) -> u64 {
        self.attempts
            .iter()
            .fold(0u64, |acc, a| acc.saturating_add(a.backoff_ms))
    }
}

/// A transport that can run one attestation attempt end to end.
pub trait SessionLink {
    /// Runs one attempt with the given timeout and says what happened.
    fn attempt(&mut self, timeout_ms: u64) -> AttemptOutcome;

    /// Lets `ms` of simulated time pass on both ends (backoff).
    fn wait_ms(&mut self, ms: u64);

    /// Hook run after a failed attempt, before the backoff — e.g. resync
    /// the prover's clock after a suspected reboot. Default: nothing.
    fn recover(&mut self, _failed: &AttemptOutcome) {}
}

/// What a [`DriverCursor`] wants next after recording an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverStep {
    /// The session is complete (success or retry budget exhausted); the
    /// report is final.
    Done,
    /// Run the link's recovery hook, emit the `session.backoff` trace
    /// event, let `backoff_ms` pass, then run the next attempt.
    Retry {
        /// Backoff before the next attempt (already jittered).
        backoff_ms: u64,
    },
}

/// The retry loop of [`SessionDriver::run`] as a pure continuation.
///
/// The blocking driver parks a thread across attempt → backoff → retry;
/// the event-driven gateway instead holds thousands of these cursors and
/// advances each one when its connection's I/O or timer fires:
/// run an attempt however the I/O layer likes, [`DriverCursor::record`]
/// the outcome, and either finish or arm a `backoff_ms` timer and come
/// back. Both drivers share this state machine, so retry accounting,
/// budget enforcement and telemetry stay identical by construction.
#[derive(Debug, Clone)]
pub struct DriverCursor {
    policy: RetryPolicy,
    report: SessionReport,
    next_attempt: u32,
    done: bool,
}

impl DriverCursor {
    /// A cursor at attempt 1 with an empty report.
    #[must_use]
    pub fn new(policy: RetryPolicy) -> Self {
        DriverCursor {
            policy,
            report: SessionReport::default(),
            next_attempt: 1,
            done: false,
        }
    }

    /// 1-based number of the attempt currently in flight.
    #[must_use]
    pub fn attempt_number(&self) -> u32 {
        self.next_attempt
    }

    /// The per-attempt timeout the in-flight attempt should use.
    #[must_use]
    pub fn timeout_ms(&self) -> u64 {
        self.policy.timeout_ms
    }

    /// True once [`DriverStep::Done`] has been returned.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The report accumulated so far.
    #[must_use]
    pub fn report(&self) -> &SessionReport {
        &self.report
    }

    /// Consumes the cursor into its final report.
    #[must_use]
    pub fn into_report(self) -> SessionReport {
        self.report
    }

    /// Records the outcome of the in-flight attempt and says what to do
    /// next. Emits the same telemetry the blocking loop always has:
    /// `session.attempt_failed` + `session.retries` before a retry, the
    /// `session.success`/`session.failure` counters and the
    /// `session.attempts` histogram when the session completes. (The
    /// `session.backoff` trace event is the caller's, emitted between
    /// recovery and the wait — see [`DriverStep::Retry`].)
    ///
    /// # Panics
    ///
    /// Panics if called again after [`DriverStep::Done`].
    pub fn record(&mut self, outcome: AttemptOutcome) -> DriverStep {
        use proverguard_telemetry::{metrics, trace};
        assert!(!self.done, "session already complete");
        let attempt = self.next_attempt;
        let total = self.policy.max_retries + 1;
        let success = outcome.is_success();
        let last = success || attempt >= total;
        let backoff_ms = if last {
            0
        } else {
            self.policy.backoff_ms(attempt)
        };
        if !last {
            trace::event_with("session.attempt_failed", u64::from(attempt));
            metrics::counter_add("session.retries", 1);
        }
        self.report.attempts.push(AttemptRecord {
            attempt,
            outcome,
            backoff_ms,
        });
        if last {
            self.done = true;
            metrics::counter_add(
                if self.report.succeeded() {
                    "session.success"
                } else {
                    "session.failure"
                },
                1,
            );
            metrics::histogram_record("session.attempts", u64::from(self.report.attempt_count()));
            DriverStep::Done
        } else {
            self.next_attempt = attempt + 1;
            DriverStep::Retry { backoff_ms }
        }
    }
}

/// Drives sessions according to a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionDriver {
    /// The policy applied to every run.
    pub policy: RetryPolicy,
}

impl SessionDriver {
    /// A driver with the given policy.
    #[must_use]
    pub fn new(policy: RetryPolicy) -> Self {
        SessionDriver { policy }
    }

    /// Runs one logical attestation over `link`: up to `max_retries + 1`
    /// attempts, exponential backoff between them, recovery hook after
    /// each failure. This is the blocking shell around [`DriverCursor`];
    /// the event-driven gateway advances the same cursor from its poll
    /// loop instead.
    pub fn run(&self, link: &mut dyn SessionLink) -> SessionReport {
        use proverguard_telemetry::trace;
        let mut cursor = DriverCursor::new(self.policy);
        loop {
            let outcome = link.attempt(cursor.timeout_ms());
            match cursor.record(outcome) {
                DriverStep::Done => return cursor.into_report(),
                DriverStep::Retry { backoff_ms } => {
                    let failed = &cursor
                        .report()
                        .attempts
                        .last()
                        .expect("retry implies a recorded attempt")
                        .outcome
                        .clone();
                    link.recover(failed);
                    trace::event_with("session.backoff", backoff_ms);
                    link.wait_ms(backoff_ms);
                }
            }
        }
    }
}

/// The lossless reference link: verifier and prover wired back to back,
/// requests delivered as wire bytes through
/// [`Prover::handle_wire_request`].
#[derive(Debug)]
pub struct DirectLink<'a> {
    verifier: &'a mut Verifier,
    prover: &'a mut Prover,
}

impl<'a> DirectLink<'a> {
    /// Wires a verifier to a prover.
    pub fn new(verifier: &'a mut Verifier, prover: &'a mut Prover) -> Self {
        DirectLink { verifier, prover }
    }
}

impl SessionLink for DirectLink<'_> {
    fn attempt(&mut self, _timeout_ms: u64) -> AttemptOutcome {
        let request = match self.verifier.make_request() {
            Ok(r) => r,
            Err(e) => return AttemptOutcome::Error(e),
        };
        let wire = match self.prover.handle_wire_request(&request.to_bytes()) {
            Ok(bytes) => bytes,
            Err(AttestError::Rejected(reason)) => {
                self.verifier.note_failed(&request);
                return AttemptOutcome::Rejected(reason);
            }
            Err(e) => return AttemptOutcome::Error(e),
        };
        // The prover's compute time passes for the verifier too.
        let elapsed_ms = self.prover.last_cost().total_ms().ceil() as u64;
        self.verifier.advance_time_ms(elapsed_ms);
        let Ok(response) = AttestResponse::from_bytes(&wire) else {
            self.verifier.note_failed(&request);
            return AttemptOutcome::BadResponse;
        };
        let expected = self.prover.expected_memory().to_vec();
        if self.verifier.check_response(&request, &response, &expected) {
            self.verifier.note_verified(&request, &response, &expected);
            AttemptOutcome::Success
        } else {
            self.verifier.note_failed(&request);
            AttemptOutcome::BadResponse
        }
    }

    fn wait_ms(&mut self, ms: u64) {
        let _ = self.prover.advance_time_ms(ms);
        self.verifier.advance_time_ms(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::ProverConfig;

    const KEY: [u8; 16] = [0x42; 16];

    fn pair(config: ProverConfig) -> (Prover, Verifier) {
        let prover = Prover::provision(config.clone(), &KEY, b"app v1").unwrap();
        let verifier = Verifier::new(&config, &KEY).unwrap();
        (prover, verifier)
    }

    #[test]
    fn direct_link_succeeds_first_attempt() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended());
        let mut link = DirectLink::new(&mut verifier, &mut prover);
        let report = SessionDriver::default().run(&mut link);
        assert!(report.succeeded());
        assert_eq!(report.attempt_count(), 1);
        assert_eq!(report.total_backoff_ms(), 0);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ms(1), 100);
        assert_eq!(policy.backoff_ms(2), 200);
        assert_eq!(policy.backoff_ms(3), 400);
        // Saturates instead of overflowing.
        assert_eq!(
            RetryPolicy {
                backoff_base_ms: u64::MAX,
                ..policy
            }
            .backoff_ms(5),
            u64::MAX
        );
        // Huge attempt numbers hit the exponent cap, not a wrap or a
        // pathological pow.
        assert_eq!(policy.backoff_ms(u32::MAX), policy.backoff_ms(64));
        assert_eq!(policy.backoff_ms(200), u64::MAX);
        // A factor-1 schedule stays flat no matter the attempt count.
        let flat = RetryPolicy {
            backoff_factor: 1,
            ..policy
        };
        assert_eq!(flat.backoff_ms(u32::MAX), flat.backoff_base_ms);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_decorrelating() {
        let policy = RetryPolicy {
            jitter_per_mille: 300,
            jitter_seed: 0xFEED,
            ..RetryPolicy::default()
        };
        // Deterministic: the same (seed, attempt) gives the same backoff.
        for attempt in 1..=8 {
            assert_eq!(policy.backoff_ms(attempt), policy.backoff_ms(attempt));
        }
        // Bounded: within ±30 % of the un-jittered schedule.
        let flat = RetryPolicy::default();
        for attempt in 1..=8 {
            let base = flat.backoff_ms(attempt);
            let jittered = policy.backoff_ms(attempt);
            let span = base * 300 / 1000;
            assert!(
                (base - span..=base + span).contains(&jittered),
                "attempt {attempt}: {jittered} outside {base}±{span}"
            );
        }
        // Decorrelating: two sessions with different seeds must not share
        // a whole schedule (else they'd still herd).
        let other = RetryPolicy {
            jitter_seed: 0xBEEF,
            ..policy
        };
        assert!(
            (1..=8).any(|a| policy.backoff_ms(a) != other.backoff_ms(a)),
            "distinct seeds produced identical schedules"
        );
        // Zero jitter reproduces the legacy schedule exactly.
        let none = RetryPolicy {
            jitter_per_mille: 0,
            ..policy
        };
        for attempt in 1..=8 {
            assert_eq!(none.backoff_ms(attempt), flat.backoff_ms(attempt));
        }
        // Saturated base stays saturated, never wraps.
        let huge = RetryPolicy {
            backoff_base_ms: u64::MAX,
            jitter_per_mille: 1000,
            ..policy
        };
        let _ = huge.backoff_ms(5); // must not panic
    }

    #[test]
    fn total_backoff_saturates_instead_of_overflowing() {
        let mut report = SessionReport::default();
        for attempt in 1..=3 {
            report.attempts.push(AttemptRecord {
                attempt,
                outcome: AttemptOutcome::RequestLost,
                backoff_ms: u64::MAX / 2 + 1,
            });
        }
        assert_eq!(report.total_backoff_ms(), u64::MAX);
    }

    /// A link that fails `fail_first` times, then succeeds.
    struct FlakyLink {
        fail_first: u32,
        attempts: u32,
        waited: u64,
        recoveries: u32,
    }

    impl SessionLink for FlakyLink {
        fn attempt(&mut self, _timeout_ms: u64) -> AttemptOutcome {
            self.attempts += 1;
            if self.attempts <= self.fail_first {
                AttemptOutcome::RequestLost
            } else {
                AttemptOutcome::Success
            }
        }
        fn wait_ms(&mut self, ms: u64) {
            self.waited += ms;
        }
        fn recover(&mut self, failed: &AttemptOutcome) {
            assert!(!failed.is_success());
            self.recoveries += 1;
        }
    }

    #[test]
    fn driver_retries_until_success() {
        let mut link = FlakyLink {
            fail_first: 3,
            attempts: 0,
            waited: 0,
            recoveries: 0,
        };
        let report = SessionDriver::default().run(&mut link);
        assert!(report.succeeded());
        assert_eq!(report.attempt_count(), 4);
        // Backoffs: 100 + 200 + 400.
        assert_eq!(report.total_backoff_ms(), 700);
        assert_eq!(link.waited, 700);
        assert_eq!(link.recoveries, 3);
    }

    #[test]
    fn driver_gives_up_after_budget() {
        let mut link = FlakyLink {
            fail_first: u32::MAX,
            attempts: 0,
            waited: 0,
            recoveries: 0,
        };
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let report = SessionDriver::new(policy).run(&mut link);
        assert!(!report.succeeded());
        assert_eq!(report.attempt_count(), 3);
        // No recovery/backoff after the final attempt.
        assert_eq!(link.recoveries, 2);
    }

    #[test]
    fn cursor_matches_blocking_driver_step_for_step() {
        let policy = RetryPolicy {
            max_retries: 4,
            jitter_per_mille: 250,
            jitter_seed: 0x5EED,
            ..RetryPolicy::default()
        };
        let mut link = FlakyLink {
            fail_first: 2,
            attempts: 0,
            waited: 0,
            recoveries: 0,
        };
        let blocking = SessionDriver::new(policy).run(&mut link);

        // Replay the same outcome script through the cursor.
        let mut cursor = DriverCursor::new(policy);
        loop {
            let outcome = if cursor.attempt_number() <= 2 {
                AttemptOutcome::RequestLost
            } else {
                AttemptOutcome::Success
            };
            if cursor.record(outcome) == DriverStep::Done {
                break;
            }
        }
        assert!(cursor.is_done());
        assert_eq!(cursor.into_report(), blocking);
    }

    #[test]
    fn cursor_exhausts_budget_and_refuses_more() {
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let mut cursor = DriverCursor::new(policy);
        assert_eq!(cursor.timeout_ms(), policy.timeout_ms);
        let mut steps = 0;
        while cursor.record(AttemptOutcome::ResponseLost) != DriverStep::Done {
            steps += 1;
            assert!(steps < 10, "cursor never finished");
        }
        assert!(cursor.is_done());
        let report = cursor.report().clone();
        assert!(!report.succeeded());
        assert_eq!(report.attempt_count(), 3);
        // The backoff of the final attempt is zero, earlier ones follow
        // the policy schedule exactly as the blocking driver records it.
        assert_eq!(report.attempts[0].backoff_ms, policy.backoff_ms(1));
        assert_eq!(report.attempts[2].backoff_ms, 0);
    }
}
