//! Secure clock synchronization — the paper's §7 future-work item 2.
//!
//! The timestamp defence of §4.2 assumes "synchronized clocks among both
//! parties", and the paper defers the synchronization mechanism to future
//! work. This module supplies one that inherits the prover-protection
//! discipline of the rest of the system:
//!
//! - sync messages are **authenticated** with the shared key (a bogus
//!   sync is rejected after one cheap MAC check — never a DoS vector);
//! - they carry their own **monotonic counter**, persisted in the
//!   EA-MAC-protected [`map::TRUST_STATE`] word, so replayed or reordered
//!   syncs are dropped;
//! - the correction is applied as a **bounded offset**: a single sync may
//!   move the prover's notion of time forward by at most
//!   [`SyncParams::max_forward_step_ms`] and backward by at most
//!   [`SyncParams::max_backward_step_ms`]. A delayed genuine sync (which
//!   carries stale time) therefore cannot wind the prover back by more
//!   than the small backward bound — `Adv_ext`'s delay capability buys it
//!   almost nothing.
//!
//! The hardware clock itself stays read-only; `Code_Attest` maintains the
//! signed offset in protected RAM and adds it when reading time.

use proverguard_mcu::device::Mcu;
use proverguard_mcu::map;

use crate::error::{AttestError, RejectReason};

/// Default bound on a single forward correction (ms).
pub const DEFAULT_MAX_FORWARD_STEP_MS: u64 = 60_000;

/// Default bound on a single backward correction (ms) — kept small so a
/// delayed sync cannot meaningfully rewind the prover.
pub const DEFAULT_MAX_BACKWARD_STEP_MS: u64 = 1_000;

/// Correction bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncParams {
    /// Maximum forward adjustment per sync, in ms.
    pub max_forward_step_ms: u64,
    /// Maximum backward adjustment per sync, in ms.
    pub max_backward_step_ms: u64,
}

impl Default for SyncParams {
    fn default() -> Self {
        SyncParams {
            max_forward_step_ms: DEFAULT_MAX_FORWARD_STEP_MS,
            max_backward_step_ms: DEFAULT_MAX_BACKWARD_STEP_MS,
        }
    }
}

/// An authenticated clock-synchronization message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncRequest {
    /// Monotonic sync counter (independent of the attestation counter).
    pub counter: u64,
    /// The verifier's time in milliseconds.
    pub verifier_time_ms: u64,
    /// Authenticator over [`SyncRequest::signed_bytes`].
    pub auth: Vec<u8>,
}

impl SyncRequest {
    /// The bytes the authenticator covers.
    #[must_use]
    pub fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18);
        out.extend_from_slice(b"SY"); // domain separation from attreq
        out.extend_from_slice(&self.counter.to_be_bytes());
        out.extend_from_slice(&self.verifier_time_ms.to_be_bytes());
        out
    }
}

/// What a successful sync did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncOutcome {
    /// The raw offset the verifier's time implied, in ms (positive =
    /// prover was behind).
    pub measured_skew_ms: i64,
    /// The correction actually applied after clamping, in ms.
    pub applied_ms: i64,
    /// The prover's synced time after correction, in ms.
    pub synced_now_ms: u64,
}

// ---- protected state accessors (all as Code_Attest) -----------------------

const OFFSET_ADDR: u32 = map::TRUST_STATE.start;
const SYNC_COUNTER_ADDR: u32 = map::TRUST_STATE.start + 8;

/// Reads the signed clock offset from protected RAM.
///
/// # Errors
///
/// [`AttestError::Device`] if the EA-MPU denies the read.
pub fn read_offset_ms(mcu: &mut Mcu) -> Result<i64, AttestError> {
    let mut buf = [0u8; 8];
    mcu.bus_read(OFFSET_ADDR, &mut buf, map::ATTEST_PC)?;
    Ok(i64::from_le_bytes(buf))
}

/// Writes the signed clock offset (as `Code_Attest`).
///
/// # Errors
///
/// [`AttestError::Device`] if the EA-MPU denies the write.
pub fn write_offset_ms(mcu: &mut Mcu, offset: i64) -> Result<(), AttestError> {
    mcu.bus_write(OFFSET_ADDR, &offset.to_le_bytes(), map::ATTEST_PC)?;
    Ok(())
}

fn read_sync_counter(mcu: &mut Mcu) -> Result<u64, AttestError> {
    let mut buf = [0u8; 8];
    mcu.bus_read(SYNC_COUNTER_ADDR, &mut buf, map::ATTEST_PC)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_sync_counter(mcu: &mut Mcu, value: u64) -> Result<(), AttestError> {
    mcu.bus_write(SYNC_COUNTER_ADDR, &value.to_le_bytes(), map::ATTEST_PC)?;
    Ok(())
}

/// Applies a *pre-authenticated* sync request: checks the counter, clamps
/// the correction, updates the protected offset.
///
/// Authentication is the caller's job ([`crate::prover::Prover`] runs it
/// through the same [`RequestChecker`](crate::auth::RequestChecker) as
/// attestation requests).
///
/// # Errors
///
/// - [`AttestError::Rejected`]`(StaleCounter)` for replayed/reordered
///   syncs.
/// - [`AttestError::Device`] on EA-MPU faults.
pub fn apply_sync(
    mcu: &mut Mcu,
    params: &SyncParams,
    request: &SyncRequest,
    raw_now_ms: u64,
) -> Result<SyncOutcome, AttestError> {
    let last = read_sync_counter(mcu)?;
    if request.counter <= last {
        return Err(AttestError::Rejected(RejectReason::StaleCounter));
    }

    let offset = read_offset_ms(mcu)?;
    let synced_now = apply_offset(raw_now_ms, offset);
    let measured_skew = request.verifier_time_ms as i64 - synced_now as i64;
    let applied = measured_skew.clamp(
        -(params.max_backward_step_ms as i64),
        params.max_forward_step_ms as i64,
    );

    write_offset_ms(mcu, offset + applied)?;
    write_sync_counter(mcu, request.counter)?;
    Ok(SyncOutcome {
        measured_skew_ms: measured_skew,
        applied_ms: applied,
        synced_now_ms: apply_offset(raw_now_ms, offset + applied),
    })
}

/// Adds a signed offset to a raw clock reading, saturating at zero.
#[must_use]
pub fn apply_offset(raw_ms: u64, offset_ms: i64) -> u64 {
    if offset_ms >= 0 {
        raw_ms.saturating_add(offset_ms as u64)
    } else {
        raw_ms.saturating_sub(offset_ms.unsigned_abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(counter: u64, time: u64) -> SyncRequest {
        SyncRequest {
            counter,
            verifier_time_ms: time,
            auth: Vec::new(),
        }
    }

    #[test]
    fn forward_correction_applied() {
        let mut mcu = Mcu::new();
        let params = SyncParams::default();
        // Prover reads 1000, verifier says 1500.
        let out = apply_sync(&mut mcu, &params, &request(1, 1500), 1000).unwrap();
        assert_eq!(out.measured_skew_ms, 500);
        assert_eq!(out.applied_ms, 500);
        assert_eq!(out.synced_now_ms, 1500);
        assert_eq!(read_offset_ms(&mut mcu).unwrap(), 500);
    }

    #[test]
    fn backward_correction_clamped() {
        let mut mcu = Mcu::new();
        let params = SyncParams::default();
        // Prover is 10 s ahead; only 1 s of rewind is allowed per sync.
        let out = apply_sync(&mut mcu, &params, &request(1, 10_000), 20_000).unwrap();
        assert_eq!(out.measured_skew_ms, -10_000);
        assert_eq!(out.applied_ms, -1_000);
        assert_eq!(out.synced_now_ms, 19_000);
    }

    #[test]
    fn forward_correction_clamped() {
        let mut mcu = Mcu::new();
        let params = SyncParams {
            max_forward_step_ms: 100,
            max_backward_step_ms: 100,
        };
        let out = apply_sync(&mut mcu, &params, &request(1, 5_000), 0).unwrap();
        assert_eq!(out.applied_ms, 100);
    }

    #[test]
    fn replayed_sync_rejected() {
        let mut mcu = Mcu::new();
        let params = SyncParams::default();
        apply_sync(&mut mcu, &params, &request(5, 1000), 900).unwrap();
        let err = apply_sync(&mut mcu, &params, &request(5, 1000), 1100).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
        // Reordered (older) sync also rejected.
        let err = apply_sync(&mut mcu, &params, &request(3, 900), 1100).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
    }

    #[test]
    fn delayed_sync_cannot_rewind_meaningfully() {
        let mut mcu = Mcu::new();
        let params = SyncParams::default();
        // Adv_ext held a genuine sync (sent at t=1000) for 60 s; prover's
        // clock legitimately reads 61 000 when it arrives.
        let out = apply_sync(&mut mcu, &params, &request(1, 1000), 61_000).unwrap();
        assert_eq!(out.applied_ms, -(DEFAULT_MAX_BACKWARD_STEP_MS as i64));
        assert_eq!(out.synced_now_ms, 60_000);
    }

    #[test]
    fn corrections_accumulate() {
        let mut mcu = Mcu::new();
        let params = SyncParams::default();
        apply_sync(&mut mcu, &params, &request(1, 2_000), 1_000).unwrap();
        // Raw clock advanced to 3_000; offset 1_000 makes synced 4_000.
        let out = apply_sync(&mut mcu, &params, &request(2, 4_500), 3_000).unwrap();
        assert_eq!(out.measured_skew_ms, 500);
        assert_eq!(read_offset_ms(&mut mcu).unwrap(), 1_500);
    }

    #[test]
    fn apply_offset_saturates() {
        assert_eq!(apply_offset(100, -200), 0);
        assert_eq!(apply_offset(u64::MAX, 10), u64::MAX);
        assert_eq!(apply_offset(100, 50), 150);
        assert_eq!(apply_offset(100, -50), 50);
    }

    #[test]
    fn signed_bytes_are_domain_separated() {
        let sync = request(1, 2);
        assert_eq!(&sync.signed_bytes()[..2], b"SY");
        assert_eq!(sync.signed_bytes().len(), 18);
    }
}
