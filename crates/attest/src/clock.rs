//! Prover clocks: the dedicated hardware RTC (Figure 1a) and the software
//! clock built from `Clock_LSB` + `Code_Clock` + `Clock_MSB` (Figure 1b).
//!
//! Both are read **through the bus** as `Code_Attest`, so reads respect
//! EA-MPU rules, and the SW-clock's wrap-around interrupts are served by
//! `Code_Clock` executing at its own program counter — which is how the
//! `Clock_MSB` write-protection rule can allow the handler and deny
//! malware.

use proverguard_mcu::cycles::CLOCK_HZ;
use proverguard_mcu::device::{timer_regs, Mcu, DEFAULT_TIMER_PRESCALER_LOG2, DEFAULT_TIMER_WIDTH};
use proverguard_mcu::map;
use proverguard_mcu::timer::TIMER_WRAP_VECTOR;

use crate::error::AttestError;

/// The entry point of `Code_Clock` — what the IDT must point at for the
/// SW-clock to function.
pub const CLOCK_HANDLER_ADDR: u32 = map::CLOCK_CODE.start;

/// Which clock the prover uses for timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockKind {
    /// No clock (counter- or nonce-based deployments).
    #[default]
    None,
    /// Dedicated 64-bit hardware register (Figure 1a).
    Hw64,
    /// Dedicated 32-bit register behind a ÷2²⁰ prescaler (§6.3).
    Hw32Div,
    /// Software clock (Figure 1b).
    Software,
}

/// Prover-side clock access.
#[derive(Debug, Clone)]
pub enum ProverClock {
    /// No clock installed.
    None,
    /// Read the dedicated RTC via MMIO.
    Hw,
    /// Combine `Clock_MSB` (RAM) with `Clock_LSB` (timer MMIO).
    Sw(SwClock),
}

impl ProverClock {
    /// Builds the accessor for `kind`.
    #[must_use]
    pub fn new(kind: ClockKind) -> Self {
        match kind {
            ClockKind::None => ProverClock::None,
            ClockKind::Hw64 | ClockKind::Hw32Div => ProverClock::Hw,
            ClockKind::Software => ProverClock::Sw(SwClock::new()),
        }
    }

    /// Reads the current time in milliseconds as `Code_Attest`, or `None`
    /// if no clock is installed.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the EA-MPU denies a read.
    pub fn now_ms(&self, mcu: &mut Mcu) -> Result<Option<u64>, AttestError> {
        match self {
            ProverClock::None => Ok(None),
            ProverClock::Hw => {
                let prescaler = mcu.rtc().map_or(0, |r| r.prescaler_log2());
                let ticks = mcu.read_rtc(map::ATTEST_PC)?;
                Ok(Some(ticks_to_ms(ticks, prescaler)))
            }
            ProverClock::Sw(sw) => sw.now_ms(mcu).map(Some),
        }
    }

    /// Services pending timer interrupts (SW-clock only; a no-op
    /// otherwise). Call after advancing device time.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if `Code_Clock` is denied its own state —
    /// a sign of a misconfigured rule set.
    pub fn service_interrupts(&mut self, mcu: &mut Mcu) -> Result<ServiceReport, AttestError> {
        match self {
            ProverClock::Sw(sw) => sw.service_interrupts(mcu),
            _ => Ok(ServiceReport::default()),
        }
    }
}

/// What happened during interrupt service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceReport {
    /// Wrap interrupts served by the genuine `Code_Clock` handler.
    pub served_by_code_clock: u32,
    /// Wrap interrupts delivered to a *different* handler (IDT hijacked):
    /// the SW-clock silently lost this much time.
    pub diverted: u32,
}

/// The Figure 1b software clock.
///
/// `Clock_LSB` is the device timer; on wrap-around ① the interrupt engine
/// delivers vector 0 to whatever the IDT names ②; the genuine handler,
/// `Code_Clock`, increments `Clock_MSB` in protected RAM ③ so that
/// `Clock_MSB ‖ Clock_LSB` forms a real-time clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwClock;

impl SwClock {
    /// Creates the accessor.
    #[must_use]
    pub fn new() -> Self {
        SwClock
    }

    /// Drains pending interrupts, running `Code_Clock` for every delivery
    /// that the IDT still routes to it.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the genuine handler is denied its own
    /// `Clock_MSB` word.
    pub fn service_interrupts(&mut self, mcu: &mut Mcu) -> Result<ServiceReport, AttestError> {
        let mut report = ServiceReport::default();
        while let Some((vector, handler)) = mcu.take_interrupt() {
            if vector != TIMER_WRAP_VECTOR {
                continue;
            }
            if handler == CLOCK_HANDLER_ADDR {
                // Code_Clock executes: Clock_MSB += 1, at its own PC.
                let mut buf = [0u8; 8];
                mcu.bus_read(map::CLOCK_MSB.start, &mut buf, map::CLOCK_PC)?;
                let msb = u64::from_le_bytes(buf).wrapping_add(1);
                mcu.bus_write(map::CLOCK_MSB.start, &msb.to_le_bytes(), map::CLOCK_PC)?;
                // A handful of cycles for the handler itself.
                mcu.advance_active(20);
                report.served_by_code_clock += 1;
            } else {
                // The IDT routes elsewhere: the wrap is lost to the clock.
                report.diverted += 1;
            }
        }
        Ok(report)
    }

    /// Reads `Clock_MSB ‖ Clock_LSB` as `Code_Attest` and converts to
    /// milliseconds.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the EA-MPU denies a read.
    pub fn now_ms(&self, mcu: &mut Mcu) -> Result<u64, AttestError> {
        let mut buf = [0u8; 8];
        mcu.bus_read(map::CLOCK_MSB.start, &mut buf, map::ATTEST_PC)?;
        let msb = u64::from_le_bytes(buf);
        let mut lsb_buf = [0u8; 8];
        mcu.bus_read(
            map::MMIO_TIMER.start + timer_regs::VALUE,
            &mut lsb_buf,
            map::ATTEST_PC,
        )?;
        let lsb = u64::from_le_bytes(lsb_buf);
        let ticks = (msb << DEFAULT_TIMER_WIDTH) | lsb;
        Ok(ticks_to_ms(ticks, DEFAULT_TIMER_PRESCALER_LOG2))
    }
}

/// Converts prescaled ticks to milliseconds at 24 MHz.
#[must_use]
pub fn ticks_to_ms(ticks: u64, prescaler_log2: u32) -> u64 {
    // ticks * 2^prescaler cycles, at 24e6 cycles/s -> ms.
    (ticks.saturating_mul(1u64 << prescaler_log2)).saturating_mul(1000) / CLOCK_HZ
}

/// Converts milliseconds to prescaled ticks at 24 MHz.
#[must_use]
pub fn ms_to_ticks(ms: u64, prescaler_log2: u32) -> u64 {
    ms.saturating_mul(CLOCK_HZ) / 1000 / (1u64 << prescaler_log2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_mcu::rtc::HwRtc;

    #[test]
    fn hw64_clock_reads_time() {
        let mut mcu = Mcu::new();
        mcu.install_rtc(HwRtc::wide64());
        mcu.advance_idle(CLOCK_HZ); // 1 second
        let clock = ProverClock::new(ClockKind::Hw64);
        assert_eq!(clock.now_ms(&mut mcu).unwrap(), Some(1000));
    }

    #[test]
    fn hw32_div_clock_has_42ms_resolution() {
        let mut mcu = Mcu::new();
        mcu.install_rtc(HwRtc::divided32());
        mcu.advance_idle(CLOCK_HZ); // 1 second = ~22.9 ticks of 43.7 ms
        let clock = ProverClock::new(ClockKind::Hw32Div);
        let ms = clock.now_ms(&mut mcu).unwrap().unwrap();
        assert!((900..=1000).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn none_clock_returns_none() {
        let mut mcu = Mcu::new();
        let clock = ProverClock::new(ClockKind::None);
        assert_eq!(clock.now_ms(&mut mcu).unwrap(), None);
    }

    #[test]
    fn sw_clock_tracks_time_when_serviced() {
        let mut mcu = Mcu::new();
        mcu.install_idt_entry(TIMER_WRAP_VECTOR, CLOCK_HANDLER_ADDR)
            .unwrap();
        let mut clock = ProverClock::new(ClockKind::Software);
        // 3 seconds = ~68 wraps of the default 16-bit/÷16 timer.
        mcu.advance_idle(3 * CLOCK_HZ);
        let report = clock.service_interrupts(&mut mcu).unwrap();
        assert!(report.served_by_code_clock > 60, "{report:?}");
        assert_eq!(report.diverted, 0);
        let ms = clock.now_ms(&mut mcu).unwrap().unwrap();
        assert!((2950..=3050).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn sw_clock_stops_when_idt_hijacked() {
        let mut mcu = Mcu::new();
        // Malware pointed the vector at itself.
        mcu.install_idt_entry(TIMER_WRAP_VECTOR, map::APP_CODE)
            .unwrap();
        let mut clock = ProverClock::new(ClockKind::Software);
        mcu.advance_idle(2 * CLOCK_HZ);
        let report = clock.service_interrupts(&mut mcu).unwrap();
        assert_eq!(report.served_by_code_clock, 0);
        assert!(report.diverted > 0);
        // The clock shows only the LSB fraction — it lost the wraps.
        let ms = clock.now_ms(&mut mcu).unwrap().unwrap();
        assert!(
            ms < 50,
            "clock should have lost almost all time, got {ms} ms"
        );
    }

    #[test]
    fn ticks_ms_conversions_roundtrip() {
        for ms in [0u64, 1, 42, 1000, 86_400_000] {
            let ticks = ms_to_ticks(ms, 4);
            let back = ticks_to_ms(ticks, 4);
            assert!(back.abs_diff(ms) <= 1, "ms {ms} -> {back}");
        }
    }
}
