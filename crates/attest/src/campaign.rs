//! Attestation-gated OTA campaigns: staged rollout with auto-halt and
//! rollback.
//!
//! An update is only trustworthy if a *fresh* attestation of the *new*
//! image gates each rollout wave (the TOCTOU observation: a receipt says
//! the flash write happened, only an attestation says the device is
//! running what you think it is). [`CampaignController`] is the
//! deterministic state machine behind that discipline:
//!
//! - **Phases** `Canary → Widening(wave_i) → Complete | Halted →
//!   RolledBack`. The canary wave updates a handful of devices; each
//!   subsequent wave grows geometrically, and a wave only widens once
//!   every admitted device has settled.
//! - **Per-device FSM** with bounded retries: flash (`UpdateFirmware`
//!   through the real gateway/[`SessionDriver`](crate::session) path),
//!   then a fresh `Segmented`-scope attestation of the new expected
//!   image. Only that attestation admits a device to `Healthy`.
//! - **Auto-halt** when the wave failure-rate EWMA or the cumulative
//!   [`FleetController`] breaker-trip count crosses a threshold; a halt
//!   starts rollback waves that re-flash and re-attest the *old* image.
//! - **The long tail**: a reboot mid-flash leaves a torn image (detected
//!   as an attestation of *neither* image, routed to retry — never to
//!   rollback or healthy); devices roaming offline past the wave
//!   deadline are parked, not failed, and re-admitted on return; a
//!   device presenting a valid MAC over the *wrong* image is quarantined
//!   via the breaker and never marked healthy.
//!
//! The controller owns no I/O. [`CampaignController::tick`] emits
//! [`CampaignAction`]s; the caller drives them over whatever transport
//! it has (the gateway wire protocol, an in-process pair, a simulation)
//! and feeds results back through [`CampaignController::report`]. That
//! keeps the state machine exhaustively model-checkable — see
//! `tests/campaign_convergence.rs` — while the `campaign_soak` bench
//! runs the same machine over thousands of faulty simulated devices.

use proverguard_telemetry::{metrics, trace};

use crate::fleet::{FleetController, FleetPolicy};

/// Which firmware image a step refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImageId {
    /// The fleet-wide image the campaign started from.
    Old,
    /// The per-wave rollout target.
    New,
}

/// Campaign-level phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPhase {
    /// The first, smallest wave is rolling out.
    Canary,
    /// Wave `wave` (1-based after the canary) is rolling out.
    Widening {
        /// Widening wave index (1 = first post-canary wave).
        wave: u32,
    },
    /// Every device settled and the failure thresholds never fired.
    Complete,
    /// A threshold fired; rollback waves are re-flashing the old image.
    Halted,
    /// Rollback finished: every recoverable device re-attested the old
    /// image.
    RolledBack,
}

impl CampaignPhase {
    fn span_name(self) -> &'static str {
        match self {
            CampaignPhase::Canary => "campaign.phase.canary",
            CampaignPhase::Widening { .. } => "campaign.phase.widening",
            CampaignPhase::Complete => "campaign.phase.complete",
            CampaignPhase::Halted => "campaign.phase.halted",
            CampaignPhase::RolledBack => "campaign.phase.rolledback",
        }
    }

    /// `true` for the two terminal phases.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, CampaignPhase::Complete | CampaignPhase::RolledBack)
    }
}

/// Per-device campaign state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Not yet admitted to a wave.
    Pending,
    /// Admitted; flashing the new image.
    Updating {
        /// Attempts consumed so far in this stage.
        attempts: u32,
    },
    /// Flash reported done; awaiting the gating attestation of the new
    /// image.
    Attesting {
        /// Attempts consumed so far in this stage.
        attempts: u32,
    },
    /// Fresh attestation of the target image verified.
    Healthy,
    /// A reboot mid-flash left the image torn (attested as neither
    /// image); the device is in recovery boot awaiting an update retry.
    Torn {
        /// Flash attempts consumed so far (shared with `Updating`).
        attempts: u32,
    },
    /// Roamed out of reach; parked (not failed), re-admitted on return.
    Offline {
        /// Campaign time at which the device vanished.
        since: u64,
    },
    /// Presented a valid MAC over the wrong image: treated as
    /// compromised, never marked healthy.
    Quarantined,
    /// Rolling back to the old image. `flashed` is set once the
    /// re-flash receipt arrived and only the re-attestation remains
    /// (devices that never updated skip the re-flash).
    RollingBack {
        /// Attempts consumed so far in the rollback.
        attempts: u32,
        /// Whether the old image is back in flash.
        flashed: bool,
    },
    /// Re-attested the old image after a halt.
    RolledBack,
    /// Retry budget exhausted.
    Failed,
}

impl DeviceState {
    /// `true` once the device needs no further campaign work.
    #[must_use]
    pub fn is_settled(&self) -> bool {
        matches!(
            self,
            DeviceState::Healthy
                | DeviceState::Quarantined
                | DeviceState::RolledBack
                | DeviceState::Failed
        )
    }
}

/// Work the campaign wants performed against one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignAction {
    /// Drive an `UpdateFirmware` of `image` through the session path.
    SendUpdate {
        /// Target device index.
        device: usize,
        /// Which image to flash.
        image: ImageId,
    },
    /// Drive a fresh `Segmented`-scope attestation, expecting `image`.
    Attest {
        /// Target device index.
        device: usize,
        /// Which image the verifier must expect.
        image: ImageId,
    },
}

impl CampaignAction {
    /// The device the action targets.
    #[must_use]
    pub fn device(&self) -> usize {
        match self {
            CampaignAction::SendUpdate { device, .. } | CampaignAction::Attest { device, .. } => {
                *device
            }
        }
    }
}

/// What happened when a [`CampaignAction`] was driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOutcome {
    /// The update receipt verified against the target image digest.
    UpdateOk,
    /// The update was rejected or produced a bad receipt.
    UpdateFailed,
    /// Power died mid-flash; the device rebooted into recovery with a
    /// torn image.
    UpdateTorn,
    /// The attestation verified against the expected image.
    AttestedExpected,
    /// A cryptographically valid response over the *wrong* image — the
    /// compromise signature.
    AttestedOther,
    /// The response verified against no known image — the torn-flash
    /// signature.
    AttestedNeither,
    /// No response within the retry budget.
    Timeout,
    /// The gateway or device shed the session.
    Busy,
    /// The device roamed out of reach.
    Offline,
    /// A parked device came back.
    CameOnline,
}

/// Campaign tuning.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Devices in the canary wave.
    pub canary_size: usize,
    /// Geometric wave growth factor (wave `i+1` admits `growth ×` the
    /// devices of wave `i`).
    pub wave_growth: u32,
    /// Per-stage retry budget per device (flash attempts and attestation
    /// attempts are budgeted separately; torn flashes share the flash
    /// budget).
    pub max_attempts: u32,
    /// Halt once the wave failure EWMA exceeds this (0..1).
    pub halt_failure_ewma: f64,
    /// EWMA smoothing factor (weight of the newest settlement).
    pub ewma_alpha: f64,
    /// Settlements required before the EWMA may halt the campaign (so a
    /// single early failure cannot).
    pub min_halt_samples: u32,
    /// Halt once cumulative breaker trips across the fleet reach this.
    pub breaker_trip_halt: u64,
    /// Offline devices stop blocking wave completion once the wave is
    /// this much older than its start (same time units as `now`).
    pub wave_deadline: u64,
    /// Cap on actions emitted per tick (session concurrency budget).
    pub max_inflight: usize,
    /// Health tracking for the embedded [`FleetController`].
    pub fleet: FleetPolicy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            canary_size: 2,
            wave_growth: 4,
            max_attempts: 3,
            halt_failure_ewma: 0.5,
            ewma_alpha: 0.4,
            min_halt_samples: 2,
            breaker_trip_halt: 8,
            wave_deadline: 10,
            max_inflight: 64,
            fleet: FleetPolicy::default(),
        }
    }
}

/// Cumulative campaign statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Devices currently `Healthy`.
    pub healthy: u64,
    /// Devices currently `Failed`.
    pub failed: u64,
    /// Devices currently `Quarantined`.
    pub quarantined: u64,
    /// Devices currently `RolledBack`.
    pub rolled_back: u64,
    /// Torn-flash events observed.
    pub torn_events: u64,
    /// Park (offline) events observed.
    pub parked_events: u64,
    /// `SendUpdate` actions emitted.
    pub update_actions: u64,
    /// `Attest` actions emitted.
    pub attest_actions: u64,
    /// Waves started (canary included).
    pub waves_started: u64,
    /// Expected-image retargets drained to the verifier side
    /// ([`CampaignController::drain_retargets`]): device transitions
    /// between [`ImageId::Old`] and [`ImageId::New`] expectations.
    pub image_retargets: u64,
}

/// The deterministic staged-rollout state machine.
#[derive(Debug)]
pub struct CampaignController {
    config: CampaignConfig,
    phase: CampaignPhase,
    devices: Vec<DeviceState>,
    /// Resume state for parked devices.
    parked: Vec<Option<DeviceState>>,
    /// Whether an action for the device is in flight (emitted by `tick`,
    /// not yet `report`ed).
    dispatched: Vec<bool>,
    /// Wave membership: `Some(wave)` once admitted.
    wave_of: Vec<Option<u32>>,
    fleet: FleetController,
    wave: u32,
    wave_started: u64,
    /// Failure EWMA over settlements in the current rollout.
    ewma: f64,
    ewma_samples: u32,
    /// Campaign epoch (first `tick` time) for phase-span accounting.
    started: Option<u64>,
    phase_entered: u64,
    stats: CampaignStats,
    /// Last expected image reported per device by `drain_retargets`.
    synced_image: Vec<ImageId>,
}

impl CampaignController {
    /// A campaign over `n` devices, all starting on the old image.
    #[must_use]
    pub fn new(n: usize, config: CampaignConfig) -> Self {
        let fleet = FleetController::new(n, config.fleet);
        CampaignController {
            config,
            phase: CampaignPhase::Canary,
            devices: vec![DeviceState::Pending; n],
            parked: vec![None; n],
            dispatched: vec![false; n],
            wave_of: vec![None; n],
            fleet,
            wave: 0,
            wave_started: 0,
            ewma: 0.0,
            ewma_samples: 0,
            started: None,
            phase_entered: 0,
            stats: CampaignStats::default(),
            synced_image: vec![ImageId::Old; n],
        }
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> CampaignPhase {
        self.phase
    }

    /// State of device `i`.
    #[must_use]
    pub fn device_state(&self, i: usize) -> DeviceState {
        self.devices[i]
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CampaignStats {
        let mut s = self.stats;
        s.healthy = self.count(DeviceState::Healthy);
        s.failed = self.count(DeviceState::Failed);
        s.quarantined = self.count(DeviceState::Quarantined);
        s.rolled_back = self.count(DeviceState::RolledBack);
        s
    }

    /// The embedded fleet-health controller.
    #[must_use]
    pub fn fleet(&self) -> &FleetController {
        &self.fleet
    }

    /// The image the verifier must expect from device `i` *right now* —
    /// resolved from the device's campaign state, not the fleet-wide
    /// current image. Patching expectations against the wrong member of
    /// this pair is exactly the per-wave bug this helper exists to
    /// prevent: a device mid-rollout attests the new image while its
    /// neighbours still run (and must be verified against) the old one.
    #[must_use]
    pub fn expected_image(&self, i: usize) -> ImageId {
        match self.devices[i] {
            // Admitted to the rollout and past the flash: the new image.
            DeviceState::Attesting { .. } | DeviceState::Healthy => ImageId::New,
            // Parked devices resume where they left off.
            DeviceState::Offline { .. } => match self.parked[i] {
                Some(DeviceState::Attesting { .. } | DeviceState::Healthy) => ImageId::New,
                _ => ImageId::Old,
            },
            // Everything else — pending, mid-flash, torn, rolling back,
            // rolled back, failed — is held to the old image.
            _ => ImageId::Old,
        }
    }

    /// Devices whose expected image changed since the last drain, with
    /// their new expectation — the campaign-to-verifier synchronization
    /// point. The caller applies each entry to its `DeviceDirectory`
    /// (`set_expected_memory`), which rebuilds the device's interned
    /// baseline and invalidates the superseded digest-cache entry, so a
    /// wave transition or rollback can never leave a verifier consulting
    /// a stale cached digest vector.
    pub fn drain_retargets(&mut self) -> Vec<(usize, ImageId)> {
        let mut out = Vec::new();
        for i in 0..self.devices.len() {
            let now = self.expected_image(i);
            if self.synced_image[i] != now {
                self.synced_image[i] = now;
                out.push((i, now));
            }
        }
        if !out.is_empty() {
            self.stats.image_retargets += out.len() as u64;
            metrics::counter_add("campaign.image_retargets", out.len() as u64);
        }
        out
    }

    fn count(&self, needle: DeviceState) -> u64 {
        self.devices.iter().filter(|s| **s == needle).count() as u64
    }

    fn wave_size(&self, wave: u32) -> usize {
        self.config
            .canary_size
            .saturating_mul((self.config.wave_growth as usize).saturating_pow(wave))
            .max(1)
    }

    fn set_phase(&mut self, phase: CampaignPhase, now: u64) {
        if phase == self.phase {
            return;
        }
        // Emit the finished phase as a telemetry span covering exactly
        // [phase_entered, now): successive spans partition campaign time.
        trace::set_now(self.phase_entered);
        let span = trace::span(self.phase.span_name());
        trace::set_now(now);
        drop(span);
        metrics::counter_add("campaign.phase_changes", 1);
        self.phase = phase;
        self.phase_entered = now;
    }

    fn admit_wave(&mut self, now: u64) {
        let size = self.wave_size(self.wave);
        let mut admitted = 0usize;
        for i in 0..self.devices.len() {
            if admitted == size {
                break;
            }
            if self.wave_of[i].is_none() {
                self.wave_of[i] = Some(self.wave);
                self.devices[i] = DeviceState::Updating { attempts: 0 };
                admitted += 1;
            }
        }
        self.wave_started = now;
        self.stats.waves_started += 1;
        metrics::counter_add("campaign.waves_started", 1);
        metrics::gauge_set("campaign.wave", u64::from(self.wave));
    }

    fn settle_sample(&mut self, failed: bool) {
        let x = if failed { 1.0 } else { 0.0 };
        self.ewma = self.config.ewma_alpha * x + (1.0 - self.config.ewma_alpha) * self.ewma;
        self.ewma_samples += 1;
    }

    fn breaker_trips(&self) -> u64 {
        (0..self.devices.len())
            .map(|i| self.fleet.device(i).breaker.trips())
            .sum()
    }

    fn should_halt(&self) -> bool {
        (self.ewma_samples >= self.config.min_halt_samples
            && self.ewma > self.config.halt_failure_ewma)
            || self.breaker_trips() >= self.config.breaker_trip_halt
    }

    fn halt(&mut self, now: u64) {
        self.set_phase(CampaignPhase::Halted, now);
        metrics::counter_add("campaign.halts", 1);
        // Convert every device to its rollback role. Devices the rollout
        // touched re-flash the old image; untouched devices only need the
        // re-attestation; quarantined and exhausted devices stay put.
        for i in 0..self.devices.len() {
            let state = match self.parked[i].take() {
                Some(saved) => {
                    // Un-park for rollback classification; a device that
                    // is still unreachable will just report Offline again.
                    saved
                }
                None => self.devices[i],
            };
            self.devices[i] = match state {
                DeviceState::Quarantined => DeviceState::Quarantined,
                DeviceState::Updating { .. }
                | DeviceState::Attesting { .. }
                | DeviceState::Healthy
                | DeviceState::Torn { .. }
                | DeviceState::Failed => DeviceState::RollingBack {
                    attempts: 0,
                    flashed: false,
                },
                DeviceState::Pending => DeviceState::RollingBack {
                    attempts: 0,
                    flashed: true, // old image never left flash
                },
                // Already in rollback shape (repeated halt is a no-op).
                s @ (DeviceState::RollingBack { .. } | DeviceState::RolledBack) => s,
                DeviceState::Offline { .. } => unreachable!("parked state was taken"),
            };
            self.dispatched[i] = false;
        }
    }

    /// Advances the campaign at time `now` and returns the actions to
    /// drive. Call [`CampaignController::report`] with each action's
    /// outcome before the next tick (an action stays in flight until
    /// reported).
    pub fn tick(&mut self, now: u64) -> Vec<CampaignAction> {
        if self.started.is_none() {
            self.started = Some(now);
            self.phase_entered = now;
            self.admit_wave(now);
        }
        if self.phase.is_terminal() {
            return Vec::new();
        }

        if !matches!(self.phase, CampaignPhase::Halted) {
            if self.should_halt() {
                self.halt(now);
            } else {
                self.advance_waves(now);
            }
        }
        if matches!(self.phase, CampaignPhase::Halted) && self.rollback_done() {
            self.set_phase(CampaignPhase::RolledBack, now);
            return Vec::new();
        }
        if self.phase.is_terminal() {
            return Vec::new();
        }

        let mut actions = Vec::new();
        for i in 0..self.devices.len() {
            if actions.len() >= self.config.max_inflight {
                break;
            }
            if self.dispatched[i] {
                continue;
            }
            let action = match self.devices[i] {
                DeviceState::Updating { .. } | DeviceState::Torn { .. } => {
                    Some(CampaignAction::SendUpdate {
                        device: i,
                        image: ImageId::New,
                    })
                }
                DeviceState::Attesting { .. } => Some(CampaignAction::Attest {
                    device: i,
                    image: ImageId::New,
                }),
                DeviceState::RollingBack { flashed, .. } => Some(if flashed {
                    CampaignAction::Attest {
                        device: i,
                        image: ImageId::Old,
                    }
                } else {
                    CampaignAction::SendUpdate {
                        device: i,
                        image: ImageId::Old,
                    }
                }),
                _ => None,
            };
            if let Some(action) = action {
                self.dispatched[i] = true;
                match action {
                    CampaignAction::SendUpdate { .. } => self.stats.update_actions += 1,
                    CampaignAction::Attest { .. } => self.stats.attest_actions += 1,
                }
                actions.push(action);
            }
        }
        actions
    }

    /// `true` once every device has settled or is parked offline past
    /// the wave deadline.
    fn wave_settled(&self, now: u64) -> bool {
        let deadline_passed = now.saturating_sub(self.wave_started) > self.config.wave_deadline;
        self.devices.iter().enumerate().all(|(i, s)| {
            if self.wave_of[i].is_none() {
                return true; // not admitted yet
            }
            match s {
                DeviceState::Offline { .. } => deadline_passed,
                s => s.is_settled(),
            }
        })
    }

    fn advance_waves(&mut self, now: u64) {
        if !self.wave_settled(now) {
            return;
        }
        let unadmitted = self.wave_of.iter().filter(|w| w.is_none()).count();
        if unadmitted == 0 {
            // Fully admitted. Complete only once nothing is parked — a
            // parked device is *not failed* and must still be driven to
            // a settled state when it returns.
            let all_settled = self.devices.iter().all(DeviceState::is_settled);
            if all_settled {
                self.set_phase(CampaignPhase::Complete, now);
            }
            return;
        }
        self.wave += 1;
        self.set_phase(CampaignPhase::Widening { wave: self.wave }, now);
        self.admit_wave(now);
    }

    fn rollback_done(&self) -> bool {
        self.devices.iter().all(|s| {
            matches!(
                s,
                DeviceState::RolledBack | DeviceState::Quarantined | DeviceState::Failed
            )
        })
    }

    /// Feeds back the outcome of an action against device `i` at time
    /// `now`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn report(&mut self, i: usize, outcome: DeviceOutcome, now: u64) {
        self.dispatched[i] = false;

        // Park / return first: they apply in any working state.
        match outcome {
            DeviceOutcome::Offline => {
                if !matches!(self.devices[i], DeviceState::Offline { .. }) {
                    self.parked[i] = Some(self.devices[i]);
                    self.devices[i] = DeviceState::Offline { since: now };
                    self.stats.parked_events += 1;
                    metrics::counter_add("campaign.parked", 1);
                }
                return;
            }
            DeviceOutcome::CameOnline => {
                if let DeviceState::Offline { .. } = self.devices[i] {
                    let resumed = self.parked[i].take().unwrap_or(DeviceState::Pending);
                    // A device that parked during the rollout but returns
                    // after a halt joins the rollback instead.
                    self.devices[i] = if matches!(self.phase, CampaignPhase::Halted) {
                        match resumed {
                            DeviceState::Quarantined => DeviceState::Quarantined,
                            DeviceState::RollingBack { .. } | DeviceState::RolledBack => resumed,
                            DeviceState::Pending => DeviceState::RollingBack {
                                attempts: 0,
                                flashed: true,
                            },
                            _ => DeviceState::RollingBack {
                                attempts: 0,
                                flashed: false,
                            },
                        }
                    } else {
                        resumed
                    };
                }
                return;
            }
            _ => {}
        }

        let success = matches!(
            outcome,
            DeviceOutcome::UpdateOk | DeviceOutcome::AttestedExpected
        );
        // Busy is backpressure, not device health; everything else feeds
        // the breaker/EWMA health model.
        if !matches!(outcome, DeviceOutcome::Busy) {
            self.fleet.record_outcome(i, success, now);
        }

        let max = self.config.max_attempts;
        let state = self.devices[i];
        self.devices[i] = match (state, outcome) {
            // ---- rollout: flashing ------------------------------------
            (DeviceState::Updating { .. }, DeviceOutcome::UpdateOk) => {
                DeviceState::Attesting { attempts: 0 }
            }
            (
                DeviceState::Updating { attempts } | DeviceState::Torn { attempts },
                DeviceOutcome::UpdateTorn,
            ) => {
                self.stats.torn_events += 1;
                metrics::counter_add("campaign.torn", 1);
                if attempts + 1 >= max {
                    self.settle_sample(true);
                    DeviceState::Failed
                } else {
                    // Torn routes to *retry* — never rollback, never
                    // healthy: the recovery-booted device accepts a new
                    // UpdateFirmware and nothing else will attest.
                    DeviceState::Torn {
                        attempts: attempts + 1,
                    }
                }
            }
            (
                DeviceState::Updating { attempts } | DeviceState::Torn { attempts },
                DeviceOutcome::UpdateFailed | DeviceOutcome::Timeout | DeviceOutcome::Busy,
            ) => {
                if outcome != DeviceOutcome::Busy && attempts + 1 >= max {
                    self.settle_sample(true);
                    DeviceState::Failed
                } else {
                    DeviceState::Updating {
                        attempts: attempts + u32::from(outcome != DeviceOutcome::Busy),
                    }
                }
            }
            // A torn retry keeps its attempt count: the budget bounds the
            // whole flash-then-attest cycle, not each lap of it.
            (DeviceState::Torn { attempts }, DeviceOutcome::UpdateOk) => {
                DeviceState::Attesting { attempts }
            }

            // ---- rollout: gating attestation --------------------------
            (DeviceState::Attesting { .. }, DeviceOutcome::AttestedExpected) => {
                self.settle_sample(false);
                metrics::counter_add("campaign.healthy", 1);
                DeviceState::Healthy
            }
            (_, DeviceOutcome::AttestedOther) => {
                // Valid MAC, wrong image: compromise. The breaker already
                // took the failure above; quarantine is terminal.
                self.settle_sample(true);
                metrics::counter_add("campaign.quarantined", 1);
                DeviceState::Quarantined
            }
            (DeviceState::Attesting { attempts }, DeviceOutcome::AttestedNeither) => {
                // Neither image: the torn-flash signature, seen from the
                // verifier side. Back to the flash stage.
                self.stats.torn_events += 1;
                metrics::counter_add("campaign.torn", 1);
                if attempts + 1 >= max {
                    self.settle_sample(true);
                    DeviceState::Failed
                } else {
                    DeviceState::Torn {
                        attempts: attempts + 1,
                    }
                }
            }
            (DeviceState::Attesting { attempts }, DeviceOutcome::Timeout | DeviceOutcome::Busy) => {
                if outcome != DeviceOutcome::Busy && attempts + 1 >= max {
                    self.settle_sample(true);
                    DeviceState::Failed
                } else {
                    DeviceState::Attesting {
                        attempts: attempts + u32::from(outcome != DeviceOutcome::Busy),
                    }
                }
            }

            // ---- rollback ---------------------------------------------
            (DeviceState::RollingBack { attempts, .. }, DeviceOutcome::UpdateOk) => {
                DeviceState::RollingBack {
                    attempts,
                    flashed: true,
                }
            }
            (DeviceState::RollingBack { attempts, .. }, DeviceOutcome::AttestedExpected) => {
                let _ = attempts;
                metrics::counter_add("campaign.rolled_back", 1);
                DeviceState::RolledBack
            }
            (DeviceState::RollingBack { attempts, .. }, DeviceOutcome::UpdateTorn) => {
                self.stats.torn_events += 1;
                if attempts + 1 >= max {
                    DeviceState::Failed
                } else {
                    DeviceState::RollingBack {
                        attempts: attempts + 1,
                        flashed: false,
                    }
                }
            }
            (
                DeviceState::RollingBack { attempts, flashed },
                DeviceOutcome::UpdateFailed
                | DeviceOutcome::Timeout
                | DeviceOutcome::Busy
                | DeviceOutcome::AttestedNeither,
            ) => {
                let charged = outcome != DeviceOutcome::Busy;
                let reflash = outcome == DeviceOutcome::AttestedNeither;
                if charged && attempts + 1 >= max {
                    DeviceState::Failed
                } else {
                    DeviceState::RollingBack {
                        attempts: attempts + u32::from(charged),
                        flashed: flashed && !reflash,
                    }
                }
            }

            // Anything else (late or duplicate outcome): hold position.
            (state, _) => state,
        };
    }

    /// Closes out telemetry once the campaign reached a terminal phase:
    /// emits the final phase span so the set of phase spans partitions
    /// `[first tick, now)` exactly. Idempotent via the zero-length tail.
    pub fn finish(&mut self, now: u64) {
        trace::set_now(self.phase_entered);
        let span = trace::span(self.phase.span_name());
        trace::set_now(now);
        drop(span);
        self.phase_entered = now;
        metrics::gauge_set("campaign.healthy_final", self.count(DeviceState::Healthy));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CampaignConfig {
        CampaignConfig {
            canary_size: 1,
            wave_growth: 2,
            max_attempts: 3,
            halt_failure_ewma: 0.4,
            ewma_alpha: 0.5,
            min_halt_samples: 1,
            breaker_trip_halt: 100,
            wave_deadline: 5,
            max_inflight: 16,
            ..CampaignConfig::default()
        }
    }

    /// Drives every emitted action with `f(device, action) -> outcome`.
    fn drive<F>(c: &mut CampaignController, ticks: u64, mut f: F)
    where
        F: FnMut(usize, CampaignAction) -> DeviceOutcome,
    {
        for now in 0..ticks {
            let actions = c.tick(now);
            if c.phase().is_terminal() {
                break;
            }
            for a in actions {
                let outcome = f(a.device(), a);
                c.report(a.device(), outcome, now);
            }
        }
    }

    #[test]
    fn all_healthy_campaign_completes() {
        let mut c = CampaignController::new(7, config());
        drive(&mut c, 50, |_, a| match a {
            CampaignAction::SendUpdate { .. } => DeviceOutcome::UpdateOk,
            CampaignAction::Attest { .. } => DeviceOutcome::AttestedExpected,
        });
        assert_eq!(c.phase(), CampaignPhase::Complete);
        assert_eq!(c.stats().healthy, 7);
        // Waves: 1, 2, 4 → all 7 admitted in three waves.
        assert_eq!(c.stats().waves_started, 3);
    }

    #[test]
    fn bad_canary_halts_before_second_wave_and_rolls_back() {
        let mut c = CampaignController::new(8, config());
        drive(&mut c, 100, |i, a| match a {
            // The canary (device 0) flashed a bad image: every gating
            // attestation comes back as neither image.
            CampaignAction::Attest {
                image: ImageId::New,
                ..
            } if i == 0 => DeviceOutcome::AttestedNeither,
            CampaignAction::SendUpdate { .. } => DeviceOutcome::UpdateOk,
            CampaignAction::Attest { .. } => DeviceOutcome::AttestedExpected,
        });
        assert_eq!(c.phase(), CampaignPhase::RolledBack);
        // The halt fired during the canary: no widening wave started.
        assert_eq!(c.stats().waves_started, 1);
        assert_eq!(c.stats().healthy, 0);
        // Every device re-attested the old image.
        assert_eq!(c.stats().rolled_back, 8);
    }

    #[test]
    fn wrong_image_mac_quarantines_never_healthy() {
        let mut c = CampaignController::new(4, config());
        drive(&mut c, 100, |i, a| match a {
            CampaignAction::Attest { .. } if i == 2 => DeviceOutcome::AttestedOther,
            CampaignAction::SendUpdate { .. } => DeviceOutcome::UpdateOk,
            CampaignAction::Attest { .. } => DeviceOutcome::AttestedExpected,
        });
        assert_eq!(c.device_state(2), DeviceState::Quarantined);
        assert_ne!(c.device_state(2), DeviceState::Healthy);
    }

    #[test]
    fn torn_flash_routes_to_retry_then_succeeds() {
        let mut torn_left = 1;
        let mut c = CampaignController::new(1, config());
        drive(&mut c, 50, |_, a| match a {
            CampaignAction::SendUpdate { .. } if torn_left > 0 => {
                torn_left -= 1;
                DeviceOutcome::UpdateTorn
            }
            CampaignAction::SendUpdate { .. } => DeviceOutcome::UpdateOk,
            CampaignAction::Attest { .. } => DeviceOutcome::AttestedExpected,
        });
        assert_eq!(c.phase(), CampaignPhase::Complete);
        assert_eq!(c.stats().healthy, 1);
        assert_eq!(c.stats().torn_events, 1);
    }

    #[test]
    fn offline_device_parks_and_resumes() {
        let mut c = CampaignController::new(3, config());
        let mut offline_reported = false;
        let mut came_back = false;
        for now in 0..60 {
            let actions = c.tick(now);
            if c.phase().is_terminal() {
                break;
            }
            // Device 0 vanishes on its first action and returns at t=20.
            if !came_back && now >= 20 {
                if let DeviceState::Offline { .. } = c.device_state(0) {
                    c.report(0, DeviceOutcome::CameOnline, now);
                    came_back = true;
                }
            }
            for a in actions {
                let outcome = if a.device() == 0 && !offline_reported {
                    offline_reported = true;
                    DeviceOutcome::Offline
                } else {
                    match a {
                        CampaignAction::SendUpdate { .. } => DeviceOutcome::UpdateOk,
                        CampaignAction::Attest { .. } => DeviceOutcome::AttestedExpected,
                    }
                };
                c.report(a.device(), outcome, now);
            }
        }
        assert_eq!(c.phase(), CampaignPhase::Complete);
        assert_eq!(c.stats().healthy, 3);
        assert_eq!(c.stats().parked_events, 1);
        // The park did not block widening: the other devices settled
        // while device 0 roamed.
    }

    #[test]
    fn expected_image_tracks_per_device_state() {
        let mut c = CampaignController::new(3, config());
        let _ = c.tick(0);
        // Device 0 is the canary, mid-flash: still expected on Old.
        assert_eq!(c.expected_image(0), ImageId::Old);
        c.report(0, DeviceOutcome::UpdateOk, 0);
        // Flashed, awaiting the gating attest: expected on New.
        assert_eq!(c.expected_image(0), ImageId::New);
        // Unadmitted neighbour stays Old.
        assert_eq!(c.expected_image(1), ImageId::Old);
        c.report(0, DeviceOutcome::AttestedExpected, 1);
        assert_eq!(c.expected_image(0), ImageId::New);
    }

    #[test]
    fn retry_budget_exhaustion_fails_device() {
        let mut c = CampaignController::new(1, config());
        drive(&mut c, 50, |_, _| DeviceOutcome::Timeout);
        assert_eq!(c.device_state(0), DeviceState::Failed);
    }
}
