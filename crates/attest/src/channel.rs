//! Attested secure sessions: an HKDF key-exchange handshake whose key
//! confirmation **is** a fresh full-scope attestation, then cheap
//! sequence-numbered session frames for the rounds that follow.
//!
//! The paper's one-shot protocol pays a full challenge/MAC round trip
//! per attestation. At fleet scale that wastes the segment-cache and
//! `History` wins: the per-round constant cost is dominated by the
//! request authenticator and challenge plumbing, not the memory work.
//! This module amortizes it the way attestation-bound session protocols
//! do (oak_session, SPDM secure sessions):
//!
//! 1. **Handshake.** The verifier sends a [`HandshakeInit`] carrying a
//!    nonce and an ordinary *signed, fresh, full-scope* attestation
//!    request. The prover runs its normal §4/§5 pipeline — admission,
//!    auth, freshness, full memory MAC — and answers with a
//!    [`HandshakeAccept`] carrying its nonce and the attestation
//!    response. That response doubles as the key-confirmation
//!    transcript: both sides derive session keys over the exact wire
//!    bytes, so a single flipped bit anywhere in the exchange yields
//!    unrelated keys, and neither side derives anything until its own
//!    acceptance checks passed (the prover's pipeline, the verifier's
//!    response verification).
//! 2. **Key schedule.** [`SessionKeys::derive`] runs HKDF
//!    ([`proverguard_crypto::hkdf`]) with the long-term device key as
//!    input keying material and the transcript as salt, then labeled
//!    expansions split the PRK into direction-separated MAC keys and a
//!    public session id. The long-term key itself never touches a
//!    session frame — its usage surface stays exactly what it was
//!    (request auth, response MACs, sealed NV records).
//! 3. **Session rounds.** Follow-up attestations ride as
//!    [`SecureChannel`] frames: sequence-numbered, replay-window
//!    checked, MACed under the direction key. The *inner* attestation
//!    request is unsigned — the frame MAC is the per-message
//!    authenticator — so a round costs the prover one short HMAC per
//!    frame instead of the one-shot's outer request MAC, while the
//!    response construction (and thus [`crate::verifier::Verifier::
//!    check_response`]) is unchanged.
//! 4. **Rekey ratchet.** After `rekey_after` verified rounds both ends
//!    deterministically ratchet the PRK forward ([`SessionKeys::
//!    ratchet`]) and reset sequence state. The ratchet is one-way:
//!    compromising epoch-*n* keys yields nothing about earlier epochs.
//!    Desync (a lost final frame) fails closed — the next frame MAC
//!    mismatches, both sides tear down, and the prover re-handshakes.
//!
//! Rejection ordering mirrors the prover's cheap-reject ladder: version
//! and shape checks first, then the replay window, and only then the
//! frame MAC — a replayed or garbage frame never costs key material or
//! an HKDF derivation ([`key_derivations`] is the observable the bench
//! gates on).

use std::sync::atomic::{AtomicU64, Ordering};

use proverguard_crypto::ct::ct_eq;
use proverguard_crypto::hkdf;
use proverguard_crypto::hmac::HmacSha1;

use crate::error::{AttestError, RejectReason};
use crate::message::{AttestRequest, AttestResponse};
use crate::prover::Prover;
use crate::verifier::Verifier;

/// Channel protocol version byte (handshake messages and frames).
pub const CHANNEL_VERSION: u8 = 1;

/// Size of each side's handshake nonce.
pub const SESSION_NONCE_SIZE: usize = 16;

/// Size of the public session identifier.
pub const SESSION_ID_SIZE: usize = 8;

/// Truncated frame-MAC tag length. 16 of HMAC-SHA1's 20 bytes — the
/// same tag budget as the request authenticator.
pub const FRAME_TAG_LEN: usize = 16;

/// Sliding anti-replay window width (frames behind the highest seen).
pub const REPLAY_WINDOW: u64 = 64;

/// Domain label bound into the key-schedule transcript.
const TRANSCRIPT_LABEL: &[u8] = b"PGSESS1";

/// Domain label bound into every frame MAC.
const FRAME_LABEL: &[u8] = b"PGSFRM1";

/// Fixed frame framing overhead: version, flags, seq, length, tag.
const FRAME_OVERHEAD: usize = 1 + 1 + 8 + 2 + FRAME_TAG_LEN;

static KEY_DERIVATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of session-key derivations (initial derives plus
/// ratchets). The session bench snapshots this around its adversary
/// rows: rejected traffic must not move it.
#[must_use]
pub fn key_derivations() -> u64 {
    KEY_DERIVATIONS.load(Ordering::SeqCst)
}

fn malformed(reason: &str) -> AttestError {
    AttestError::MalformedMessage {
        reason: reason.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Handshake messages
// ---------------------------------------------------------------------------

/// Verifier → prover: opens a session. Carries the verifier nonce, the
/// rekey cadence, and a normal signed full-scope attestation request —
/// the prover's answer to that request is the key confirmation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeInit {
    /// Channel protocol version.
    pub version: u8,
    /// Verifier's session nonce.
    pub verifier_nonce: [u8; SESSION_NONCE_SIZE],
    /// Verified rounds between deterministic rekey ratchets (0 = never).
    pub rekey_after: u32,
    /// Serialized [`AttestRequest`] (signed, fresh, full scope).
    pub request: Vec<u8>,
}

impl HandshakeInit {
    /// Serializes the message.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + SESSION_NONCE_SIZE + 4 + 2 + self.request.len());
        out.push(self.version);
        out.extend_from_slice(&self.verifier_nonce);
        out.extend_from_slice(&self.rekey_after.to_be_bytes());
        out.extend_from_slice(&(self.request.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.request);
        out
    }

    /// Parses a message serialized by [`HandshakeInit::encode`].
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] on truncation, trailing bytes,
    /// or an unknown version — all checked before any cryptography.
    pub fn decode(bytes: &[u8]) -> Result<Self, AttestError> {
        const HEAD: usize = 1 + SESSION_NONCE_SIZE + 4 + 2;
        if bytes.len() < HEAD {
            return Err(malformed("truncated handshake init"));
        }
        let version = bytes[0];
        if version != CHANNEL_VERSION {
            return Err(malformed("unsupported channel version"));
        }
        let mut verifier_nonce = [0u8; SESSION_NONCE_SIZE];
        verifier_nonce.copy_from_slice(&bytes[1..1 + SESSION_NONCE_SIZE]);
        let mut at = 1 + SESSION_NONCE_SIZE;
        let rekey_after = u32::from_be_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        at += 4;
        let req_len = u16::from_be_bytes(bytes[at..at + 2].try_into().expect("2 bytes")) as usize;
        at += 2;
        if bytes.len() != at + req_len {
            return Err(malformed("handshake init length mismatch"));
        }
        Ok(HandshakeInit {
            version,
            verifier_nonce,
            rekey_after,
            request: bytes[at..].to_vec(),
        })
    }
}

/// Prover → verifier: accepts a session. Carries the prover nonce and
/// the attestation response produced by the prover's full pipeline for
/// the init's embedded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeAccept {
    /// Channel protocol version.
    pub version: u8,
    /// Prover's session nonce.
    pub prover_nonce: [u8; SESSION_NONCE_SIZE],
    /// Serialized [`AttestResponse`].
    pub response: Vec<u8>,
}

impl HandshakeAccept {
    /// Serializes the message.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + SESSION_NONCE_SIZE + 2 + self.response.len());
        out.push(self.version);
        out.extend_from_slice(&self.prover_nonce);
        out.extend_from_slice(&(self.response.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.response);
        out
    }

    /// Parses a message serialized by [`HandshakeAccept::encode`].
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] on truncation, trailing bytes,
    /// or an unknown version.
    pub fn decode(bytes: &[u8]) -> Result<Self, AttestError> {
        const HEAD: usize = 1 + SESSION_NONCE_SIZE + 2;
        if bytes.len() < HEAD {
            return Err(malformed("truncated handshake accept"));
        }
        let version = bytes[0];
        if version != CHANNEL_VERSION {
            return Err(malformed("unsupported channel version"));
        }
        let mut prover_nonce = [0u8; SESSION_NONCE_SIZE];
        prover_nonce.copy_from_slice(&bytes[1..1 + SESSION_NONCE_SIZE]);
        let at = 1 + SESSION_NONCE_SIZE;
        let resp_len = u16::from_be_bytes(bytes[at..at + 2].try_into().expect("2 bytes")) as usize;
        let at = at + 2;
        if bytes.len() != at + resp_len {
            return Err(malformed("handshake accept length mismatch"));
        }
        Ok(HandshakeAccept {
            version,
            prover_nonce,
            response: bytes[at..].to_vec(),
        })
    }
}

/// The byte string both sides derive session keys over: every field of
/// both handshake messages, length-prefixed, under a versioned label.
/// The attestation request *and response* are inside, so the derived
/// keys are bound to the verified full-scope attestation — this is what
/// makes the handshake "attested".
#[must_use]
pub fn transcript(init: &HandshakeInit, accept: &HandshakeAccept) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        TRANSCRIPT_LABEL.len()
            + 2
            + 2 * SESSION_NONCE_SIZE
            + 4
            + 4
            + init.request.len()
            + accept.response.len(),
    );
    out.extend_from_slice(TRANSCRIPT_LABEL);
    out.push(init.version);
    out.push(accept.version);
    out.extend_from_slice(&init.verifier_nonce);
    out.extend_from_slice(&accept.prover_nonce);
    out.extend_from_slice(&init.rekey_after.to_be_bytes());
    out.extend_from_slice(&(init.request.len() as u16).to_be_bytes());
    out.extend_from_slice(&init.request);
    out.extend_from_slice(&(accept.response.len() as u16).to_be_bytes());
    out.extend_from_slice(&accept.response);
    out
}

// ---------------------------------------------------------------------------
// Key schedule
// ---------------------------------------------------------------------------

/// Per-session key material: a public session id, one MAC key per
/// direction, and the PRK the rekey ratchet advances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Public session identifier (safe to put on the wire).
    pub session_id: [u8; SESSION_ID_SIZE],
    /// MAC key for verifier → prover frames.
    pub to_prover: [u8; 16],
    /// MAC key for prover → verifier frames.
    pub to_verifier: [u8; 16],
    /// Rekey epoch (0 after the handshake, +1 per ratchet).
    pub epoch: u32,
    prk: [u8; 20],
}

impl SessionKeys {
    /// Derives fresh session keys from the long-term device key (`ikm`)
    /// and the handshake `transcript` (used as the HKDF salt). Labeled
    /// expansions domain-separate the two direction keys and the public
    /// session id from each other and from every other HKDF consumer.
    #[must_use]
    pub fn derive(ikm: &[u8; 16], transcript: &[u8]) -> Self {
        KEY_DERIVATIONS.fetch_add(1, Ordering::SeqCst);
        let prk = hkdf::extract(transcript, ikm);
        let mut keys = SessionKeys {
            session_id: [0; SESSION_ID_SIZE],
            to_prover: [0; 16],
            to_verifier: [0; 16],
            epoch: 0,
            prk,
        };
        keys.session_id.copy_from_slice(&hkdf::expand_label(
            &prk,
            b"session id",
            b"",
            SESSION_ID_SIZE,
        ));
        keys.fill_direction_keys();
        keys
    }

    /// Deterministic one-way rekey: the PRK ratchets forward under a
    /// labeled expansion bound to the next epoch number, the direction
    /// keys are re-derived, and the epoch advances. The session id is
    /// stable across ratchets (it names the session, not the epoch).
    pub fn ratchet(&mut self) {
        KEY_DERIVATIONS.fetch_add(1, Ordering::SeqCst);
        let next = self.epoch.wrapping_add(1);
        let stepped = hkdf::expand_label(&self.prk, b"rekey", &next.to_be_bytes(), 20);
        self.prk.copy_from_slice(&stepped);
        self.epoch = next;
        self.fill_direction_keys();
    }

    fn fill_direction_keys(&mut self) {
        self.to_prover
            .copy_from_slice(&hkdf::expand_label(&self.prk, b"c2p mac", b"", 16));
        self.to_verifier
            .copy_from_slice(&hkdf::expand_label(&self.prk, b"p2c mac", b"", 16));
    }
}

// ---------------------------------------------------------------------------
// Replay window
// ---------------------------------------------------------------------------

/// Sliding-window anti-replay tracker (RFC 6479 shape, 64-frame
/// window). Sequence numbers start at 1; `highest == 0` means nothing
/// has been accepted yet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayWindow {
    highest: u64,
    /// Bit `i` set ⇔ `highest - i` was seen (bit 0 = `highest`).
    bitmap: u64,
}

impl ReplayWindow {
    /// Would `seq` be acceptable (not a replay, not behind the window)?
    /// Pure check — call [`ReplayWindow::commit`] after the frame MAC
    /// verifies.
    #[must_use]
    pub fn check(&self, seq: u64) -> bool {
        if seq == 0 {
            return false;
        }
        if seq > self.highest {
            return true;
        }
        let behind = self.highest - seq;
        if behind >= REPLAY_WINDOW {
            return false;
        }
        self.bitmap & (1u64 << behind) == 0
    }

    /// Records `seq` as seen. Call only after [`ReplayWindow::check`]
    /// accepted it and the MAC verified.
    pub fn commit(&mut self, seq: u64) {
        if seq > self.highest {
            let shift = seq - self.highest;
            self.bitmap = if shift >= 64 { 0 } else { self.bitmap << shift };
            self.bitmap |= 1;
            self.highest = seq;
        } else {
            self.bitmap |= 1u64 << (self.highest - seq);
        }
    }

    /// Highest sequence number accepted so far (0 = none).
    #[must_use]
    pub fn highest(&self) -> u64 {
        self.highest
    }
}

// ---------------------------------------------------------------------------
// Secure channel
// ---------------------------------------------------------------------------

/// Which end of the channel this state belongs to (decides which
/// direction key seals outgoing frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The gateway/verifier end.
    Verifier,
    /// The device/prover end.
    Prover,
}

/// Direction flag bit: set on prover → verifier frames.
const FLAG_TO_VERIFIER: u8 = 0b0000_0001;

/// One endpoint of an established session: keys, send sequence, receive
/// replay window, and the lockstep rekey counter.
#[derive(Debug, Clone)]
pub struct SecureChannel {
    keys: SessionKeys,
    role: Role,
    send_seq: u64,
    recv_window: ReplayWindow,
    rounds_since_rekey: u32,
    rekey_after: u32,
}

impl SecureChannel {
    /// Wraps freshly derived `keys` for `role`, rekeying every
    /// `rekey_after` verified rounds (0 = never).
    #[must_use]
    pub fn new(keys: SessionKeys, role: Role, rekey_after: u32) -> Self {
        SecureChannel {
            keys,
            role,
            send_seq: 0,
            recv_window: ReplayWindow::default(),
            rounds_since_rekey: 0,
            rekey_after,
        }
    }

    /// The public session id.
    #[must_use]
    pub fn session_id(&self) -> [u8; SESSION_ID_SIZE] {
        self.keys.session_id
    }

    /// Current rekey epoch.
    #[must_use]
    pub fn epoch(&self) -> u32 {
        self.keys.epoch
    }

    /// The key material (adversary probes and key-hygiene tests).
    #[must_use]
    pub fn keys(&self) -> &SessionKeys {
        &self.keys
    }

    fn send_key(&self) -> &[u8; 16] {
        match self.role {
            Role::Verifier => &self.keys.to_prover,
            Role::Prover => &self.keys.to_verifier,
        }
    }

    fn recv_key(&self) -> &[u8; 16] {
        match self.role {
            Role::Verifier => &self.keys.to_verifier,
            Role::Prover => &self.keys.to_prover,
        }
    }

    fn send_flags(&self) -> u8 {
        match self.role {
            Role::Verifier => 0,
            Role::Prover => FLAG_TO_VERIFIER,
        }
    }

    fn frame_mac(key: &[u8; 16], flags: u8, seq: u64, payload: &[u8]) -> [u8; 20] {
        let mut h = HmacSha1::new(key);
        h.update(FRAME_LABEL);
        h.update(&[CHANNEL_VERSION, flags]);
        h.update(&seq.to_be_bytes());
        h.update(payload);
        h.finalize()
    }

    /// Seals `payload` into the next outgoing frame:
    /// `version ‖ flags ‖ seq ‖ len ‖ payload ‖ tag`.
    #[must_use]
    pub fn seal_next(&mut self, payload: &[u8]) -> Vec<u8> {
        self.send_seq += 1;
        let flags = self.send_flags();
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        out.push(CHANNEL_VERSION);
        out.push(flags);
        out.extend_from_slice(&self.send_seq.to_be_bytes());
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(payload);
        let tag = Self::frame_mac(self.send_key(), flags, self.send_seq, payload);
        out.extend_from_slice(&tag[..FRAME_TAG_LEN]);
        out
    }

    /// Opens an incoming frame, enforcing the cheap-reject ladder:
    /// shape and version first ([`AttestError::MalformedMessage`]), then
    /// direction ([`RejectReason::SessionAuth`]), then the replay window
    /// ([`RejectReason::SessionReplay`]) — all **before** the frame MAC
    /// is computed, so replays and garbage never cost key material work.
    ///
    /// # Errors
    ///
    /// As above; a MAC mismatch is [`RejectReason::SessionAuth`].
    pub fn open(&mut self, frame: &[u8]) -> Result<Vec<u8>, AttestError> {
        if frame.len() < FRAME_OVERHEAD {
            return Err(malformed("truncated session frame"));
        }
        if frame[0] != CHANNEL_VERSION {
            return Err(malformed("unsupported channel version"));
        }
        let flags = frame[1];
        if flags & !FLAG_TO_VERIFIER != 0 {
            return Err(malformed("unknown frame flags"));
        }
        let expect_flags = match self.role {
            Role::Verifier => FLAG_TO_VERIFIER,
            Role::Prover => 0,
        };
        if flags != expect_flags {
            return Err(AttestError::Rejected(RejectReason::SessionAuth));
        }
        let seq = u64::from_be_bytes(frame[2..10].try_into().expect("8 bytes"));
        let len = u16::from_be_bytes(frame[10..12].try_into().expect("2 bytes")) as usize;
        if frame.len() != FRAME_OVERHEAD + len {
            return Err(malformed("session frame length mismatch"));
        }
        if !self.recv_window.check(seq) {
            return Err(AttestError::Rejected(RejectReason::SessionReplay));
        }
        let payload = &frame[12..12 + len];
        let tag = &frame[12 + len..];
        let expected = Self::frame_mac(self.recv_key(), flags, seq, payload);
        if !ct_eq(&expected[..FRAME_TAG_LEN], tag) {
            return Err(AttestError::Rejected(RejectReason::SessionAuth));
        }
        self.recv_window.commit(seq);
        Ok(payload.to_vec())
    }

    /// Records one verified attestation round. When the rekey cadence is
    /// reached, ratchets the keys and resets sequence state; both ends
    /// call this in lockstep after *their* verification step, so they
    /// ratchet together or fail closed. Returns `true` iff a ratchet
    /// happened.
    pub fn note_round(&mut self) -> bool {
        self.rounds_since_rekey = self.rounds_since_rekey.saturating_add(1);
        if self.rekey_after == 0 || self.rounds_since_rekey < self.rekey_after {
            return false;
        }
        self.keys.ratchet();
        self.send_seq = 0;
        self.recv_window = ReplayWindow::default();
        self.rounds_since_rekey = 0;
        true
    }

    /// Verified rounds since the last ratchet.
    #[must_use]
    pub fn rounds_since_rekey(&self) -> u32 {
        self.rounds_since_rekey
    }
}

// ---------------------------------------------------------------------------
// Handshake driving
// ---------------------------------------------------------------------------

/// Verifier step 1: mints the [`HandshakeInit`] for a new session. The
/// embedded request is signed, fresh, and full-scope (`Segmented` or
/// `Whole`), regardless of the verifier's steady-state scope policy —
/// session establishment always re-attests everything. Returns the
/// parsed request too, for the later [`verifier_confirm`].
///
/// # Errors
///
/// Propagates request-creation failures (currently infallible).
pub fn verifier_begin(
    verifier: &mut Verifier,
    rekey_after: u32,
) -> Result<(HandshakeInit, AttestRequest), AttestError> {
    let request = verifier.make_full_request()?;
    let init = HandshakeInit {
        version: CHANNEL_VERSION,
        verifier_nonce: verifier.session_nonce(),
        rekey_after,
        request: request.to_bytes(),
    };
    Ok((init, request))
}

/// Prover side of the handshake: checks the channel version, then runs
/// the embedded request through the prover's **full** pipeline — the
/// paper's admission/auth/freshness ladder applies unchanged, so a
/// forged or replayed init dies at the same cheap stage it always did
/// and *no key material is derived*. Only after the pipeline accepts
/// does the prover derive session keys over the transcript.
///
/// The prover nonce is derived deterministically from the device key
/// and the exchange (a DRBG-free device stays reproducible); it is
/// unpredictable to anyone without the key and unique per handshake
/// because the response bytes are.
///
/// # Errors
///
/// - [`AttestError::MalformedMessage`] for version/shape problems —
///   checked before the pipeline runs.
/// - Any pipeline rejection ([`AttestError::Rejected`]), exactly as
///   [`Prover::handle_request`] reports it.
pub fn prover_accept(
    prover: &mut Prover,
    init: &HandshakeInit,
) -> Result<(HandshakeAccept, SecureChannel), AttestError> {
    if init.version != CHANNEL_VERSION {
        return Err(malformed("unsupported channel version"));
    }
    let request = AttestRequest::from_bytes(&init.request)?;
    let response = prover.handle_request(&request)?;
    let response_bytes = response.to_bytes();

    let ikm = prover.session_ikm()?;
    let mut nonce_input = Vec::with_capacity(32 + SESSION_NONCE_SIZE + response_bytes.len());
    nonce_input.extend_from_slice(b"proverguard session prover nonce");
    nonce_input.extend_from_slice(&init.verifier_nonce);
    nonce_input.extend_from_slice(&response_bytes);
    let nonce_mac = HmacSha1::mac(&ikm, &nonce_input);
    let mut prover_nonce = [0u8; SESSION_NONCE_SIZE];
    prover_nonce.copy_from_slice(&nonce_mac[..SESSION_NONCE_SIZE]);

    let accept = HandshakeAccept {
        version: CHANNEL_VERSION,
        prover_nonce,
        response: response_bytes,
    };
    let keys = SessionKeys::derive(&ikm, &transcript(init, &accept));
    Ok((
        accept,
        SecureChannel::new(keys, Role::Prover, init.rekey_after),
    ))
}

/// Verifier step 2: verifies the accept's embedded attestation response
/// against `expected_memory` using the normal response check, records
/// the verified round, and only then derives the session keys. A
/// response that fails verification derives nothing and is recorded as
/// a failed round ([`RejectReason::SessionAuth`]).
///
/// # Errors
///
/// - [`AttestError::MalformedMessage`] for version/shape problems.
/// - [`AttestError::Rejected`] with [`RejectReason::SessionAuth`] when
///   the attestation response does not verify.
pub fn verifier_confirm(
    verifier: &mut Verifier,
    init: &HandshakeInit,
    request: &AttestRequest,
    accept: &HandshakeAccept,
    expected_memory: &[u8],
) -> Result<SecureChannel, AttestError> {
    verifier_confirm_view(
        verifier,
        init,
        request,
        accept,
        &crate::imagecache::ExpectedView::uncached(expected_memory),
    )
}

/// [`verifier_confirm`] against an [`crate::imagecache::ExpectedView`]:
/// the fleet-gateway entry point, reusing the interned baseline digest
/// vector for the key-confirming attestation instead of re-sweeping the
/// expected image per handshake.
///
/// # Errors
///
/// As [`verifier_confirm`].
pub fn verifier_confirm_view(
    verifier: &mut Verifier,
    init: &HandshakeInit,
    request: &AttestRequest,
    accept: &HandshakeAccept,
    expected: &crate::imagecache::ExpectedView<'_>,
) -> Result<SecureChannel, AttestError> {
    if accept.version != CHANNEL_VERSION {
        return Err(malformed("unsupported channel version"));
    }
    let response = AttestResponse::from_bytes(&accept.response)?;
    if !verifier.check_response_view(request, &response, expected) {
        verifier.note_failed(request);
        return Err(AttestError::Rejected(RejectReason::SessionAuth));
    }
    verifier.note_verified_view(request, &response, expected);
    let keys = SessionKeys::derive(verifier.session_ikm(), &transcript(init, accept));
    Ok(SecureChannel::new(keys, Role::Verifier, init.rekey_after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::ProverConfig;

    const KEY: [u8; 16] = [0x42; 16];

    fn pair() -> (Prover, Verifier) {
        let config = ProverConfig::recommended();
        let prover = Prover::provision(config.clone(), &KEY, b"channel app").unwrap();
        let verifier = Verifier::new(&config, &KEY).unwrap();
        (prover, verifier)
    }

    fn established(rekey_after: u32) -> (SecureChannel, SecureChannel) {
        let (mut prover, mut verifier) = pair();
        let (init, request) = verifier_begin(&mut verifier, rekey_after).unwrap();
        let (accept, prover_ch) = prover_accept(&mut prover, &init).unwrap();
        let expected = prover.expected_memory().to_vec();
        let verifier_ch =
            verifier_confirm(&mut verifier, &init, &request, &accept, &expected).unwrap();
        (verifier_ch, prover_ch)
    }

    #[test]
    fn handshake_derives_matching_keys() {
        let (v, p) = established(0);
        assert_eq!(v.keys(), p.keys());
        assert_eq!(v.session_id(), p.session_id());
        assert_eq!(v.epoch(), 0);
    }

    /// Asserts `op` performs zero HKDF derivations. Other tests in this
    /// binary legitimately derive concurrently (the global counter is
    /// process-wide), so a polluted measurement is retried — an actual
    /// derive inside `op` fails on every attempt.
    fn assert_no_derives(mut op: impl FnMut()) {
        for _ in 0..8 {
            let before = key_derivations();
            op();
            if key_derivations() == before {
                return;
            }
        }
        panic!("operation derived session key material");
    }

    #[test]
    fn frames_roundtrip_both_directions() {
        let (mut v, mut p) = established(0);
        let to_p = v.seal_next(b"request payload");
        assert_eq!(p.open(&to_p).unwrap(), b"request payload");
        let to_v = p.seal_next(b"response payload");
        assert_eq!(v.open(&to_v).unwrap(), b"response payload");
    }

    #[test]
    fn replayed_frame_rejected_before_mac() {
        let (mut v, mut p) = established(0);
        let frame = v.seal_next(b"one");
        assert!(p.open(&frame).is_ok());
        assert_no_derives(|| {
            let err = p.open(&frame).unwrap_err();
            assert_eq!(err.reject_reason(), Some(RejectReason::SessionReplay));
        });
    }

    #[test]
    fn out_of_order_within_window_accepted_once() {
        let (mut v, mut p) = established(0);
        let f1 = v.seal_next(b"1");
        let f2 = v.seal_next(b"2");
        assert!(p.open(&f2).is_ok());
        assert!(p.open(&f1).is_ok(), "late frame inside the window");
        assert_eq!(
            p.open(&f1).unwrap_err().reject_reason(),
            Some(RejectReason::SessionReplay)
        );
    }

    #[test]
    fn stale_frame_behind_window_rejected() {
        let (mut v, mut p) = established(0);
        let old = v.seal_next(b"old");
        for _ in 0..REPLAY_WINDOW + 1 {
            let f = v.seal_next(b"x");
            assert!(p.open(&f).is_ok());
        }
        assert_eq!(
            p.open(&old).unwrap_err().reject_reason(),
            Some(RejectReason::SessionReplay)
        );
    }

    #[test]
    fn tampered_frame_rejected() {
        let (mut v, mut p) = established(0);
        let frame = v.seal_next(b"payload");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 1;
            let mut fresh = p.clone();
            assert!(fresh.open(&bad).is_err(), "flip at {i} must fail");
        }
        assert!(p.open(&frame).is_ok(), "pristine frame still opens");
    }

    #[test]
    fn wrong_direction_rejected_cheaply() {
        let (mut v, mut p) = established(0);
        let frame = v.seal_next(b"to prover");
        // The verifier must not accept its own direction back (reflection).
        let mut v2 = v.clone();
        assert_eq!(
            v2.open(&frame).unwrap_err().reject_reason(),
            Some(RejectReason::SessionAuth)
        );
        assert!(p.open(&frame).is_ok());
    }

    #[test]
    fn cross_session_frames_rejected_without_derives() {
        // Two *sequential* sessions of the same device: the second
        // handshake's nonces, counter and response all moved on, so its
        // keys are unrelated — captured session-1 traffic dies at the
        // frame MAC without costing the prover a single HKDF derive.
        let (mut prover, mut verifier) = pair();
        let mut channels = Vec::new();
        for _ in 0..2 {
            let (init, request) = verifier_begin(&mut verifier, 0).unwrap();
            let (accept, prover_ch) = prover_accept(&mut prover, &init).unwrap();
            let expected = prover.expected_memory().to_vec();
            let verifier_ch =
                verifier_confirm(&mut verifier, &init, &request, &accept, &expected).unwrap();
            channels.push((verifier_ch, prover_ch));
        }
        let (v2, p2) = channels.pop().unwrap();
        let (mut v1, _p1) = channels.pop().unwrap();
        assert_ne!(v1.keys(), v2.keys(), "sequential sessions share no keys");
        let frame = v1.seal_next(b"session 1 traffic");
        let mut p2 = p2;
        assert_no_derives(|| {
            assert_eq!(
                p2.open(&frame).unwrap_err().reject_reason(),
                Some(RejectReason::SessionAuth)
            );
        });
        let _ = v2;
    }

    #[test]
    fn lockstep_ratchet_keeps_channels_in_sync() {
        let (mut v, mut p) = established(2);
        for round in 1..=5u32 {
            let req = v.seal_next(b"req");
            assert!(p.open(&req).is_ok(), "round {round} request");
            let resp = p.seal_next(b"resp");
            assert!(v.open(&resp).is_ok(), "round {round} response");
            let rv = v.note_round();
            let rp = p.note_round();
            assert_eq!(rv, rp, "ratchet in lockstep");
            assert_eq!(v.keys(), p.keys());
        }
        assert_eq!(v.epoch(), 2, "5 rounds at cadence 2 → 2 ratchets");
        // Session id survives ratchets.
        assert_eq!(v.session_id(), p.session_id());
    }

    #[test]
    fn old_epoch_frames_fail_after_ratchet() {
        let (mut v, mut p) = established(1);
        let old = v.seal_next(b"epoch 0");
        assert!(p.open(&old).is_ok());
        v.note_round();
        p.note_round();
        assert_eq!(v.epoch(), 1);
        // A captured epoch-0 frame re-injected after the ratchet: the
        // sequence number is fresh again (windows reset), so it reaches
        // the MAC — and dies there, because the keys moved on.
        assert_eq!(
            p.open(&old).unwrap_err().reject_reason(),
            Some(RejectReason::SessionAuth)
        );
    }

    #[test]
    fn forged_init_derives_no_keys() {
        let (mut prover, mut verifier) = pair();
        let (mut init, _request) = verifier_begin(&mut verifier, 0).unwrap();
        // Strip the request authenticator: the pipeline must reject at
        // BadAuth and no key derivation may happen.
        let mut request = AttestRequest::from_bytes(&init.request).unwrap();
        request.auth = vec![0; request.auth.len()];
        init.request = request.to_bytes();
        assert_no_derives(|| {
            let err = prover_accept(&mut prover, &init).unwrap_err();
            assert_eq!(err.reject_reason(), Some(RejectReason::BadAuth));
        });
    }

    #[test]
    fn unknown_version_rejected_before_any_work() {
        let (mut prover, mut verifier) = pair();
        let (init, _request) = verifier_begin(&mut verifier, 0).unwrap();
        let mut bytes = init.encode();
        bytes[0] = 99;
        assert!(HandshakeInit::decode(&bytes).is_err());
        let mut wrong = init;
        wrong.version = 2;
        assert_no_derives(|| {
            let cycles_before = prover.stats().attestation_cycles;
            assert!(prover_accept(&mut prover, &wrong).is_err());
            assert_eq!(
                prover.stats().attestation_cycles,
                cycles_before,
                "version reject costs no pipeline work"
            );
        });
    }

    #[test]
    fn handshake_codecs_reject_truncation_and_trailing() {
        let (_p, mut verifier) = pair();
        let (init, _req) = verifier_begin(&mut verifier, 3).unwrap();
        let bytes = init.encode();
        assert_eq!(HandshakeInit::decode(&bytes).unwrap(), init);
        for cut in 0..bytes.len() {
            assert!(HandshakeInit::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut long = bytes;
        long.push(0);
        assert!(HandshakeInit::decode(&long).is_err());

        let accept = HandshakeAccept {
            version: CHANNEL_VERSION,
            prover_nonce: [7; SESSION_NONCE_SIZE],
            response: vec![1, 2, 3],
        };
        let bytes = accept.encode();
        assert_eq!(HandshakeAccept::decode(&bytes).unwrap(), accept);
        for cut in 0..bytes.len() {
            assert!(HandshakeAccept::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn replay_window_model() {
        let mut w = ReplayWindow::default();
        assert!(!w.check(0));
        assert!(w.check(1));
        w.commit(1);
        assert!(!w.check(1));
        w.commit(100);
        assert!(!w.check(100));
        assert!(w.check(99));
        assert!(w.check(100 - (REPLAY_WINDOW - 1)));
        assert!(!w.check(100 - REPLAY_WINDOW));
        w.commit(99);
        assert!(!w.check(99));
    }
}
