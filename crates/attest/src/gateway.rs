//! The verifier **gateway**: a concurrent attestation server for a fleet
//! of socketed provers.
//!
//! Everything below this module drives one verifier against one prover
//! through in-process calls. The gateway is the production shape: an
//! accept loop pulls connections off a [`proverguard_transport::Acceptor`]
//! (TCP, or the in-memory loopback hub for CI), pushes them through a
//! **bounded** work queue, and a fixed pool of worker threads runs one
//! [`SessionDriver`] attestation per connection against the per-device
//! [`Verifier`] state held in a [`DeviceDirectory`].
//!
//! Backpressure is explicit and cheap, mirroring the paper's prover-side
//! philosophy at the fleet level: when the queue is full the accept loop
//! answers with a one-frame [`GatewayMsg::Busy`] and drops the connection
//! — it never queues unboundedly and never spends a worker on load it
//! cannot serve. Honest provers treat `Busy` as a retry-with-backoff
//! signal (see [`ProverAgent::attest_with_retry`]); floods just get a
//! 1-frame brush-off.
//!
//! Every worker keeps thread-local [`proverguard_telemetry`] metrics and
//! traces; [`GatewayHandle::shutdown`] joins the threads and folds their
//! registries into one [`GatewayReport`] via `Registry::merge`, so byte
//! counters, queue-depth gauges and per-session latency histograms
//! survive the thread boundary.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use proverguard_telemetry::metrics::{self, Registry};
use proverguard_telemetry::trace;
use proverguard_transport::{Acceptor, Transport, TransportError};

use crate::error::{AttestError, RejectReason};
use crate::fleet::{FleetController, FleetPolicy};
use crate::message::{AttestResponse, FreshnessField};
use crate::prover::Prover;
use crate::session::{AttemptOutcome, RetryPolicy, SessionDriver, SessionLink};
use crate::verifier::Verifier;

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_ATTREQ: u8 = 2;
const TAG_ATTRESP: u8 = 3;
const TAG_REJECT: u8 = 4;
const TAG_BUSY: u8 = 5;
const TAG_BYE: u8 = 6;
const TAG_COMMAND: u8 = 7;
const TAG_RECEIPT: u8 = 8;

/// One gateway-protocol message, carried as the payload of one transport
/// frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayMsg {
    /// Prover → gateway, first message: which device is calling.
    Hello {
        /// Index of the device in the gateway's [`DeviceDirectory`].
        device_id: u64,
    },
    /// Gateway → prover: a serialized [`crate::message::AttestRequest`].
    AttReq(Vec<u8>),
    /// Prover → gateway: a serialized [`AttestResponse`].
    AttResp(Vec<u8>),
    /// Prover → gateway: the prover's defences rejected the request.
    Reject(RejectReason),
    /// Gateway → prover: load shed at admission — try again later.
    Busy,
    /// Gateway → prover: session over.
    Bye {
        /// Whether the attestation verified.
        verified: bool,
    },
    /// Verifier → prover: a serialized
    /// [`crate::services::CommandRequest`] (gated OTA/erase commands over
    /// the same session protocol).
    Command(Vec<u8>),
    /// Prover → verifier: a serialized
    /// [`crate::services::CommandReceipt`].
    Receipt(Vec<u8>),
}

fn reason_code(reason: RejectReason) -> u8 {
    match reason {
        RejectReason::BadAuth => 1,
        RejectReason::NonceReused => 2,
        RejectReason::StaleCounter => 3,
        RejectReason::TimestampNotMonotonic => 4,
        RejectReason::TimestampOutOfWindow => 5,
        RejectReason::FreshnessKindMismatch => 6,
        RejectReason::Malformed => 7,
        RejectReason::Throttled => 8,
        RejectReason::DegradedMode => 9,
        RejectReason::ScopeUnsupported => 10,
    }
}

fn reason_from_code(code: u8) -> Option<RejectReason> {
    Some(match code {
        1 => RejectReason::BadAuth,
        2 => RejectReason::NonceReused,
        3 => RejectReason::StaleCounter,
        4 => RejectReason::TimestampNotMonotonic,
        5 => RejectReason::TimestampOutOfWindow,
        6 => RejectReason::FreshnessKindMismatch,
        7 => RejectReason::Malformed,
        8 => RejectReason::Throttled,
        9 => RejectReason::DegradedMode,
        10 => RejectReason::ScopeUnsupported,
        _ => return None,
    })
}

impl GatewayMsg {
    /// Serializes the message (tag byte + body).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            GatewayMsg::Hello { device_id } => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_HELLO);
                out.extend_from_slice(&device_id.to_be_bytes());
                out
            }
            GatewayMsg::AttReq(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_ATTREQ);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::AttResp(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_ATTRESP);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::Reject(reason) => vec![TAG_REJECT, reason_code(*reason)],
            GatewayMsg::Busy => vec![TAG_BUSY],
            GatewayMsg::Bye { verified } => vec![TAG_BYE, u8::from(*verified)],
            GatewayMsg::Command(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_COMMAND);
                out.extend_from_slice(bytes);
                out
            }
            GatewayMsg::Receipt(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_RECEIPT);
                out.extend_from_slice(bytes);
                out
            }
        }
    }

    /// Parses one message. Unknown tags, truncated bodies and unknown
    /// reject codes are all [`AttestError::MalformedMessage`] — never a
    /// panic.
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] as above.
    pub fn decode(bytes: &[u8]) -> Result<Self, AttestError> {
        let malformed = |reason: &str| AttestError::MalformedMessage {
            reason: reason.to_string(),
        };
        let (&tag, body) = bytes
            .split_first()
            .ok_or_else(|| malformed("empty message"))?;
        match tag {
            TAG_HELLO => {
                let raw: [u8; 8] = body
                    .try_into()
                    .map_err(|_| malformed("hello body must be 8 bytes"))?;
                Ok(GatewayMsg::Hello {
                    device_id: u64::from_be_bytes(raw),
                })
            }
            TAG_ATTREQ => Ok(GatewayMsg::AttReq(body.to_vec())),
            TAG_ATTRESP => Ok(GatewayMsg::AttResp(body.to_vec())),
            TAG_REJECT => {
                let [code] = body else {
                    return Err(malformed("reject body must be 1 byte"));
                };
                let reason =
                    reason_from_code(*code).ok_or_else(|| malformed("unknown reject code"))?;
                Ok(GatewayMsg::Reject(reason))
            }
            TAG_BUSY => {
                if body.is_empty() {
                    Ok(GatewayMsg::Busy)
                } else {
                    Err(malformed("busy carries no body"))
                }
            }
            TAG_BYE => {
                let [flag] = body else {
                    return Err(malformed("bye body must be 1 byte"));
                };
                Ok(GatewayMsg::Bye {
                    verified: *flag == 1,
                })
            }
            TAG_COMMAND => Ok(GatewayMsg::Command(body.to_vec())),
            TAG_RECEIPT => Ok(GatewayMsg::Receipt(body.to_vec())),
            _ => Err(malformed("unknown message tag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Device directory
// ---------------------------------------------------------------------------

/// Per-device verifier state the gateway serves sessions from.
#[derive(Debug)]
pub struct DeviceEntry {
    verifier: Mutex<Verifier>,
    /// Behind its own mutex so a running gateway can be re-targeted at a
    /// new expected image mid-campaign (per-wave OTA targets).
    expected_memory: Mutex<Vec<u8>>,
    service_floor_ms: u64,
}

/// The fleet roster: one [`Verifier`] (plus expected memory image) per
/// device, indexed by the `device_id` provers present in their `Hello`.
///
/// Entries are added before the gateway starts; at runtime the directory
/// is shared read-only and each entry guards its verifier with its own
/// mutex, so sessions for *different* devices never contend.
#[derive(Debug, Default)]
pub struct DeviceDirectory {
    entries: Vec<DeviceEntry>,
}

impl DeviceDirectory {
    /// An empty directory.
    #[must_use]
    pub fn new() -> Self {
        DeviceDirectory::default()
    }

    /// Registers a device; returns its `device_id`.
    pub fn register(&mut self, verifier: Verifier, expected_memory: Vec<u8>) -> u64 {
        self.register_with_floor(verifier, expected_memory, 0)
    }

    /// Registers a device whose sessions take at least `service_floor_ms`
    /// of wall time — a worker-occupancy knob used by backpressure tests
    /// and the bench's per-worker probe phase.
    pub fn register_with_floor(
        &mut self,
        verifier: Verifier,
        expected_memory: Vec<u8>,
        service_floor_ms: u64,
    ) -> u64 {
        let id = self.entries.len() as u64;
        self.entries.push(DeviceEntry {
            verifier: Mutex::new(verifier),
            expected_memory: Mutex::new(expected_memory),
            service_floor_ms,
        });
        id
    }

    /// Replaces the expected memory image of `device_id` — what a
    /// campaign does when a device's wave moves it to a new firmware
    /// target (or back to the old one on rollback). Takes `&self`: the
    /// directory is shared read-only with running workers, and each
    /// entry's image has its own lock.
    ///
    /// Returns `false` for an unknown device.
    pub fn set_expected_memory(&self, device_id: u64, expected_memory: Vec<u8>) -> bool {
        match self.get(device_id) {
            Some(entry) => {
                *entry
                    .expected_memory
                    .lock()
                    .expect("expected-memory lock poisoned") = expected_memory;
                true
            }
            None => false,
        }
    }

    /// Number of registered devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no devices are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn get(&self, device_id: u64) -> Option<&DeviceEntry> {
        usize::try_from(device_id)
            .ok()
            .and_then(|i| self.entries.get(i))
    }
}

impl DeviceEntry {
    /// The memory image the device should present for a request carrying
    /// `field`. The prover commits counter/timestamp freshness into the
    /// protected `counter_R` RAM word *before* MACing (reject-then-MAC
    /// ordering, §4.2), so the attested image embeds the freshness value
    /// the verifier just sent — patch it into the baseline.
    fn expected_for(&self, field: &FreshnessField) -> Vec<u8> {
        let mut image = self
            .expected_memory
            .lock()
            .expect("expected-memory lock poisoned")
            .clone();
        crate::freshness::patch_expected_image(&mut image, field);
        image
    }
}

// ---------------------------------------------------------------------------
// Configuration & stats
// ---------------------------------------------------------------------------

/// Gateway tuning.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Worker threads serving sessions.
    pub workers: usize,
    /// Bounded work-queue depth; a full queue sheds with `Busy`.
    pub queue_depth: usize,
    /// Per-connection read deadline (handshake and responses).
    pub read_timeout_ms: u64,
    /// Per-connection write deadline (where the OS supports one).
    pub write_timeout_ms: u64,
    /// Retry/backoff policy per session. `jitter_seed` is XORed with the
    /// device id so concurrent sessions decorrelate.
    pub retry: RetryPolicy,
    /// Hard cap on any single real backoff sleep a worker performs, so a
    /// saturated schedule cannot park a worker.
    pub backoff_cap_ms: u64,
    /// Accept-loop poll granularity (shutdown latency bound).
    pub accept_poll_ms: u64,
    /// Per-worker trace-ring capacity.
    pub trace_capacity: usize,
    /// Fleet-health tuning for the embedded [`FleetController`].
    pub fleet: FleetPolicy,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            queue_depth: 16,
            read_timeout_ms: 1_000,
            write_timeout_ms: 1_000,
            retry: RetryPolicy {
                timeout_ms: 500,
                max_retries: 2,
                backoff_base_ms: 5,
                backoff_factor: 2,
                jitter_per_mille: 500,
                jitter_seed: 0x6761_7465, // "gate"
            },
            backoff_cap_ms: 50,
            accept_poll_ms: 10,
            trace_capacity: 4_096,
            fleet: FleetPolicy::default(),
        }
    }
}

/// Live gateway counters (atomics; shared between accept loop, workers
/// and observers).
#[derive(Debug)]
pub struct GatewayStats {
    accepted: AtomicU64,
    busy_rejected: AtomicU64,
    enqueued: AtomicU64,
    handshake_failed: AtomicU64,
    sessions_ok: AtomicU64,
    sessions_failed: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    per_worker_sessions: Vec<AtomicU64>,
}

impl GatewayStats {
    fn new(workers: usize) -> Self {
        GatewayStats {
            accepted: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            handshake_failed: AtomicU64::new(0),
            sessions_ok: AtomicU64::new(0),
            sessions_failed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            per_worker_sessions: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> GatewaySnapshot {
        GatewaySnapshot {
            accepted: self.accepted.load(Ordering::SeqCst),
            busy_rejected: self.busy_rejected.load(Ordering::SeqCst),
            enqueued: self.enqueued.load(Ordering::SeqCst),
            handshake_failed: self.handshake_failed.load(Ordering::SeqCst),
            sessions_ok: self.sessions_ok.load(Ordering::SeqCst),
            sessions_failed: self.sessions_failed.load(Ordering::SeqCst),
            queue_peak: self.queue_peak.load(Ordering::SeqCst),
            per_worker_sessions: self
                .per_worker_sessions
                .iter()
                .map(|c| c.load(Ordering::SeqCst))
                .collect(),
        }
    }
}

/// A point-in-time copy of [`GatewayStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewaySnapshot {
    /// Connections pulled off the acceptor.
    pub accepted: u64,
    /// Connections shed with a `Busy` frame (queue full).
    pub busy_rejected: u64,
    /// Connections that made it onto the work queue.
    pub enqueued: u64,
    /// Enqueued connections that died before/during `Hello` (timeout,
    /// garbage, unknown device).
    pub handshake_failed: u64,
    /// Sessions whose attestation verified.
    pub sessions_ok: u64,
    /// Sessions driven to completion without a verified response.
    pub sessions_failed: u64,
    /// Highest simultaneous queue depth observed.
    pub queue_peak: u64,
    /// Sessions served per worker (ok + failed + handshake failures).
    pub per_worker_sessions: Vec<u64>,
}

impl GatewaySnapshot {
    /// The conservation law every quiesced gateway must satisfy: each
    /// accepted connection was either shed `Busy` or enqueued, and each
    /// enqueued connection ended as exactly one of handshake-failed,
    /// session-ok or session-failed. Only meaningful once no sessions are
    /// in flight (after [`GatewayHandle::shutdown`]).
    #[must_use]
    pub fn partition_holds(&self) -> bool {
        self.accepted == self.busy_rejected + self.enqueued
            && self.enqueued == self.handshake_failed + self.sessions_ok + self.sessions_failed
    }

    /// Total sessions driven to completion (verified or not).
    #[must_use]
    pub fn sessions_total(&self) -> u64 {
        self.sessions_ok + self.sessions_failed
    }
}

// ---------------------------------------------------------------------------
// Gateway runtime
// ---------------------------------------------------------------------------

struct GatewayShared {
    directory: DeviceDirectory,
    fleet: Mutex<FleetController>,
    stats: GatewayStats,
    config: GatewayConfig,
    started: Instant,
}

impl GatewayShared {
    fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

struct QueueItem {
    conn: Box<dyn Transport>,
    enqueued_at: Instant,
}

/// What one gateway thread hands back when it exits.
struct ThreadExit {
    registry: Registry,
    spans: u64,
    dropped_spans: u64,
}

/// The merged post-shutdown picture of a gateway run.
#[derive(Debug)]
pub struct GatewayReport {
    /// All thread registries folded together (`Registry::merge`): byte
    /// counters, queue gauges, session latency histograms.
    pub metrics: Registry,
    /// Trace spans recorded across all workers.
    pub spans: u64,
    /// Trace spans lost to ring overflow across all workers (0 when the
    /// configured `trace_capacity` sufficed).
    pub dropped_spans: u64,
    /// Final counter snapshot.
    pub stats: GatewaySnapshot,
}

/// A running gateway: accept loop + worker pool.
pub struct GatewayHandle {
    shared: Arc<GatewayShared>,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<ThreadExit>,
    workers: Vec<JoinHandle<ThreadExit>>,
}

/// Namespace for [`Gateway::start`].
#[derive(Debug)]
pub struct Gateway;

impl Gateway {
    /// Starts the accept loop and worker pool over `acceptor`, serving
    /// the devices in `directory`. Runs until
    /// [`GatewayHandle::shutdown`].
    #[must_use]
    pub fn start(
        acceptor: Box<dyn Acceptor>,
        directory: DeviceDirectory,
        config: GatewayConfig,
    ) -> GatewayHandle {
        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let fleet = FleetController::new(directory.len(), config.fleet);
        let shared = Arc::new(GatewayShared {
            directory,
            fleet: Mutex::new(fleet),
            stats: GatewayStats::new(workers),
            config,
            started: Instant::now(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (work_tx, work_rx) = sync_channel::<QueueItem>(queue_depth);
        let work_rx = Arc::new(Mutex::new(work_rx));

        let worker_handles = (0..workers)
            .map(|w| {
                let rx = Arc::clone(&work_rx);
                let ctx = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gw-worker-{w}"))
                    .spawn(move || worker_main(w, &rx, &ctx))
                    .expect("spawn gateway worker")
            })
            .collect();

        let accept_thread = {
            let ctx = Arc::clone(&shared);
            let flag = Arc::clone(&shutdown);
            thread::Builder::new()
                .name("gw-accept".to_string())
                .spawn(move || accept_main(acceptor, &work_tx, &ctx, &flag))
                .expect("spawn gateway accept loop")
        };

        GatewayHandle {
            shared,
            shutdown,
            accept_thread,
            workers: worker_handles,
        }
    }
}

impl GatewayHandle {
    /// Live counters.
    #[must_use]
    pub fn stats(&self) -> GatewaySnapshot {
        self.shared.stats.snapshot()
    }

    /// Read access to the per-device health ledger.
    pub fn with_fleet<R>(&self, f: impl FnOnce(&FleetController) -> R) -> R {
        f(&self.shared.fleet.lock().expect("fleet lock poisoned"))
    }

    /// Graceful shutdown: stops accepting, lets in-flight sessions and
    /// the queued backlog finish, joins every thread and merges their
    /// telemetry.
    #[must_use]
    pub fn shutdown(self) -> GatewayReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // Joining the accept thread drops the queue sender; workers drain
        // the backlog, then their `recv` fails and they exit.
        let accept_exit = self
            .accept_thread
            .join()
            .expect("gateway accept thread panicked");
        let mut metrics = accept_exit.registry;
        let mut spans = accept_exit.spans;
        let mut dropped_spans = accept_exit.dropped_spans;
        for handle in self.workers {
            let exit = handle.join().expect("gateway worker panicked");
            metrics.merge(&exit.registry);
            spans += exit.spans;
            dropped_spans += exit.dropped_spans;
        }
        GatewayReport {
            metrics,
            spans,
            dropped_spans,
            stats: self.shared.stats.snapshot(),
        }
    }
}

fn accept_main(
    mut acceptor: Box<dyn Acceptor>,
    work_tx: &SyncSender<QueueItem>,
    ctx: &GatewayShared,
    shutdown: &AtomicBool,
) -> ThreadExit {
    metrics::reset();
    let poll = Duration::from_millis(ctx.config.accept_poll_ms.max(1));
    while !shutdown.load(Ordering::SeqCst) {
        let conn = match acceptor.poll_accept(poll) {
            Ok(Some(conn)) => conn,
            Ok(None) => continue,
            Err(_) => break,
        };
        ctx.stats.accepted.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.accepted", 1);
        let item = QueueItem {
            conn,
            enqueued_at: Instant::now(),
        };
        // Count the slot *before* the send so a fast worker's decrement
        // can never observe (and underflow past) a not-yet-incremented
        // depth.
        let depth = ctx.stats.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        match work_tx.try_send(item) {
            Ok(()) => {
                ctx.stats.enqueued.fetch_add(1, Ordering::SeqCst);
                ctx.stats.queue_peak.fetch_max(depth, Ordering::SeqCst);
                metrics::gauge_set("gateway.queue_depth", depth);
            }
            Err(TrySendError::Full(item)) => {
                ctx.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
                ctx.stats.busy_rejected.fetch_add(1, Ordering::SeqCst);
                metrics::counter_add("gateway.busy", 1);
                let mut conn = item.conn;
                let _ = conn.set_deadline(Some(Duration::from_millis(ctx.config.write_timeout_ms)));
                let _ = conn.send(&GatewayMsg::Busy.encode());
            }
            Err(TrySendError::Disconnected(_)) => {
                ctx.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
                break;
            }
        }
    }
    ThreadExit {
        registry: metrics::snapshot(),
        spans: 0,
        dropped_spans: 0,
    }
}

fn worker_main(w: usize, rx: &Mutex<Receiver<QueueItem>>, ctx: &GatewayShared) -> ThreadExit {
    metrics::reset();
    trace::reset();
    trace::set_capacity(ctx.config.trace_capacity.max(16));
    trace::enable();
    let mut spans = 0u64;
    loop {
        // Holding the lock across the blocking `recv` serializes only the
        // *dequeue*, never the session work; idle workers park here.
        let item = match rx.lock().expect("gateway queue lock poisoned").recv() {
            Ok(item) => item,
            Err(_) => break,
        };
        let depth = ctx
            .stats
            .queue_depth
            .fetch_sub(1, Ordering::SeqCst)
            .saturating_sub(1);
        metrics::gauge_set("gateway.queue_depth", depth);
        serve_connection(w, item, ctx);
        // Keep the ring shallow so long runs never overflow it; `drain`
        // (unlike `clear`) preserves the dropped-span count.
        spans += trace::drain()
            .iter()
            .filter(|e| matches!(e, proverguard_telemetry::trace::TraceEvent::Span { .. }))
            .count() as u64;
    }
    ThreadExit {
        registry: metrics::snapshot(),
        spans,
        dropped_spans: trace::dropped(),
    }
}

fn serve_connection(w: usize, item: QueueItem, ctx: &GatewayShared) {
    let mut conn = item.conn;
    metrics::histogram_record(
        "gateway.queue_wait_us",
        u64::try_from(item.enqueued_at.elapsed().as_micros()).unwrap_or(u64::MAX),
    );
    let session_start = Instant::now();
    trace::set_now(ctx.elapsed_us());
    let span = trace::span("gateway.session");

    ctx.stats.per_worker_sessions[w].fetch_add(1, Ordering::SeqCst);
    let read_timeout = Duration::from_millis(ctx.config.read_timeout_ms);
    let write_timeout = Duration::from_millis(ctx.config.write_timeout_ms);

    let fail_handshake = |label: &'static str| {
        ctx.stats.handshake_failed.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.handshake_failed", 1);
        metrics::counter_add(label, 1);
    };

    let _ = conn.set_deadline(Some(read_timeout));
    let hello = match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
        Ok(Ok(GatewayMsg::Hello { device_id })) => device_id,
        Ok(_) => {
            fail_handshake("gateway.handshake.garbage");
            finish_span(ctx, span);
            return;
        }
        Err(_) => {
            fail_handshake("gateway.handshake.link");
            finish_span(ctx, span);
            return;
        }
    };
    let Some(entry) = ctx.directory.get(hello) else {
        fail_handshake("gateway.handshake.unknown_device");
        let _ = conn.set_deadline(Some(write_timeout));
        let _ = conn.send(&GatewayMsg::Bye { verified: false }.encode());
        finish_span(ctx, span);
        return;
    };

    if entry.service_floor_ms > 0 {
        thread::sleep(Duration::from_millis(entry.service_floor_ms));
    }

    let policy = RetryPolicy {
        jitter_seed: ctx.config.retry.jitter_seed ^ hello,
        ..ctx.config.retry
    };
    let mut link = GatewayLink {
        conn: conn.as_mut(),
        entry,
        ctx,
        dead: false,
    };
    let report = SessionDriver::new(policy).run(&mut link);
    let verified = report.succeeded();

    let _ = conn.set_deadline(Some(write_timeout));
    let _ = conn.send(&GatewayMsg::Bye { verified }.encode());

    let now_ms = ctx.elapsed_ms();
    ctx.fleet
        .lock()
        .expect("fleet lock poisoned")
        .record_outcome(hello as usize, verified, now_ms);
    if verified {
        ctx.stats.sessions_ok.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.sessions_ok", 1);
    } else {
        ctx.stats.sessions_failed.fetch_add(1, Ordering::SeqCst);
        metrics::counter_add("gateway.sessions_failed", 1);
    }
    metrics::histogram_record(
        "gateway.session_us",
        u64::try_from(session_start.elapsed().as_micros()).unwrap_or(u64::MAX),
    );
    finish_span(ctx, span);
}

fn finish_span(ctx: &GatewayShared, span: proverguard_telemetry::trace::SpanGuard) {
    trace::set_now(ctx.elapsed_us());
    drop(span);
}

/// [`SessionLink`] over one accepted connection: real frames out, real
/// deadlines, real sleeps for backoff.
struct GatewayLink<'a> {
    conn: &'a mut dyn Transport,
    entry: &'a DeviceEntry,
    ctx: &'a GatewayShared,
    /// Set once the link is unrecoverable (peer gone, stream poisoned);
    /// later attempts fail instantly instead of burning timeouts.
    dead: bool,
}

impl SessionLink for GatewayLink<'_> {
    fn attempt(&mut self, timeout_ms: u64) -> AttemptOutcome {
        if self.dead {
            return AttemptOutcome::RequestLost;
        }
        let request = {
            let mut verifier = self.entry.verifier.lock().expect("verifier lock poisoned");
            // Keep the verifier clock in step with gateway wall time so
            // timestamp-freshness fleets work over real links.
            let now = self.ctx.elapsed_ms().max(verifier.now_ms());
            verifier.set_time_ms(now);
            match verifier.make_request() {
                Ok(r) => r,
                Err(e) => return AttemptOutcome::Error(e),
            }
        };
        let deadline = Duration::from_millis(timeout_ms.max(1));
        if self.conn.set_deadline(Some(deadline)).is_err() {
            self.dead = true;
            return AttemptOutcome::RequestLost;
        }
        if let Err(e) = self
            .conn
            .send(&GatewayMsg::AttReq(request.to_bytes()).encode())
        {
            self.dead = !e.is_transient();
            return AttemptOutcome::RequestLost;
        }
        match self.conn.recv() {
            Ok(bytes) => match GatewayMsg::decode(&bytes) {
                Ok(GatewayMsg::AttResp(raw)) => {
                    let Ok(response) = AttestResponse::from_bytes(&raw) else {
                        return AttemptOutcome::BadResponse;
                    };
                    let expected = self.entry.expected_for(&request.freshness);
                    let mut verifier = self.entry.verifier.lock().expect("verifier lock poisoned");
                    if verifier.check_response(&request, &response, &expected) {
                        verifier.note_verified(&request, &response, &expected);
                        AttemptOutcome::Success
                    } else {
                        verifier.note_failed(&request);
                        AttemptOutcome::BadResponse
                    }
                }
                Ok(GatewayMsg::Reject(reason)) => {
                    let mut verifier = self.entry.verifier.lock().expect("verifier lock poisoned");
                    verifier.note_failed(&request);
                    AttemptOutcome::Rejected(reason)
                }
                _ => AttemptOutcome::BadResponse,
            },
            Err(TransportError::Timeout) => AttemptOutcome::ResponseLost,
            Err(TransportError::Malformed { .. } | TransportError::TooLarge { .. }) => {
                // Stream poisoned by garbage — no point retrying.
                self.dead = true;
                AttemptOutcome::BadResponse
            }
            Err(_) => {
                self.dead = true;
                AttemptOutcome::ResponseLost
            }
        }
    }

    fn wait_ms(&mut self, ms: u64) {
        if !self.dead {
            thread::sleep(Duration::from_millis(
                ms.min(self.ctx.config.backoff_cap_ms),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Prover agent (client side)
// ---------------------------------------------------------------------------

/// How one prover-side gateway session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentOutcome {
    /// The gateway drove the session to completion and said goodbye.
    Served {
        /// Attestation requests the prover processed (incl. rejected).
        requests_handled: u32,
        /// What the gateway's `Bye` said about the final attempt.
        verified: bool,
    },
    /// The gateway shed the connection with `Busy`.
    Busy,
    /// The link died (timeout, hangup, I/O error).
    ConnectionLost,
    /// The gateway spoke something that is not the protocol.
    ProtocolError,
}

impl AgentOutcome {
    /// `true` iff the session completed with a verified attestation.
    #[must_use]
    pub fn is_verified(&self) -> bool {
        matches!(self, AgentOutcome::Served { verified: true, .. })
    }
}

/// The prover side of the gateway protocol: dials in, answers `AttReq`
/// frames with the device's real [`Prover`] pipeline (so every paper
/// defence — auth, freshness, admission — applies on the wire), and obeys
/// `Busy`.
#[derive(Debug)]
pub struct ProverAgent {
    prover: Prover,
    device_id: u64,
}

impl ProverAgent {
    /// An agent for `prover`, registered as `device_id` at the gateway.
    #[must_use]
    pub fn new(prover: Prover, device_id: u64) -> Self {
        ProverAgent { prover, device_id }
    }

    /// The wrapped prover.
    #[must_use]
    pub fn prover(&self) -> &Prover {
        &self.prover
    }

    /// Mutable access (e.g. to install an admission policy).
    pub fn prover_mut(&mut self) -> &mut Prover {
        &mut self.prover
    }

    /// Runs one session over an established connection.
    pub fn run_session(&mut self, conn: &mut dyn Transport, io_timeout: Duration) -> AgentOutcome {
        if conn.set_deadline(Some(io_timeout)).is_err() {
            return AgentOutcome::ConnectionLost;
        }
        let hello = GatewayMsg::Hello {
            device_id: self.device_id,
        };
        if conn.send(&hello.encode()).is_err() {
            // The gateway may have shed this connection before reading a
            // byte — a Busy (or Bye) frame can already be queued on our
            // side even though the peer is gone.
            return drain_outcome(conn, 0);
        }
        let mut requests_handled = 0u32;
        let session_start = Instant::now();
        let mut last_seen = Duration::ZERO;
        loop {
            let bytes = match conn.recv() {
                Ok(bytes) => bytes,
                Err(_) => return AgentOutcome::ConnectionLost,
            };
            // Real wall time passed while we waited; let it pass for the
            // prover's simulated clock too (freshness windows, admission
            // refill).
            let elapsed = session_start.elapsed();
            let delta_ms = (elapsed - last_seen).as_millis() as u64;
            last_seen = elapsed;
            if delta_ms > 0 {
                let _ = self.prover.advance_time_ms(delta_ms);
            }
            match GatewayMsg::decode(&bytes) {
                Ok(GatewayMsg::AttReq(raw)) => {
                    let reply = match self.prover.handle_wire_request(&raw) {
                        Ok(resp) => GatewayMsg::AttResp(resp),
                        Err(AttestError::Rejected(reason)) => GatewayMsg::Reject(reason),
                        Err(_) => GatewayMsg::Reject(RejectReason::Malformed),
                    };
                    requests_handled += 1;
                    if conn.send(&reply.encode()).is_err() {
                        // The gateway may have timed this attempt out and
                        // hung up with a queued Bye.
                        return drain_outcome(conn, requests_handled);
                    }
                }
                Ok(GatewayMsg::Command(raw)) => {
                    let reply = match crate::services::CommandRequest::from_bytes(&raw)
                        .and_then(|request| self.prover.handle_command(&request))
                    {
                        Ok(receipt) => GatewayMsg::Receipt(receipt.to_bytes()),
                        Err(AttestError::Rejected(reason)) => GatewayMsg::Reject(reason),
                        Err(AttestError::MalformedMessage { .. }) => {
                            GatewayMsg::Reject(RejectReason::Malformed)
                        }
                        // A torn flash (injected power loss) kills the
                        // device, not the protocol: the connection just
                        // drops, like the real board browning out.
                        Err(AttestError::PowerLoss) => return AgentOutcome::ConnectionLost,
                        Err(_) => GatewayMsg::Reject(RejectReason::Malformed),
                    };
                    requests_handled += 1;
                    if conn.send(&reply.encode()).is_err() {
                        return drain_outcome(conn, requests_handled);
                    }
                }
                Ok(GatewayMsg::Busy) => return AgentOutcome::Busy,
                Ok(GatewayMsg::Bye { verified }) => {
                    return AgentOutcome::Served {
                        requests_handled,
                        verified,
                    }
                }
                _ => return AgentOutcome::ProtocolError,
            }
        }
    }

    /// Dials, runs a session, and retries `Busy` shed with the jittered
    /// backoff of `policy` (each sleep capped at `busy_cap_ms`). Gives up
    /// after `policy.max_retries` re-dials.
    pub fn attest_with_retry<F>(
        &mut self,
        mut connect: F,
        policy: &RetryPolicy,
        io_timeout: Duration,
        busy_cap_ms: u64,
    ) -> AgentOutcome
    where
        F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
    {
        let total = policy.max_retries + 1;
        for attempt in 1..=total {
            let mut conn = match connect() {
                Ok(conn) => conn,
                Err(_) => return AgentOutcome::ConnectionLost,
            };
            match self.run_session(conn.as_mut(), io_timeout) {
                AgentOutcome::Busy if attempt < total => {
                    let nap = policy.backoff_ms(attempt).min(busy_cap_ms);
                    thread::sleep(Duration::from_millis(nap));
                    let _ = self.prover.advance_time_ms(nap);
                }
                outcome => return outcome,
            }
        }
        AgentOutcome::Busy
    }
}

/// Reads out whatever verdict frames the gateway left behind after a
/// failed send (the peer hangs up right after writing `Busy`/`Bye`, so
/// the frames outlive the connection).
fn drain_outcome(conn: &mut dyn Transport, requests_handled: u32) -> AgentOutcome {
    loop {
        match conn.recv().map(|bytes| GatewayMsg::decode(&bytes)) {
            Ok(Ok(GatewayMsg::Busy)) => return AgentOutcome::Busy,
            Ok(Ok(GatewayMsg::Bye { verified })) => {
                return AgentOutcome::Served {
                    requests_handled,
                    verified,
                }
            }
            Ok(Ok(_)) => continue, // stale in-session frame
            Ok(Err(_)) => return AgentOutcome::ProtocolError,
            Err(_) => return AgentOutcome::ConnectionLost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::ProverConfig;
    use proverguard_transport::frame::DEFAULT_MAX_FRAME;
    use proverguard_transport::mem::LoopbackHub;

    const KEY: [u8; 16] = [0x42; 16];

    fn provisioned(config: &ProverConfig) -> (Prover, Verifier) {
        let prover = Prover::provision(config.clone(), &KEY, b"app v1").unwrap();
        let verifier = Verifier::new(config, &KEY).unwrap();
        (prover, verifier)
    }

    #[test]
    fn wire_msgs_roundtrip() {
        let msgs = [
            GatewayMsg::Hello { device_id: 7 },
            GatewayMsg::AttReq(vec![1, 2, 3]),
            GatewayMsg::AttResp(vec![]),
            GatewayMsg::Reject(RejectReason::StaleCounter),
            GatewayMsg::Busy,
            GatewayMsg::Bye { verified: true },
            GatewayMsg::Bye { verified: false },
        ];
        for msg in msgs {
            assert_eq!(GatewayMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn wire_msgs_reject_garbage_without_panicking() {
        let bad: &[&[u8]] = &[
            &[],
            &[0],
            &[99, 1, 2],
            &[TAG_HELLO],          // truncated id
            &[TAG_HELLO, 1, 2, 3], // short id
            &[TAG_REJECT],         // missing code
            &[TAG_REJECT, 200],    // unknown code
            &[TAG_BUSY, 1],        // busy with body
            &[TAG_BYE],            // missing flag
            &[TAG_BYE, 1, 2],      // long flag
        ];
        for bytes in bad {
            assert!(
                matches!(
                    GatewayMsg::decode(bytes),
                    Err(AttestError::MalformedMessage { .. })
                ),
                "{bytes:?} should be malformed"
            );
        }
    }

    #[test]
    fn every_reject_reason_roundtrips() {
        for reason in [
            RejectReason::BadAuth,
            RejectReason::NonceReused,
            RejectReason::StaleCounter,
            RejectReason::TimestampNotMonotonic,
            RejectReason::TimestampOutOfWindow,
            RejectReason::FreshnessKindMismatch,
            RejectReason::Malformed,
            RejectReason::Throttled,
            RejectReason::DegradedMode,
            RejectReason::ScopeUnsupported,
        ] {
            let msg = GatewayMsg::Reject(reason);
            assert_eq!(GatewayMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn gateway_serves_honest_sessions_over_loopback() {
        let config = ProverConfig::recommended();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let mut directory = DeviceDirectory::new();
        let mut agents = Vec::new();
        for id in 0..3u64 {
            let (prover, verifier) = provisioned(&config);
            let expected = prover.expected_memory().to_vec();
            assert_eq!(directory.register(verifier, expected), id);
            agents.push(ProverAgent::new(prover, id));
        }
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 2,
                // Debug-build memory MACs are slow; don't let a loaded CI
                // machine turn compute time into spurious retries.
                retry: RetryPolicy {
                    timeout_ms: 10_000,
                    ..GatewayConfig::default().retry
                },
                ..GatewayConfig::default()
            },
        );

        for agent in &mut agents {
            for _ in 0..2 {
                let mut conn = connector.connect().unwrap();
                let outcome = agent.run_session(&mut conn, Duration::from_secs(5));
                assert!(outcome.is_verified(), "honest session failed: {outcome:?}");
            }
        }

        let report = handle.shutdown();
        assert_eq!(report.stats.sessions_ok, 6);
        assert_eq!(report.stats.sessions_failed, 0);
        assert_eq!(report.stats.handshake_failed, 0);
        assert!(report.stats.partition_holds(), "{:?}", report.stats);
        // At least the per-session "gateway.session" span each; crypto
        // stages inside the workers add more.
        assert!(report.spans >= 6, "spans = {}", report.spans);
        assert_eq!(report.dropped_spans, 0);
        assert_eq!(report.metrics.counter("gateway.sessions_ok"), Some(6));
        let hist = report.metrics.histogram("gateway.session_us").unwrap();
        assert_eq!(hist.count(), 6);
        // Transport byte counters crossed the thread boundary too.
        assert!(report.metrics.counter("transport.bytes_in").unwrap_or(0) > 0);
    }

    #[test]
    fn unknown_device_and_garbage_hello_fail_handshake() {
        let config = ProverConfig::recommended();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let (prover, verifier) = provisioned(&config);
        let mut directory = DeviceDirectory::new();
        directory.register(verifier, prover.expected_memory().to_vec());
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 1,
                read_timeout_ms: 200,
                ..GatewayConfig::default()
            },
        );

        // Unknown device id: polite Bye{false}.
        let mut conn = connector.connect().unwrap();
        conn.set_deadline(Some(Duration::from_secs(5))).unwrap();
        conn.send(&GatewayMsg::Hello { device_id: 99 }.encode())
            .unwrap();
        assert_eq!(
            GatewayMsg::decode(&conn.recv().unwrap()).unwrap(),
            GatewayMsg::Bye { verified: false }
        );

        // Garbage instead of Hello: connection just closes.
        let mut conn = connector.connect().unwrap();
        conn.send(b"not a gateway message").unwrap();
        conn.set_deadline(Some(Duration::from_secs(5))).unwrap();
        assert!(conn.recv().is_err());

        let report = handle.shutdown();
        assert_eq!(report.stats.handshake_failed, 2);
        assert_eq!(report.stats.sessions_total(), 0);
        assert!(report.stats.partition_holds());
    }

    #[test]
    fn full_queue_sheds_with_busy_and_honest_retry_gets_through() {
        let config = ProverConfig::recommended();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let mut directory = DeviceDirectory::new();
        let (prover, verifier) = provisioned(&config);
        // A slow device pins the single worker for ~150 ms per session.
        directory.register_with_floor(verifier, prover.expected_memory().to_vec(), 150);
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 1,
                queue_depth: 1,
                retry: RetryPolicy {
                    timeout_ms: 10_000,
                    ..GatewayConfig::default().retry
                },
                ..GatewayConfig::default()
            },
        );
        let mut agent = ProverAgent::new(prover, 0);

        // Pin the single worker with a silent connection (it blocks on the
        // Hello read timeout), then fill the 1-slot queue with another.
        let pin_worker = connector.connect().unwrap();
        thread::sleep(Duration::from_millis(50));
        let pin_queue = connector.connect().unwrap();
        thread::sleep(Duration::from_millis(50));
        // An honest dial now must be shed with a cheap Busy frame.
        let mut conn = connector.connect().unwrap();
        let outcome = agent.run_session(&mut conn, Duration::from_secs(30));
        assert_eq!(outcome, AgentOutcome::Busy);

        // With retries, the same agent eventually lands a verified
        // session (the dropped pinning connections free the worker).
        drop(pin_worker);
        drop(pin_queue);
        let policy = RetryPolicy {
            max_retries: 20,
            backoff_base_ms: 25,
            backoff_factor: 1,
            ..RetryPolicy::default()
        };
        let outcome = agent.attest_with_retry(
            || {
                connector
                    .connect()
                    .map(|c| Box::new(c) as Box<dyn Transport>)
            },
            &policy,
            Duration::from_secs(30),
            100,
        );
        assert!(outcome.is_verified(), "retrying agent failed: {outcome:?}");

        let report = handle.shutdown();
        assert!(report.stats.busy_rejected >= 1, "{:?}", report.stats);
        assert_eq!(report.stats.sessions_ok, 1);
        assert!(report.stats.partition_holds(), "{:?}", report.stats);
        assert_eq!(
            report.metrics.counter("gateway.busy"),
            report.stats.busy_rejected.into()
        );
    }
}
