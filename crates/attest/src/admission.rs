//! Prover-side admission control: shed load *before* spending cycles.
//!
//! The paper's defences make a bogus request cheap (§4.1: one
//! primitive-block check instead of the ~754 ms memory MAC) — but even a
//! cheap check is not free, and an authenticated deployment still pays the
//! whole-memory MAC for every *genuine* request. A verifier bug, a replay
//! storm, or simply heavy fleet traffic can therefore still drain a coin
//! cell. The [`AdmissionController`] puts a hard ceiling on that spend: a
//! token bucket denominated in **CPU cycles** (the simulation's unit of
//! both time and energy, see [`proverguard_mcu::energy`]) that refills as
//! a configured duty-cycle fraction of wall time. A request is only
//! admitted into the §4/§5 pipeline while the bucket holds enough tokens
//! for the worst-case pipeline cost; everything else is shed with
//! [`RejectReason::Throttled`](crate::error::RejectReason::Throttled)
//! after a few dozen cycles — cheaper than even the MAC check.
//!
//! Two properties matter for the DoS economics:
//!
//! - **The budget is actual spend, not request count.** Every cycle the
//!   pipeline burns (parse, auth check, freshness, response MAC) is
//!   debited after the fact, so a flood of cheap rejects erodes the
//!   bucket slowly while accepted attestations debit their full ~18 M
//!   cycles — the controller bounds *energy*, which is what the battery
//!   cares about.
//! - **Reboots cannot refill the bucket.** The token count and the
//!   cycle-clock refill mark are persisted in the sealed
//!   [`FreshnessRecord`](crate::persist::FreshnessRecord); a reboot
//!   restores them (the device's cycle clock survives reset, so elapsed
//!   time is still credited correctly), and a missing or tampered record
//!   restores a conservatively *empty* bucket.
//!
//! Below a configurable battery fraction the controller additionally
//! enters **degraded mode**: only requests bearing a *fresh* monotonic
//! counter/timestamp (strictly newer than the protected `counter_R` word)
//! are admitted, so replayed floods are shed before the MAC check. A
//! forger can still fabricate fresh-looking counters in the
//! unauthenticated header — those die at the auth check as usual — but
//! the replay/duplicate traffic that dominates real storms becomes free.

use proverguard_mcu::cycles::{ms_to_cycles, CLOCK_HZ};

/// Configuration of the prover's admission controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Bucket capacity in cycles. Bounds the burst of attestation work
    /// the prover will perform back to back.
    pub burst_cycles: u64,
    /// Refill rate as a per-mille duty cycle: for every 1000 cycles of
    /// wall time, this many cycles of attestation budget accrue. 50 ‰
    /// means the prover will spend at most ~5 % of its time (and thus
    /// ~5 % of its active-energy budget) on attestation, sustained.
    pub duty_per_mille: u64,
    /// Minimum tokens required to admit a request — the worst-case
    /// pipeline cost, so an admitted request can always run to completion
    /// within budget.
    pub reserve_cycles: u64,
    /// Battery fraction below which degraded mode engages.
    pub degraded_battery_fraction: f64,
}

impl AdmissionPolicy {
    /// The recommended deployment: a burst of two whole-memory MACs,
    /// a 5 % duty cycle, degraded mode below 20 % battery.
    #[must_use]
    pub fn recommended() -> Self {
        // §3.1: the 512 KiB memory MAC costs ~754 ms ≈ 18.1 M cycles.
        let mac = ms_to_cycles(754.0);
        AdmissionPolicy {
            burst_cycles: 2 * mac,
            duty_per_mille: 50,
            reserve_cycles: mac + mac / 8,
            degraded_battery_fraction: 0.2,
        }
    }

    /// Sustained admitted attestations per second this policy allows once
    /// the burst is spent (refill rate over worst-case request cost).
    #[must_use]
    pub fn sustained_rate_hz(&self) -> f64 {
        if self.reserve_cycles == 0 {
            return f64::INFINITY;
        }
        (CLOCK_HZ as f64 * self.duty_per_mille as f64 / 1000.0) / self.reserve_cycles as f64
    }
}

/// What the controller decided about one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Run the pipeline.
    Admit,
    /// Budget exhausted — shed with `RejectReason::Throttled`.
    Throttled,
    /// Low battery and the request carried no fresh counter — shed with
    /// `RejectReason::DegradedMode`.
    DegradedRefused,
}

/// Persistable controller state: the token count and the cycle-clock
/// value at the last refill. Stored in the sealed freshness record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionSnapshot {
    /// Tokens (cycles) in the bucket.
    pub tokens: u64,
    /// Device cycle-clock reading at the last refill.
    pub refill_mark_cycles: u64,
}

/// Cumulative admission statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Requests admitted into the pipeline.
    pub admitted: u64,
    /// Requests shed because the bucket was below the reserve.
    pub throttled: u64,
    /// Requests shed by degraded mode (stale or missing counter).
    pub degraded_refused: u64,
    /// Total cycles debited from the bucket.
    pub cycles_charged: u64,
}

/// The token bucket itself. Owned by the prover; all time comes from the
/// device's cycle clock so the controller has no clock of its own to
/// glitch.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    tokens: u64,
    refill_mark_cycles: u64,
    /// Remainder of the last refill in milli-tokens (cycles × duty ‰
    /// not yet worth a whole token), so integer division never loses
    /// budget across split refills.
    refill_carry: u64,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller starting with a full bucket at cycle-clock `now`.
    #[must_use]
    pub fn new(policy: AdmissionPolicy, now_cycles: u64) -> Self {
        AdmissionController {
            tokens: policy.burst_cycles,
            refill_mark_cycles: now_cycles,
            refill_carry: 0,
            policy,
            stats: AdmissionStats::default(),
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Tokens currently in the bucket.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Credits the budget for wall time elapsed since the last refill.
    pub fn refill(&mut self, now_cycles: u64) {
        let elapsed = now_cycles.saturating_sub(self.refill_mark_cycles);
        // Milli-tokens: saturation only matters for absurd elapsed times,
        // where the bucket caps at `burst_cycles` anyway.
        let milli = elapsed
            .saturating_mul(self.policy.duty_per_mille)
            .saturating_add(self.refill_carry);
        self.refill_carry = milli % 1000;
        self.refill_mark_cycles = now_cycles;
        self.tokens = self
            .tokens
            .saturating_add(milli / 1000)
            .min(self.policy.burst_cycles);
    }

    /// Decides one request. `battery_fraction` is the remaining battery
    /// in `[0, 1]`; `has_fresh_counter` says whether the request's
    /// freshness field is strictly newer than the protected state (only
    /// consulted in degraded mode).
    pub fn decide(&mut self, battery_fraction: f64, has_fresh_counter: bool) -> AdmissionDecision {
        if battery_fraction < self.policy.degraded_battery_fraction && !has_fresh_counter {
            self.stats.degraded_refused = self.stats.degraded_refused.saturating_add(1);
            return AdmissionDecision::DegradedRefused;
        }
        if self.tokens < self.policy.reserve_cycles {
            self.stats.throttled = self.stats.throttled.saturating_add(1);
            return AdmissionDecision::Throttled;
        }
        self.stats.admitted = self.stats.admitted.saturating_add(1);
        AdmissionDecision::Admit
    }

    /// Debits actual pipeline spend (called after the request finishes,
    /// whatever its outcome).
    pub fn charge(&mut self, cycles: u64) {
        self.tokens = self.tokens.saturating_sub(cycles);
        self.stats.cycles_charged = self.stats.cycles_charged.saturating_add(cycles);
    }

    /// The persistable state.
    #[must_use]
    pub fn snapshot(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            tokens: self.tokens,
            refill_mark_cycles: self.refill_mark_cycles,
        }
    }

    /// Restores from a trusted (seal-verified) snapshot at cycle-clock
    /// `now`. The device's cycle clock persists across reset, so time
    /// elapsed while the record sat in flash is credited by the next
    /// [`AdmissionController::refill`]; a snapshot from the future (a
    /// clock that somehow went backwards) is clamped to `now`.
    pub fn restore(&mut self, snapshot: AdmissionSnapshot, now_cycles: u64) {
        self.tokens = snapshot.tokens.min(self.policy.burst_cycles);
        self.refill_mark_cycles = snapshot.refill_mark_cycles.min(now_cycles);
        self.refill_carry = 0;
    }

    /// Conservative post-tamper state: an *empty* bucket, so a reboot
    /// with a missing or forged record never refills the budget.
    pub fn reset_empty(&mut self, now_cycles: u64) {
        self.tokens = 0;
        self.refill_mark_cycles = now_cycles;
        self.refill_carry = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AdmissionPolicy {
        AdmissionPolicy {
            burst_cycles: 10_000,
            duty_per_mille: 100, // 10 %
            reserve_cycles: 4_000,
            degraded_battery_fraction: 0.2,
        }
    }

    #[test]
    fn full_bucket_admits() {
        let mut c = AdmissionController::new(policy(), 0);
        assert_eq!(c.decide(1.0, false), AdmissionDecision::Admit);
        assert_eq!(c.stats().admitted, 1);
    }

    #[test]
    fn charge_below_reserve_throttles_until_refill() {
        let mut c = AdmissionController::new(policy(), 0);
        c.charge(7_000); // 3 000 left < 4 000 reserve
        assert_eq!(c.decide(1.0, false), AdmissionDecision::Throttled);
        // 10 % duty: 10 000 cycles of wall time earn 1 000 tokens.
        c.refill(10_000);
        assert_eq!(c.tokens(), 4_000);
        assert_eq!(c.decide(1.0, false), AdmissionDecision::Admit);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut c = AdmissionController::new(policy(), 0);
        c.refill(u64::MAX / 2);
        assert_eq!(c.tokens(), policy().burst_cycles);
    }

    #[test]
    fn refill_is_exact_over_split_calls() {
        // 10 % of 25 000 cycles = 2 500 tokens, regardless of how the
        // elapsed time is chopped up.
        let mut whole = AdmissionController::new(policy(), 0);
        whole.charge(10_000);
        whole.refill(25_000);
        let mut split = AdmissionController::new(policy(), 0);
        split.charge(10_000);
        for now in [1, 7, 1_234, 24_999, 25_000] {
            split.refill(now);
        }
        assert_eq!(whole.tokens(), 2_500);
        assert_eq!(split.tokens(), 2_500);
    }

    #[test]
    fn degraded_mode_requires_fresh_counter() {
        let mut c = AdmissionController::new(policy(), 0);
        assert_eq!(c.decide(0.1, false), AdmissionDecision::DegradedRefused);
        assert_eq!(c.decide(0.1, true), AdmissionDecision::Admit);
        // Above the threshold the counter is not consulted.
        assert_eq!(c.decide(0.5, false), AdmissionDecision::Admit);
        assert_eq!(c.stats().degraded_refused, 1);
    }

    #[test]
    fn snapshot_roundtrip_and_tamper_reset() {
        let mut c = AdmissionController::new(policy(), 0);
        c.charge(2_500);
        let snap = c.snapshot();
        let mut restored = AdmissionController::new(policy(), 100);
        restored.restore(snap, 100);
        assert_eq!(restored.tokens(), 7_500);
        restored.reset_empty(100);
        assert_eq!(restored.tokens(), 0);
        assert_eq!(restored.decide(1.0, false), AdmissionDecision::Throttled);
    }

    #[test]
    fn restore_clamps_forged_token_counts() {
        let mut c = AdmissionController::new(policy(), 0);
        c.restore(
            AdmissionSnapshot {
                tokens: u64::MAX,
                refill_mark_cycles: u64::MAX,
            },
            50,
        );
        assert_eq!(c.tokens(), policy().burst_cycles);
        // A future refill mark was clamped, so refill cannot underflow.
        c.refill(60);
        assert!(c.tokens() <= policy().burst_cycles);
    }

    #[test]
    fn sustained_rate_matches_duty_cycle() {
        let p = AdmissionPolicy::recommended();
        // 5 % of 24 MHz over ~20 M cycles/request ≈ 0.06 req/s.
        let hz = p.sustained_rate_hz();
        assert!(hz > 0.01 && hz < 1.0, "got {hz}");
    }
}
