//! The prover: `Code_Attest` running on the simulated device.
//!
//! [`Prover::handle_request`] implements the full §4/§5 pipeline in the
//! order that makes the defences effective: **authenticate first, check
//! freshness second, and only then** pay the ~754 ms whole-memory MAC. A
//! rejected request costs the prover at most one primitive-block check
//! (0.017–0.43 ms, or 170.9 ms for the ruled-out ECDSA variant), which is
//! the entire DoS-mitigation argument in measurable form.

use proverguard_crypto::mac::{MacAlgorithm, MacKey};
use proverguard_crypto::sha1::DIGEST_SIZE;
use proverguard_mcu::boot::{image_digest, SecureBoot};
use proverguard_mcu::device::Mcu;
use proverguard_mcu::map;
use proverguard_mcu::rtc::HwRtc;
use proverguard_mcu::timer::TIMER_WRAP_VECTOR;
use proverguard_mcu::CLOCK_HZ;

use crate::admission::{
    AdmissionController, AdmissionDecision, AdmissionPolicy, AdmissionSnapshot,
};
use crate::auth::{AuthMethod, RequestChecker, RequestSigner};
use crate::clock::{ClockKind, ProverClock, CLOCK_HANDLER_ADDR};
use crate::clocksync::{self, SyncOutcome, SyncParams, SyncRequest};
use crate::error::{AttestError, RejectReason};
use crate::freshness::{FreshnessKind, FreshnessPolicy};
use crate::message::AttestScope;
use crate::message::{AttestRequest, AttestResponse, FreshnessField};
use crate::persist::{
    EpochLogRecord, FreshnessRecord, PersistedState, RecoveryOutcome, UpdateJournal,
};
use crate::profile::{rules_for, Protection};
use crate::segcache::{self, HistoryReport, SegmentCache, SegmentedParams};
use crate::services::{self, Command, CommandReceipt, CommandRequest};

/// How the device last came up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BootHealth {
    /// Secure boot verified the flash image against a trusted reference.
    #[default]
    Healthy,
    /// The flash digest matched neither the active nor the target image
    /// (torn update); the device came up through recovery boot with its
    /// protections armed but no application image. It attests — as
    /// neither image — and accepts `UpdateFirmware` retries.
    Recovery,
}

/// Static configuration of a prover deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProverConfig {
    /// How requests are authenticated (§4.1).
    pub auth: AuthMethod,
    /// Which freshness mechanism is used (§4.2).
    pub freshness: FreshnessKind,
    /// Which clock the device has (§6.2).
    pub clock: ClockKind,
    /// Whether EA-MAC rules protect the critical state (§5/§6).
    pub protection: Protection,
    /// The MAC used for the attestation *response* over memory.
    pub response_mac: MacAlgorithm,
    /// Incremental segmented attestation: when `Some`, the device's
    /// dirty-tracking hardware is strapped to the given granularity and
    /// the prover serves [`AttestScope::Segmented`] requests from its
    /// per-segment digest cache. `None` provers reject segmented requests
    /// with [`RejectReason::ScopeUnsupported`].
    pub segmented: Option<SegmentedParams>,
}

impl ProverConfig {
    /// The paper's recommended lightweight deployment: Speck-authenticated
    /// requests, a monotonic counter, EA-MAC protection (replay + reorder
    /// mitigation at 0.017 ms per bogus request).
    #[must_use]
    pub fn recommended() -> Self {
        ProverConfig {
            auth: AuthMethod::Mac(MacAlgorithm::Speck64Cbc),
            freshness: FreshnessKind::Counter,
            clock: ClockKind::None,
            protection: Protection::EaMac,
            response_mac: MacAlgorithm::HmacSha1,
            segmented: None,
        }
    }

    /// The recommended deployment with incremental segmented attestation
    /// enabled at the default 8 KiB granularity: repeat attestations cost
    /// only the dirty segments plus one short combine MAC.
    #[must_use]
    pub fn recommended_segmented() -> Self {
        ProverConfig {
            segmented: Some(SegmentedParams::default()),
            ..Self::recommended()
        }
    }

    /// The fully protected timestamp deployment on the Figure 1a 64-bit
    /// hardware clock (also mitigates delay attacks).
    #[must_use]
    pub fn timestamp_hw64() -> Self {
        ProverConfig {
            auth: AuthMethod::Mac(MacAlgorithm::Speck64Cbc),
            freshness: FreshnessKind::Timestamp,
            clock: ClockKind::Hw64,
            protection: Protection::EaMac,
            response_mac: MacAlgorithm::HmacSha1,
            segmented: None,
        }
    }

    /// The Figure 1b deployment: timestamps on the SW-clock.
    #[must_use]
    pub fn timestamp_sw_clock() -> Self {
        ProverConfig {
            clock: ClockKind::Software,
            ..Self::timestamp_hw64()
        }
    }

    /// The vulnerable strawman of §3.1: no authentication, no freshness,
    /// no protection. Every bogus request costs the full memory MAC.
    #[must_use]
    pub fn unprotected() -> Self {
        ProverConfig {
            auth: AuthMethod::None,
            freshness: FreshnessKind::None,
            clock: ClockKind::None,
            protection: Protection::Open,
            response_mac: MacAlgorithm::HmacSha1,
            segmented: None,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`AttestError::BadConfig`] if timestamps are configured without a
    /// clock.
    pub fn validate(&self) -> Result<(), AttestError> {
        if self.freshness == FreshnessKind::Timestamp && self.clock == ClockKind::None {
            return Err(AttestError::BadConfig {
                reason: "timestamp freshness requires a clock".to_string(),
            });
        }
        if let Some(params) = &self.segmented {
            params.validate()?;
        }
        Ok(())
    }
}

/// Cycle cost of the last handled request, by pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBreakdown {
    /// Wire-parsing cycles (0 when the request arrived pre-parsed).
    pub parse_cycles: u64,
    /// Admission-control cycles (0 when no controller is installed).
    pub admission_cycles: u64,
    /// Request-authentication cycles.
    pub auth_cycles: u64,
    /// Freshness-check cycles (bus accesses + comparison).
    pub freshness_cycles: u64,
    /// Response MAC cycles (0 when the request was rejected). For a
    /// whole-memory response this is the full sweep; for a segmented one
    /// it is the dirty-bit scan + recomputed segment digests + combine
    /// MAC.
    pub response_cycles: u64,
    /// Segments whose digest had to be recomputed (segmented scope only).
    pub mac_recomputed_segments: u32,
    /// Segments served from the digest cache (segmented scope only).
    pub mac_cached_segments: u32,
}

impl CostBreakdown {
    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.parse_cycles
            + self.admission_cycles
            + self.auth_cycles
            + self.freshness_cycles
            + self.response_cycles
    }

    /// Total milliseconds on the 24 MHz device.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.total() as f64 / CLOCK_HZ as f64 * 1e3
    }
}

/// Cumulative prover statistics (for DoS experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProverStats {
    /// Requests received.
    pub requests_seen: u64,
    /// Requests that passed all checks and were answered.
    pub accepted: u64,
    /// Requests dropped by authentication.
    pub rejected_auth: u64,
    /// Requests dropped by the freshness policy.
    pub rejected_freshness: u64,
    /// Wire requests dropped because the bytes did not parse at all.
    pub rejected_malformed: u64,
    /// Requests shed by the admission controller (budget exhausted).
    pub rejected_throttled: u64,
    /// Requests shed by low-battery degraded mode (no fresh counter).
    pub rejected_degraded: u64,
    /// Segmented-scope requests rejected because the prover has no
    /// segment cache configured.
    pub rejected_scope: u64,
    /// Segment digests recomputed across all segmented responses.
    pub seg_mac_recomputed: u64,
    /// Segment digests served from the cache across all segmented
    /// responses.
    pub seg_mac_cached: u64,
    /// Wholesale segment-cache invalidations (reboot, EA-MPU fault,
    /// explicit clear).
    pub segcache_invalidations: u64,
    /// Accepted `History`-scope rounds (the cheap TOCTOU-detecting kind).
    pub history_rounds: u64,
    /// Reboots survived ([`Prover::reboot`]).
    pub reboots: u64,
    /// Reboots where an attached store's record failed validation and the
    /// prover fell back to zeroed freshness state.
    pub recovery_failures: u64,
    /// Reboots where the sealed epoch-log record failed validation
    /// (rollback or forgery) and `History` scope was suspended until the
    /// next full-scope round.
    pub epoch_recovery_failures: u64,
    /// Total attestation-related cycles spent.
    pub attestation_cycles: u64,
}

impl ProverStats {
    /// Requests rejected by any pipeline stage. Together with
    /// [`ProverStats::accepted`] this partitions
    /// [`ProverStats::requests_seen`]: the invariant
    /// `requests_seen == accepted + rejected_total()` holds at every
    /// quiescent point and is asserted by the fault-matrix tests and the
    /// soak gate.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected_auth
            .saturating_add(self.rejected_freshness)
            .saturating_add(self.rejected_malformed)
            .saturating_add(self.rejected_throttled)
            .saturating_add(self.rejected_degraded)
            .saturating_add(self.rejected_scope)
    }
}

/// Nominal cycles for the freshness bookkeeping itself (a few bus words).
const FRESHNESS_OVERHEAD_CYCLES: u64 = 64;

/// Nominal cycles for the wire-format parse (length/tag checks and a few
/// copies — deliberately tiny, so garbage is the cheapest thing to reject).
const PARSE_OVERHEAD_CYCLES: u64 = 96;

/// Nominal cycles for the admission decision (a bucket compare plus, in
/// degraded mode, one protected-word read) — cheaper than even the
/// Speck block check, so shed traffic is the next-cheapest thing to
/// reject after garbage.
const ADMISSION_OVERHEAD_CYCLES: u64 = 32;

/// Cycles to test one hardware dirty bit during the segmented scan (a
/// load, a mask and a branch).
const SEG_SCAN_CYCLES: u64 = 8;

/// The prover device plus its trust anchor.
#[derive(Debug, Clone)]
pub struct Prover {
    mcu: Mcu,
    config: ProverConfig,
    checker: RequestChecker,
    policy: FreshnessPolicy,
    clock: ProverClock,
    response_key: MacKey,
    sync_params: SyncParams,
    stats: ProverStats,
    last_cost: CostBreakdown,
    /// Reference image digest secure boot verifies against — kept so
    /// [`Prover::reboot`] can re-run boot without re-provisioning.
    boot_reference: [u8; DIGEST_SIZE],
    /// Optional non-volatile store for the freshness record.
    nv: Option<Box<dyn PersistedState>>,
    /// Optional admission controller gating the whole pipeline.
    admission: Option<AdmissionController>,
    /// Per-segment digest cache (only with `config.segmented`). Volatile
    /// `Code_Attest` state: never sealed into the freshness record, and
    /// dropped wholesale on reboot or on an observed EA-MPU violation.
    segcache: Option<SegmentCache>,
    /// Length of the device fault log when the cache was last known good;
    /// growth means an EA-MPU violation happened and the cache is dropped.
    fault_mark: usize,
    /// Optional non-volatile slot for the firmware-update journal
    /// (separate from the freshness record; OTA torn-flash recovery).
    journal_nv: Option<Box<dyn PersistedState>>,
    /// How the last boot concluded.
    boot_health: BootHealth,
    /// One-shot fault injection: cut power after this many image bytes of
    /// the next `UpdateFirmware`.
    tear_next_update: Option<usize>,
    /// Optional non-volatile slot for the sealed epoch-log record
    /// (`History` scope rollback detection across reboots).
    epoch_nv: Option<Box<dyn PersistedState>>,
    /// Set when the epoch log cannot vouch for rounds before the current
    /// boot (no sealed record, or one that failed its seal — a rollback
    /// or forgery signal). While set, `History` requests are refused with
    /// [`RejectReason::ScopeUnsupported`]; any accepted full-scope round
    /// re-establishes ground truth and clears it.
    history_suspended: bool,
}

impl Prover {
    /// Manufactures, provisions and boots a prover device.
    ///
    /// Provisioning burns `key` (`K_Attest`) into ROM and programs
    /// `app_image` into flash. With [`Protection::EaMac`] the device then
    /// secure-boots: the image hash is verified, the
    /// [`profile`](crate::profile) rules are installed, and the EA-MPU is
    /// locked. With [`Protection::Open`] the device boots straight into
    /// the application with no protections — the vulnerable baseline.
    ///
    /// # Errors
    ///
    /// - [`AttestError::BadConfig`] for inconsistent configurations.
    /// - [`AttestError::Device`] if provisioning or boot fails.
    /// - [`AttestError::Crypto`] if `key` does not fit the configured
    ///   algorithms.
    pub fn provision(
        config: ProverConfig,
        key: &[u8; 16],
        app_image: &[u8],
    ) -> Result<Self, AttestError> {
        config.validate()?;
        let mut mcu = Mcu::new();
        mcu.provision_attest_key(key)?;
        mcu.program_flash(app_image)?;

        match config.clock {
            ClockKind::None => {}
            ClockKind::Hw64 => mcu.install_rtc(HwRtc::wide64()),
            ClockKind::Hw32Div => mcu.install_rtc(HwRtc::divided32()),
            ClockKind::Software => {
                mcu.install_idt_entry(TIMER_WRAP_VECTOR, CLOCK_HANDLER_ADDR)?;
            }
        }

        let boot_reference = image_digest(mcu.physical_memory().flash());
        if config.protection == Protection::EaMac {
            // §6.2: runtime attacks on the trust anchors are addressed by
            // limiting code entry points.
            mcu.install_entry_point(map::ATTEST_CODE, map::ATTEST_CODE.start);
            mcu.install_entry_point(map::CLOCK_CODE, CLOCK_HANDLER_ADDR);
            let rules = rules_for(config.protection, config.clock);
            SecureBoot::new(boot_reference).run(&mut mcu, &rules)?;
        }

        // Code_Attest reads K_Attest through the bus — with EA-MAC this
        // only works because the rule names ATTEST_CODE.
        let device_key = mcu.read_attest_key(map::ATTEST_PC)?;
        let response_key = MacKey::new(config.response_mac, &device_key)?;
        let checker = RequestSigner::new(config.auth, key)?.checker()?;
        let policy = FreshnessPolicy::new(config.freshness);
        let clock = ProverClock::new(config.clock);

        // Strap the dirty-tracking hardware and allocate the (empty)
        // digest cache. Every segment starts dirty, so the first segmented
        // attestation after provisioning does a full recomputation.
        let segcache = match &config.segmented {
            Some(params) => {
                mcu.set_segment_len(params.segment_len)?;
                Some(SegmentCache::new(
                    params.segment_len as usize,
                    map::RAM.len() as usize,
                ))
            }
            None => None,
        };
        let fault_mark = mcu.fault_log().len();

        Ok(Prover {
            mcu,
            config,
            checker,
            policy,
            clock,
            response_key,
            sync_params: SyncParams::default(),
            stats: ProverStats::default(),
            last_cost: CostBreakdown::default(),
            boot_reference,
            nv: None,
            admission: None,
            segcache,
            fault_mark,
            journal_nv: None,
            boot_health: BootHealth::Healthy,
            tear_next_update: None,
            epoch_nv: None,
            history_suspended: false,
        })
    }

    /// Installs (or removes) the admission controller. The bucket starts
    /// full; after a reboot the persisted budget is restored instead, so
    /// power-cycling is never a way to refill it.
    pub fn set_admission_policy(&mut self, policy: Option<AdmissionPolicy>) {
        let now = self.mcu.clock().cycles();
        self.admission = policy.map(|p| AdmissionController::new(p, now));
    }

    /// The admission controller, if one is installed.
    #[must_use]
    pub fn admission(&self) -> Option<&AdmissionController> {
        self.admission.as_ref()
    }

    /// Attaches a non-volatile store for the freshness record and
    /// immediately saves the current state into it. Until a store is
    /// attached, [`Prover::reboot`] loses all freshness state — the
    /// configuration whose rollback the fault-matrix tests demonstrate.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if reading the live freshness words fails.
    pub fn attach_nv_store(&mut self, store: Box<dyn PersistedState>) -> Result<(), AttestError> {
        self.nv = Some(store);
        self.persist_freshness()
    }

    /// `true` when a non-volatile store is attached.
    #[must_use]
    pub fn has_nv_store(&self) -> bool {
        self.nv.is_some()
    }

    /// Attaches a non-volatile slot for the firmware-update journal and
    /// seeds it with the current (provisioned) image as active. With a
    /// journal attached, [`Prover::reboot`] becomes torn-flash aware: a
    /// flash digest matching neither the active nor the in-flight target
    /// image routes through recovery boot instead of refusing to come up.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the initial journal write fails.
    pub fn attach_update_journal(
        &mut self,
        store: Box<dyn PersistedState>,
    ) -> Result<(), AttestError> {
        self.journal_nv = Some(store);
        let journal = UpdateJournal {
            active_digest: self.boot_reference,
            target_digest: self.boot_reference,
            in_progress: false,
            mirrored: false,
        };
        self.persist_journal(&journal);
        Ok(())
    }

    /// `true` when an update journal is attached.
    #[must_use]
    pub fn has_update_journal(&self) -> bool {
        self.journal_nv.is_some()
    }

    /// Attaches a non-volatile slot for the sealed epoch-log record and
    /// immediately saves the current state into it. With a store attached,
    /// the per-segment last-write epoch log survives [`Prover::reboot`]:
    /// the round register is restored monotonically and every segment is
    /// stamped at the restored round (RAM was wiped, so every byte *was*
    /// rewritten). A missing, rolled-back or forged record suspends
    /// [`AttestScope::History`] until a full-scope round completes.
    pub fn attach_epoch_log_store(&mut self, store: Box<dyn PersistedState>) {
        self.epoch_nv = Some(store);
        self.persist_epoch_log();
    }

    /// `true` when an epoch-log store is attached.
    #[must_use]
    pub fn has_epoch_log_store(&self) -> bool {
        self.epoch_nv.is_some()
    }

    /// The current attestation round — the value the epoch register holds
    /// now, i.e. the round the *next* accepted request will run as.
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.mcu.epoch()
    }

    /// `true` while `History` scope is suspended pending a full-scope
    /// round (epoch log lost or tampered across a reboot).
    #[must_use]
    pub fn history_suspended(&self) -> bool {
        self.history_suspended
    }

    /// How the device last booted.
    #[must_use]
    pub fn boot_health(&self) -> BootHealth {
        self.boot_health
    }

    /// The flash digest secure boot currently trusts (rotates on a
    /// committed firmware update).
    #[must_use]
    pub fn boot_reference(&self) -> &[u8; DIGEST_SIZE] {
        &self.boot_reference
    }

    /// Arms a one-shot power-loss injection: the next `UpdateFirmware`
    /// loses power after `at` image bytes are programmed, leaving the
    /// flash torn. The command returns [`AttestError::PowerLoss`]; the
    /// caller then models the device coming back via [`Prover::reboot`].
    pub fn inject_update_tear(&mut self, at: usize) {
        self.tear_next_update = Some(at);
    }

    fn persist_journal(&mut self, journal: &UpdateJournal) {
        let bytes = match self.config.protection {
            Protection::EaMac => journal.seal(&self.response_key),
            Protection::Open => journal.encode(),
        };
        if let Some(nv) = &mut self.journal_nv {
            nv.save(&bytes);
        }
    }

    fn load_journal(&self) -> Option<UpdateJournal> {
        let bytes = self.journal_nv.as_ref()?.load()?;
        match self.config.protection {
            Protection::EaMac => UpdateJournal::open_sealed(&bytes, &self.response_key),
            Protection::Open => UpdateJournal::decode(&bytes),
        }
    }

    fn persist_epoch_log(&mut self) {
        if self.epoch_nv.is_none() {
            return;
        }
        let record = EpochLogRecord::capture(&self.mcu);
        let bytes = match self.config.protection {
            Protection::EaMac => record.seal(&self.response_key),
            Protection::Open => record.encode(),
        };
        if let Some(nv) = &mut self.epoch_nv {
            nv.save(&bytes);
        }
    }

    fn load_epoch_log(&self) -> Option<EpochLogRecord> {
        let bytes = self.epoch_nv.as_ref()?.load()?;
        match self.config.protection {
            Protection::EaMac => EpochLogRecord::open_sealed(&bytes, &self.response_key),
            Protection::Open => EpochLogRecord::decode(&bytes),
        }
    }

    /// The deployment configuration.
    #[must_use]
    pub fn config(&self) -> &ProverConfig {
        &self.config
    }

    /// The underlying device (read access).
    #[must_use]
    pub fn mcu(&self) -> &Mcu {
        &self.mcu
    }

    /// Mutable device access — **this is the adversary's surface**: code
    /// running on a compromised prover manipulates the device through the
    /// same bus (as `map::APP_CODE`) that the EA-MPU polices.
    pub fn mcu_mut(&mut self) -> &mut Mcu {
        &mut self.mcu
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &ProverStats {
        &self.stats
    }

    /// Cycle breakdown of the most recent request.
    #[must_use]
    pub fn last_cost(&self) -> &CostBreakdown {
        &self.last_cost
    }

    /// The prover-side freshness policy (inspectable for experiments).
    #[must_use]
    pub fn policy(&self) -> &FreshnessPolicy {
        &self.policy
    }

    /// Lets wall-clock time pass on the device (idle), servicing SW-clock
    /// interrupts as hardware would.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if interrupt service hits an MPU fault.
    pub fn advance_time_ms(&mut self, ms: u64) -> Result<(), AttestError> {
        self.mcu.advance_idle(ms.saturating_mul(CLOCK_HZ) / 1000);
        self.clock.service_interrupts(&mut self.mcu)?;
        Ok(())
    }

    /// Reads the prover's current clock (if any) in milliseconds.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the EA-MPU denies the read.
    pub fn now_ms(&mut self) -> Result<Option<u64>, AttestError> {
        self.clock.now_ms(&mut self.mcu)
    }

    /// The raw clock plus the clock-sync offset maintained by
    /// `Code_Attest` — the time freshness checks actually use.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the EA-MPU denies a read.
    pub fn synced_now_ms(&mut self) -> Result<Option<u64>, AttestError> {
        let Some(raw) = self.clock.now_ms(&mut self.mcu)? else {
            return Ok(None);
        };
        let offset = clocksync::read_offset_ms(&mut self.mcu)?;
        Ok(Some(clocksync::apply_offset(raw, offset)))
    }

    /// Overrides the clock-sync correction bounds.
    pub fn set_sync_params(&mut self, params: SyncParams) {
        self.sync_params = params;
    }

    /// Handles a clock-synchronization message (§7 future-work item 2):
    /// authenticate, check the sync counter, apply a bounded correction.
    ///
    /// # Errors
    ///
    /// - [`AttestError::Rejected`] on bad authentication or a stale sync
    ///   counter.
    /// - [`AttestError::MissingClock`] if the device has no clock.
    pub fn handle_sync(&mut self, request: &SyncRequest) -> Result<SyncOutcome, AttestError> {
        let cycles = self.checker.check_cycles(self.mcu.cost_table());
        self.mcu.advance_active(cycles);
        if !self.checker.check(&request.signed_bytes(), &request.auth) {
            return Err(AttestError::Rejected(RejectReason::BadAuth));
        }
        self.clock.service_interrupts(&mut self.mcu)?;
        let raw = self
            .clock
            .now_ms(&mut self.mcu)?
            .ok_or(AttestError::MissingClock)?;
        let outcome = clocksync::apply_sync(&mut self.mcu, &self.sync_params, request, raw)?;
        self.persist_freshness()?;
        Ok(outcome)
    }

    /// Handles a gated command (§7 future-work item 3): the same
    /// authenticate-then-freshness gate, generalized beyond attestation.
    ///
    /// # Errors
    ///
    /// - [`AttestError::Rejected`] on bad authentication or a stale
    ///   command counter — rejection costs one block check, never the
    ///   command's (possibly large) execution cost.
    /// - [`AttestError::Device`] on device faults.
    pub fn handle_command(
        &mut self,
        request: &CommandRequest,
    ) -> Result<CommandReceipt, AttestError> {
        let start_cycles = self.mcu.clock().cycles();
        let result = self.handle_command_gated(request);
        if let Some(ctrl) = self.admission.as_mut() {
            let spent = self.mcu.clock().cycles().saturating_sub(start_cycles);
            ctrl.charge(spent);
        }
        result
    }

    fn handle_command_gated(
        &mut self,
        request: &CommandRequest,
    ) -> Result<CommandReceipt, AttestError> {
        // Stage 0: admission — a shed command never pays the auth check,
        // let alone its (possibly flash-sized) execution cost.
        if self.admission.is_some() {
            self.mcu.advance_active(ADMISSION_OVERHEAD_CYCLES);
            let battery_fraction = self.mcu.battery().remaining_fraction();
            let now_cycles = self.mcu.clock().cycles();
            let fresh = services::peek_command_counter(&mut self.mcu)
                .is_some_and(|last| request.counter > last);
            if let Some(ctrl) = self.admission.as_mut() {
                ctrl.refill(now_cycles);
                match ctrl.decide(battery_fraction, fresh) {
                    AdmissionDecision::Admit => {}
                    AdmissionDecision::Throttled => {
                        self.stats.rejected_throttled =
                            self.stats.rejected_throttled.saturating_add(1);
                        return Err(AttestError::Rejected(RejectReason::Throttled));
                    }
                    AdmissionDecision::DegradedRefused => {
                        self.stats.rejected_degraded =
                            self.stats.rejected_degraded.saturating_add(1);
                        return Err(AttestError::Rejected(RejectReason::DegradedMode));
                    }
                }
            }
        }
        let cycles = self.checker.check_cycles(self.mcu.cost_table());
        self.mcu.advance_active(cycles);
        if !self.checker.check(&request.signed_bytes(), &request.auth) {
            return Err(AttestError::Rejected(RejectReason::BadAuth));
        }

        let update_target = match &request.command {
            Command::UpdateFirmware { image } => Some(services::updated_flash_digest(image)),
            _ => None,
        };
        // Write-ahead journal: record the in-flight target *before* the
        // erase starts, so a mid-flash power loss is recoverable.
        if let (Some(target), Some(journal)) = (update_target, self.load_journal()) {
            self.persist_journal(&UpdateJournal {
                target_digest: target,
                in_progress: true,
                ..journal
            });
        }

        let tear = if update_target.is_some() {
            self.tear_next_update.take()
        } else {
            None
        };
        let receipt =
            services::execute_command_with_tear(&mut self.mcu, &self.response_key, request, tear)?;

        if let Some(target) = update_target {
            // The flash controller's DMA installed the new image into the
            // RAM mirror *behind* the dirty tracker; mark the covering
            // segments dirty explicitly, or the next segmented attest
            // would serve stale-trusted digests of the old image.
            self.mcu
                .mark_dirty_region(map::APP_IMAGE_MIRROR.start, map::APP_IMAGE_MIRROR.len())?;
            // Commit: the new image is now what secure boot trusts.
            self.boot_reference = target;
            self.boot_health = BootHealth::Healthy;
            if self.journal_nv.is_some() {
                self.persist_journal(&UpdateJournal {
                    active_digest: target,
                    target_digest: target,
                    in_progress: false,
                    mirrored: true,
                });
            }
        }
        self.persist_freshness()?;
        Ok(receipt)
    }

    /// Handles one attestation request end to end.
    ///
    /// # Errors
    ///
    /// - [`AttestError::Rejected`] when a defence fires (authentication or
    ///   freshness) — the request cost only the check, not the memory MAC.
    /// - [`AttestError::Device`] / [`AttestError::Crypto`] on internal
    ///   faults.
    pub fn handle_request(
        &mut self,
        request: &AttestRequest,
    ) -> Result<AttestResponse, AttestError> {
        self.handle_parsed(request, CostBreakdown::default(), false)
    }

    /// Handles an attestation request that arrived **inside an
    /// established secure session** (`crate::channel`). The session
    /// frame's MAC already authenticated the bytes per-message, so stage
    /// 1 (the outer request authenticator) is skipped — that is the
    /// session amortization win. Every other defence runs unchanged:
    /// admission, scope capability, freshness (the monotonic counter
    /// still advances and persists to the sealed NV record, so a
    /// mid-session reboot resumes safely), and the response is still
    /// MAC'd under the response key exactly as for a one-shot.
    ///
    /// Callers **must** only pass payloads recovered from a verified
    /// session frame ([`crate::channel::SecureChannel::open`]).
    ///
    /// # Errors
    ///
    /// As [`Prover::handle_request`], minus [`RejectReason::BadAuth`]
    /// from stage 1 (History bound checks can still raise it).
    pub fn handle_session_request(
        &mut self,
        request: &AttestRequest,
    ) -> Result<AttestResponse, AttestError> {
        self.handle_parsed(request, CostBreakdown::default(), true)
    }

    /// Wire-bytes variant of [`Prover::handle_session_request`], with the
    /// same cheap malformed-reject ladder as
    /// [`Prover::handle_wire_request`].
    ///
    /// # Errors
    ///
    /// As [`Prover::handle_session_request`], plus
    /// [`RejectReason::Malformed`] when the bytes fail to parse.
    pub fn handle_session_wire_request(&mut self, bytes: &[u8]) -> Result<Vec<u8>, AttestError> {
        self.handle_wire(bytes, true)
    }

    /// The long-term device key as HKDF input keying material for the
    /// attested-channel handshake. Read through the MPU gate exactly like
    /// the signing path — outside ROM attestation code this faults.
    pub(crate) fn session_ikm(&mut self) -> Result<[u8; 16], AttestError> {
        Ok(self.mcu.read_attest_key(map::ATTEST_PC)?)
    }

    /// Handles one attestation request **from raw wire bytes**, the way a
    /// radio ISR would hand it over. Bytes that do not parse are rejected
    /// with [`RejectReason::Malformed`] after only the tiny parse overhead
    /// — cheaper than even the authentication check, so line noise and
    /// fuzz traffic cannot deplete the prover.
    ///
    /// # Errors
    ///
    /// - [`AttestError::Rejected`] with [`RejectReason::Malformed`] when
    ///   the bytes fail to parse; other [`RejectReason`]s when a later
    ///   pipeline stage fires.
    /// - [`AttestError::Device`] / [`AttestError::Crypto`] on internal
    ///   faults.
    pub fn handle_wire_request(&mut self, bytes: &[u8]) -> Result<Vec<u8>, AttestError> {
        self.handle_wire(bytes, false)
    }

    fn handle_wire(&mut self, bytes: &[u8], preauth: bool) -> Result<Vec<u8>, AttestError> {
        let cost = CostBreakdown {
            parse_cycles: PARSE_OVERHEAD_CYCLES,
            ..CostBreakdown::default()
        };
        self.charge_stage("prover.parse", cost.parse_cycles, |_| ());
        match AttestRequest::from_bytes(bytes) {
            Ok(request) => self
                .handle_parsed(&request, cost, preauth)
                .map(|response| response.to_bytes()),
            Err(_) => {
                self.stats.requests_seen = self.stats.requests_seen.saturating_add(1);
                self.stats.rejected_malformed = self.stats.rejected_malformed.saturating_add(1);
                self.finish(cost);
                Err(AttestError::Rejected(RejectReason::Malformed))
            }
        }
    }

    /// The §4/§5 pipeline, shared by the parsed and wire entry points.
    /// `cost` carries cycles already spent upstream (parsing). With
    /// `preauth` the caller vouches that a session-frame MAC already
    /// authenticated the message and stage 1 is skipped.
    fn handle_parsed(
        &mut self,
        request: &AttestRequest,
        mut cost: CostBreakdown,
        preauth: bool,
    ) -> Result<AttestResponse, AttestError> {
        self.stats.requests_seen = self.stats.requests_seen.saturating_add(1);

        // Stage 0: admission control. Shed load before any cryptography —
        // a throttled request costs the bucket compare, nothing more.
        if self.admission.is_some() {
            cost.admission_cycles = ADMISSION_OVERHEAD_CYCLES;
            let decision = self.charge_stage("prover.admission", cost.admission_cycles, |p| {
                let battery_fraction = p.mcu.battery().remaining_fraction();
                let now_cycles = p.mcu.clock().cycles();
                let fresh = p.freshness_peek(&request.freshness);
                p.admission.as_mut().map(|ctrl| {
                    ctrl.refill(now_cycles);
                    ctrl.decide(battery_fraction, fresh)
                })
            });
            match decision {
                None | Some(AdmissionDecision::Admit) => {}
                Some(AdmissionDecision::Throttled) => {
                    self.stats.rejected_throttled = self.stats.rejected_throttled.saturating_add(1);
                    self.finish(cost);
                    return Err(AttestError::Rejected(RejectReason::Throttled));
                }
                Some(AdmissionDecision::DegradedRefused) => {
                    self.stats.rejected_degraded = self.stats.rejected_degraded.saturating_add(1);
                    self.finish(cost);
                    return Err(AttestError::Rejected(RejectReason::DegradedMode));
                }
            }
        }

        let message = request.signed_bytes();

        // Stage 1: authenticate the request (§4.1). The check itself costs
        // cycles whether it passes or not — with ECDSA, enough to be a DoS
        // by itself. Inside a secure session the frame MAC already
        // authenticated these bytes per-message (`preauth`), so the outer
        // check is skipped — the amortization the channel layer exists for.
        if !preauth {
            cost.auth_cycles = self.checker.check_cycles(self.mcu.cost_table());
            let authentic = self.charge_stage("prover.auth", cost.auth_cycles, |p| {
                p.checker.check(&message, &request.auth)
            });
            if !authentic {
                self.stats.rejected_auth = self.stats.rejected_auth.saturating_add(1);
                self.finish(cost);
                return Err(AttestError::Rejected(RejectReason::BadAuth));
            }
        }

        // Stage 1b: scope capability. The scope byte is under the
        // authenticator (checked above), so this is a genuine verifier
        // request for a construction we do not serve — rejected before
        // any freshness state is consumed, so the verifier can re-dial
        // with the same counter at whole-memory scope.
        if request.scope == AttestScope::Segmented && self.segcache.is_none() {
            self.stats.rejected_scope = self.stats.rejected_scope.saturating_add(1);
            self.finish(cost);
            return Err(AttestError::Rejected(RejectReason::ScopeUnsupported));
        }
        if let AttestScope::History { since_round } = request.scope {
            // History needs the segment layout (digest granularity) and a
            // trustworthy epoch log. A suspended log — the sealed record
            // failed its seal at boot, or there was none to restore —
            // cannot vouch for rounds before this boot.
            if self.segcache.is_none() || self.history_suspended {
                self.stats.rejected_scope = self.stats.rejected_scope.saturating_add(1);
                self.finish(cost);
                return Err(AttestError::Rejected(RejectReason::ScopeUnsupported));
            }
            // The register is strictly ahead of every completed round, so
            // `since_round >= register` names a round that never happened:
            // either a desynchronized verifier or a splicing attempt.
            // Rejected before freshness state is consumed or any digest
            // work is done, so the verifier can re-dial the same counter
            // at a wider scope.
            if since_round >= self.mcu.epoch() {
                self.stats.rejected_auth = self.stats.rejected_auth.saturating_add(1);
                self.finish(cost);
                return Err(AttestError::Rejected(RejectReason::BadAuth));
            }
        }

        // Stage 2: freshness (§4.2). Service any outstanding clock
        // interrupts first so the SW-clock is up to date, then read the
        // synced time (raw clock + the clock-sync offset, which is zero
        // unless the §7 synchronization service has run).
        self.clock.service_interrupts(&mut self.mcu)?;
        let now = self.synced_now_ms()?;
        cost.freshness_cycles = FRESHNESS_OVERHEAD_CYCLES;
        let freshness_verdict = self.charge_stage("prover.freshness", cost.freshness_cycles, |p| {
            p.policy
                .check_and_update(&request.freshness, &mut p.mcu, now)
        });
        if let Err(e) = freshness_verdict {
            if e.is_rejection() {
                self.stats.rejected_freshness = self.stats.rejected_freshness.saturating_add(1);
            }
            self.finish(cost);
            return Err(e);
        }

        // Stage 3: the expensive part. Whole scope pays the §3.1 ~754 ms
        // full-memory MAC; segmented scope re-digests only dirty segments
        // and pays one short combine MAC.
        let report = match request.scope {
            AttestScope::Whole => self.respond_whole(message, &mut cost)?,
            AttestScope::Segmented => self.respond_segmented(message, &mut cost)?,
            AttestScope::History { since_round } => {
                self.respond_history(message, since_round, &mut cost)?
            }
        };

        // Round boundary: `Code_Attest` advances the epoch register so any
        // write landing after this response stamps the *next* round, then
        // re-seals the log. A full-scope round hands the verifier complete
        // fresh evidence, which lifts any tamper suspension of History.
        self.mcu.advance_epoch(map::ATTEST_PC)?;
        if !matches!(request.scope, AttestScope::History { .. }) {
            self.history_suspended = false;
        }

        self.stats.accepted = self.stats.accepted.saturating_add(1);
        self.finish(cost);
        self.persist_freshness()?;
        self.persist_epoch_log();
        Ok(AttestResponse { report })
    }

    /// Whole-memory response: MAC over the request header followed by all
    /// of RAM (§3.1's 754 ms).
    fn respond_whole(
        &mut self,
        message: Vec<u8>,
        cost: &mut CostBreakdown,
    ) -> Result<Vec<u8>, AttestError> {
        let ram = self.mcu.ram_snapshot(map::ATTEST_PC)?;
        cost.response_cycles = self
            .mcu
            .cost_table()
            .mac_cost(self.config.response_mac, ram.len() + message.len());
        Ok(
            self.charge_stage("prover.attest_mac", cost.response_cycles, |p| {
                let mut macced = message;
                macced.extend_from_slice(&ram);
                p.response_key.compute(&macced)
            }),
        )
    }

    /// Segmented response: scan the hardware dirty bits, re-digest only
    /// the segments that are dirty (or missing from the cache), then MAC
    /// the request header over the full digest list. Each recomputed
    /// segment's dirty bit is acknowledged **as `Code_Attest`, after its
    /// digest is taken** — a write landing later marks it dirty again, so
    /// the cache can go stale-conservative but never stale-trusted.
    fn respond_segmented(
        &mut self,
        message: Vec<u8>,
        cost: &mut CostBreakdown,
    ) -> Result<Vec<u8>, AttestError> {
        // An EA-MPU violation since the cache was last known good means
        // untrusted code probed the trust anchors; drop the cache rather
        // than reason about what it might have influenced.
        if self.mcu.fault_log().len() > self.fault_mark {
            self.invalidate_segcache();
            self.fault_mark = self.mcu.fault_log().len();
        }

        let ram = self.mcu.ram_snapshot(map::ATTEST_PC)?;
        let seg_len = self.mcu.segment_len() as usize;
        let seg_count = self.mcu.segment_count();

        // Scan: one dirty-bit test per segment. A segment is served from
        // cache only when its hardware bit is clear AND a digest is live.
        let scan_cycles = SEG_SCAN_CYCLES * seg_count as u64;
        let todo: Vec<usize> = self.charge_stage("prover.attest_mac.cached", scan_cycles, |p| {
            let cache = p.segcache.as_ref().expect("segmented scope requires cache");
            (0..seg_count)
                .filter(|&i| p.mcu.segment_dirty(i) || !cache.has(i))
                .collect()
        });

        // Recompute: SHA-1 over each stale segment, acknowledging its
        // dirty bit as Code_Attest once the digest is in hand.
        let recompute_cycles: u64 = todo
            .iter()
            .map(|&i| {
                let len = ram[i * seg_len..].len().min(seg_len);
                self.mcu
                    .cost_table()
                    .sha1_digest_cost(segcache::SEGMENT_PREFIX_LEN + len)
            })
            .sum();
        let ack_result: Result<(), AttestError> =
            self.charge_stage("prover.attest_mac.recomputed", recompute_cycles, |p| {
                for &i in &todo {
                    let start = i * seg_len;
                    let end = (start + seg_len).min(ram.len());
                    let digest = segcache::segment_digest(i as u32, &ram[start..end]);
                    p.segcache
                        .as_mut()
                        .expect("segmented scope requires cache")
                        .store(i, digest);
                    p.mcu.acknowledge_segment(i, map::ATTEST_PC)?;
                }
                Ok(())
            });
        ack_result?;

        let cache = self
            .segcache
            .as_ref()
            .expect("segmented scope requires cache");
        let digests = cache
            .all()
            .expect("every segment was scanned or recomputed");
        let cached = seg_count - todo.len();
        cost.mac_recomputed_segments = todo.len() as u32;
        cost.mac_cached_segments = cached as u32;
        self.stats.seg_mac_recomputed = self
            .stats
            .seg_mac_recomputed
            .saturating_add(todo.len() as u64);
        self.stats.seg_mac_cached = self.stats.seg_mac_cached.saturating_add(cached as u64);

        // Combine: one keyed MAC over header ‖ seg-header ‖ digest list —
        // the only per-request cryptography, a few dozen blocks.
        let combined = segcache::combined_input(&message, seg_len as u32, &digests);
        let combine_cycles = self
            .mcu
            .cost_table()
            .mac_cost(self.config.response_mac, combined.len());
        cost.response_cycles = scan_cycles + recompute_cycles + combine_cycles;
        Ok(self.charge_stage("prover.attest_mac", combine_cycles, |p| {
            p.response_key.compute(&combined)
        }))
    }

    /// History response: scan the per-segment last-write epoch log,
    /// re-digest only the segments written since `since_round`, and MAC
    /// the authenticated modified-set bitmap together with those fresh
    /// digests. Unmodified segments ship neither digest nor bytes — the
    /// verifier recomputes expectations from its reference image — so a
    /// quiescent round costs one scan, a couple of segment digests and
    /// one short MAC.
    ///
    /// Soundness: a segment claims "unmodified since round R" iff its
    /// logged epoch is ≤ R, and every write since the round-R response
    /// latched an epoch > R (the register advanced right after round R's
    /// MAC). Transient malware that infects *and restores* a segment
    /// between rounds therefore still lands in the modified set — the
    /// write event is the evidence, even though the restored bytes digest
    /// identically.
    fn respond_history(
        &mut self,
        message: Vec<u8>,
        since_round: u64,
        cost: &mut CostBreakdown,
    ) -> Result<Vec<u8>, AttestError> {
        // Same cache hygiene as the segmented path: an EA-MPU violation
        // since the cache was last known good drops it.
        if self.mcu.fault_log().len() > self.fault_mark {
            self.invalidate_segcache();
            self.fault_mark = self.mcu.fault_log().len();
        }

        let ram = self.mcu.ram_snapshot(map::ATTEST_PC)?;
        let seg_len = self.mcu.segment_len() as usize;
        let seg_count = self.mcu.segment_count();
        let round = self.mcu.epoch();

        // Scan: one epoch compare per segment — a load, a compare and a
        // branch, same cost class as the dirty-bit test.
        let scan_cycles = SEG_SCAN_CYCLES * seg_count as u64;
        let modified: Vec<bool> = self.charge_stage("prover.attest_mac.cached", scan_cycles, |p| {
            (0..seg_count)
                .map(|i| p.mcu.segment_epoch(i) > since_round)
                .collect()
        });
        let todo: Vec<usize> = (0..seg_count).filter(|&i| modified[i]).collect();

        // Recompute fresh digests for the modified set only, warming the
        // shared segment cache and acknowledging dirty bits exactly as the
        // segmented path does.
        let recompute_cycles: u64 = todo
            .iter()
            .map(|&i| {
                let len = ram[i * seg_len..].len().min(seg_len);
                self.mcu
                    .cost_table()
                    .sha1_digest_cost(segcache::SEGMENT_PREFIX_LEN + len)
            })
            .sum();
        let digest_result: Result<Vec<[u8; DIGEST_SIZE]>, AttestError> =
            self.charge_stage("prover.attest_mac.recomputed", recompute_cycles, |p| {
                let mut fresh = Vec::with_capacity(todo.len());
                for &i in &todo {
                    let start = i * seg_len;
                    let end = (start + seg_len).min(ram.len());
                    let digest = segcache::segment_digest(i as u32, &ram[start..end]);
                    if let Some(cache) = p.segcache.as_mut() {
                        cache.store(i, digest);
                    }
                    p.mcu.acknowledge_segment(i, map::ATTEST_PC)?;
                    fresh.push(digest);
                }
                Ok(fresh)
            });
        let modified_digests = digest_result?;

        cost.mac_recomputed_segments = todo.len() as u32;
        cost.mac_cached_segments = (seg_count - todo.len()) as u32;
        self.stats.seg_mac_recomputed = self
            .stats
            .seg_mac_recomputed
            .saturating_add(todo.len() as u64);
        self.stats.seg_mac_cached = self
            .stats
            .seg_mac_cached
            .saturating_add((seg_count - todo.len()) as u64);

        // Combine: one keyed MAC binding the round, the modified-set
        // bitmap and the fresh digests to the authenticated request.
        let report = HistoryReport { round, modified };
        let input = segcache::history_input(&message, seg_len as u32, &report, &modified_digests);
        let combine_cycles = self
            .mcu
            .cost_table()
            .mac_cost(self.config.response_mac, input.len());
        cost.response_cycles = scan_cycles + recompute_cycles + combine_cycles;
        let mac = self.charge_stage("prover.attest_mac", combine_cycles, |p| {
            p.response_key.compute(&input)
        });
        self.stats.history_rounds = self.stats.history_rounds.saturating_add(1);

        let mut out = report.encode();
        out.extend_from_slice(&mac);
        Ok(out)
    }

    /// Drops every cached segment digest. The next segmented response
    /// recomputes from scratch (correctness is unaffected — only cost).
    pub fn clear_segment_cache(&mut self) {
        self.invalidate_segcache();
    }

    /// The segment cache, if segmented mode is configured.
    #[must_use]
    pub fn segment_cache(&self) -> Option<&SegmentCache> {
        self.segcache.as_ref()
    }

    fn invalidate_segcache(&mut self) {
        if let Some(cache) = self.segcache.as_mut() {
            if cache.cached_count() > 0 {
                self.stats.segcache_invalidations =
                    self.stats.segcache_invalidations.saturating_add(1);
            }
            cache.invalidate_all();
        }
    }

    /// Advances the device clock by `cycles` under a telemetry span named
    /// `name`, then runs `f` (host-side work charged to the same stage:
    /// the actual MAC/signature computation whose *cost* the advance
    /// models). The span measures exactly the cycle-clock delta of the
    /// advance, so the per-phase table sums to
    /// [`ProverStats::attestation_cycles`]; with the tracer disabled this
    /// is one flag check and zero device cycles.
    pub(crate) fn charge_stage<R>(
        &mut self,
        name: &'static str,
        cycles: u64,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        use proverguard_telemetry::trace;
        trace::set_now(self.mcu.clock().cycles());
        let span = trace::span(name);
        self.mcu.advance_active(cycles);
        trace::set_now(self.mcu.clock().cycles());
        let result = f(self);
        drop(span);
        result
    }

    fn finish(&mut self, cost: CostBreakdown) {
        self.stats.attestation_cycles = self.stats.attestation_cycles.saturating_add(cost.total());
        // The budget tracks actual spend: accepted requests debit their
        // full MAC cost, rejects only what their check cost.
        if let Some(ctrl) = self.admission.as_mut() {
            ctrl.charge(cost.total());
        }
        self.last_cost = cost;
    }

    /// Cheap pre-auth peek for degraded mode: is the request's freshness
    /// field strictly newer than the protected `counter_R` word? (An
    /// unauthenticated header can of course *claim* freshness — forgeries
    /// still die at the auth check; this gate exists to shed the replayed
    /// and duplicated traffic that dominates storms.)
    fn freshness_peek(&mut self, field: &FreshnessField) -> bool {
        let mut buf = [0u8; 8];
        if self
            .mcu
            .bus_read(map::COUNTER_R.start, &mut buf, map::ATTEST_PC)
            .is_err()
        {
            return false;
        }
        let last = u64::from_le_bytes(buf);
        match field {
            FreshnessField::Counter(c) => *c > last,
            FreshnessField::Timestamp(t) => *t > last,
            FreshnessField::None | FreshnessField::Nonce(_) => false,
        }
    }

    /// Saves the current freshness state into the attached store (no-op
    /// without one). With [`Protection::EaMac`] the record is sealed under
    /// the device key; the [`Protection::Open`] baseline writes it in the
    /// clear — and therefore cannot tell a rollback from the truth.
    fn persist_freshness(&mut self) -> Result<(), AttestError> {
        if self.nv.is_none() {
            return Ok(());
        }
        let synced_ms = self.synced_now_ms()?.unwrap_or(0);
        let mut record = FreshnessRecord::capture(&mut self.mcu, synced_ms)?;
        if let Some(ctrl) = &self.admission {
            let snap = ctrl.snapshot();
            record.admission_tokens = snap.tokens;
            record.admission_refill_mark = snap.refill_mark_cycles;
        }
        let bytes = match self.config.protection {
            Protection::EaMac => record.seal(&self.response_key),
            Protection::Open => record.encode(),
        };
        if let Some(nv) = &mut self.nv {
            nv.save(&bytes);
        }
        Ok(())
    }

    /// Power-cycles the device and re-runs the boot path: volatile state
    /// (RAM, MPU, IRQ, clocks) is lost exactly as [`Mcu::reset`] defines,
    /// secure boot re-verifies the flash image against the provisioning
    /// reference, and the freshness record — if an attached store holds a
    /// valid one — is restored *before* the EA-MPU locks.
    ///
    /// This is the honest-reboot counterpart of `Adv_roam`'s reset attack:
    /// with a sealed record the counter survives and old requests stay
    /// replay-protected; without one (or with the unsealed baseline) the
    /// counter rolls back to whatever the store says, or to zero.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] / [`AttestError::Crypto`] if the boot path
    /// itself fails (e.g. secure boot rejects a modified image).
    pub fn reboot(&mut self) -> Result<RecoveryOutcome, AttestError> {
        // What the store says, judged before anything else: the decision
        // is made on non-volatile data only.
        let outcome = match &self.nv {
            None => RecoveryOutcome::NoStore,
            Some(nv) => match nv.load() {
                None => RecoveryOutcome::Empty,
                Some(bytes) => {
                    let record = match self.config.protection {
                        Protection::EaMac => {
                            FreshnessRecord::open_sealed(&bytes, &self.response_key)
                        }
                        Protection::Open => FreshnessRecord::decode(&bytes),
                    };
                    match record {
                        Some(r) => RecoveryOutcome::Restored(r),
                        None => RecoveryOutcome::TamperDetected,
                    }
                }
            },
        };

        // Power cycle: volatile state is gone.
        self.mcu.reset();

        // The boot loader re-creates what provisioning set up in RAM.
        if self.config.clock == ClockKind::Software {
            self.mcu
                .install_idt_entry(TIMER_WRAP_VECTOR, CLOCK_HANDLER_ADDR)?;
        }
        if let RecoveryOutcome::Restored(record) = &outcome {
            // Restore while the MPU is still unlocked, as boot code.
            record.restore(&mut self.mcu, map::BOOT_PC)?;
        }
        if self.config.protection == Protection::EaMac {
            self.mcu
                .install_entry_point(map::ATTEST_CODE, map::ATTEST_CODE.start);
            self.mcu
                .install_entry_point(map::CLOCK_CODE, CLOCK_HANDLER_ADDR);
            let rules = rules_for(self.config.protection, self.config.clock);
            match self.load_journal() {
                // No journal: the pre-OTA contract — a digest mismatch
                // refuses to boot and the error propagates.
                None => {
                    SecureBoot::new(self.boot_reference).run(&mut self.mcu, &rules)?;
                    self.boot_health = BootHealth::Healthy;
                }
                Some(journal) => {
                    let digest = image_digest(self.mcu.physical_memory().flash());
                    if digest == journal.active_digest {
                        // Committed image in place: a normal boot. If a
                        // completed update was journalled as mirrored,
                        // the boot loader re-kicks the DMA install.
                        SecureBoot::new(journal.active_digest).run(&mut self.mcu, &rules)?;
                        self.boot_reference = journal.active_digest;
                        self.boot_health = BootHealth::Healthy;
                        if journal.mirrored {
                            self.mcu.dma_copy_flash_to_ram(
                                0,
                                map::APP_IMAGE_MIRROR.start,
                                map::APP_IMAGE_MIRROR.len(),
                            )?;
                        }
                    } else if journal.in_progress && digest == journal.target_digest {
                        // Power died between the last programmed byte and
                        // the commit journal write: the image is whole, so
                        // commit it now.
                        SecureBoot::new(journal.target_digest).run(&mut self.mcu, &rules)?;
                        self.boot_reference = journal.target_digest;
                        self.boot_health = BootHealth::Healthy;
                        self.mcu.dma_copy_flash_to_ram(
                            0,
                            map::APP_IMAGE_MIRROR.start,
                            map::APP_IMAGE_MIRROR.len(),
                        )?;
                        self.persist_journal(&UpdateJournal {
                            active_digest: digest,
                            target_digest: digest,
                            in_progress: false,
                            mirrored: true,
                        });
                    } else {
                        // Torn flash: neither image. Recovery boot arms
                        // the protections without the digest check and
                        // still installs the execute-from-RAM shadow of
                        // whatever the flash holds — so the next
                        // attestation covers the *torn* bytes and can
                        // verify as neither the old nor the new image.
                        SecureBoot::new(journal.active_digest)
                            .run_recovery(&mut self.mcu, &rules)?;
                        self.mcu.dma_copy_flash_to_ram(
                            0,
                            map::APP_IMAGE_MIRROR.start,
                            map::APP_IMAGE_MIRROR.len(),
                        )?;
                        self.boot_reference = journal.active_digest;
                        self.boot_health = BootHealth::Recovery;
                    }
                }
            }
        }

        // Epoch-log recovery, judged like the freshness record on
        // non-volatile data only. A valid sealed record restores the round
        // register monotonically — and stamps every segment at the
        // restored round, since the wipe rewrote every byte of RAM — so
        // History claims about pre-reboot rounds stay sound. Anything else
        // (no store, empty, failed seal) means the log cannot vouch for
        // older rounds: History is suspended until a full-scope round
        // re-establishes ground truth, and a failed seal additionally
        // counts as a detected rollback/forgery.
        self.history_suspended = true;
        if self.epoch_nv.as_ref().and_then(|nv| nv.load()).is_some() {
            match self.load_epoch_log() {
                Some(record) => {
                    self.mcu.restore_epoch(record.epoch, map::BOOT_PC)?;
                    self.history_suspended = false;
                    self.persist_epoch_log();
                }
                None => {
                    self.stats.epoch_recovery_failures =
                        self.stats.epoch_recovery_failures.saturating_add(1);
                }
            }
        }

        // Host-side mirrors of volatile state start over too. The segment
        // cache is volatile by design — it is NOT part of the sealed
        // freshness record, so an honest reboot (like Adv_roam's reset)
        // forces a full recomputation on the next segmented attestation.
        self.policy = FreshnessPolicy::new(self.config.freshness);
        self.clock = ProverClock::new(self.config.clock);
        self.last_cost = CostBreakdown::default();
        self.invalidate_segcache();
        self.fault_mark = self.mcu.fault_log().len();

        // The admission budget is restored from the (seal-verified)
        // record; anything else — no store, empty, tampered — reboots
        // into an *empty* bucket so power-cycling never refills it. The
        // cycle clock survives reset, so legitimately elapsed time is
        // still credited at the next refill.
        if let Some(ctrl) = self.admission.as_mut() {
            let now_cycles = self.mcu.clock().cycles();
            if let RecoveryOutcome::Restored(record) = &outcome {
                ctrl.restore(
                    AdmissionSnapshot {
                        tokens: record.admission_tokens,
                        refill_mark_cycles: record.admission_refill_mark,
                    },
                    now_cycles,
                );
            } else {
                ctrl.reset_empty(now_cycles);
            }
        }

        self.stats.reboots = self.stats.reboots.saturating_add(1);
        if outcome == RecoveryOutcome::TamperDetected {
            self.stats.recovery_failures = self.stats.recovery_failures.saturating_add(1);
        }
        Ok(outcome)
    }

    /// The memory image a verifier should expect (test oracle: the
    /// device's actual RAM, via the hardware view). In a real deployment
    /// the verifier derives this from the provisioned software.
    #[must_use]
    pub fn expected_memory(&self) -> &[u8] {
        self.mcu.physical_memory().ram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::Verifier;

    const KEY: [u8; 16] = [0x42; 16];

    fn pair(config: ProverConfig) -> (Prover, Verifier) {
        let prover = Prover::provision(config.clone(), &KEY, b"app v1").unwrap();
        let verifier = Verifier::new(&config, &KEY).unwrap();
        (prover, verifier)
    }

    #[test]
    fn end_to_end_recommended_config() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended());
        for _ in 0..3 {
            let req = verifier.make_request().unwrap();
            let resp = prover.handle_request(&req).unwrap();
            assert!(verifier.check_response(&req, &resp, prover.expected_memory()));
        }
        assert_eq!(prover.stats().accepted, 3);
    }

    #[test]
    fn forged_request_rejected_cheaply() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended());
        let mut req = verifier.make_request().unwrap();
        req.auth = vec![0; req.auth.len()];
        let err = prover.handle_request(&req).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::BadAuth));
        // The rejection cost only the auth check, not the memory MAC.
        assert_eq!(prover.last_cost().response_cycles, 0);
        assert!(prover.last_cost().total_ms() < 1.0);
    }

    #[test]
    fn accepted_request_costs_hundreds_of_ms() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended());
        let req = verifier.make_request().unwrap();
        prover.handle_request(&req).unwrap();
        // §3.1: ~754 ms for the 512 KB memory MAC.
        let ms = prover.last_cost().total_ms();
        assert!((700.0..900.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn replayed_request_rejected_by_counter() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended());
        let req = verifier.make_request().unwrap();
        prover.handle_request(&req).unwrap();
        let err = prover.handle_request(&req).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::StaleCounter));
        assert_eq!(prover.stats().rejected_freshness, 1);
    }

    #[test]
    fn timestamp_config_works_with_hw_clock() {
        let (mut prover, mut verifier) = pair(ProverConfig::timestamp_hw64());
        // Let both clocks advance together.
        prover.advance_time_ms(1000).unwrap();
        verifier.advance_time_ms(1000);
        let req = verifier.make_request().unwrap();
        prover.handle_request(&req).unwrap();
        // A replay a second later is out of the window AND non-monotonic.
        prover.advance_time_ms(1000).unwrap();
        verifier.advance_time_ms(1000);
        let err = prover.handle_request(&req).unwrap_err();
        assert!(err.is_rejection());
    }

    #[test]
    fn timestamp_config_works_with_sw_clock() {
        let (mut prover, mut verifier) = pair(ProverConfig::timestamp_sw_clock());
        prover.advance_time_ms(2000).unwrap();
        verifier.advance_time_ms(2000);
        let req = verifier.make_request().unwrap();
        prover.handle_request(&req).unwrap();
        assert_eq!(prover.stats().accepted, 1);
    }

    #[test]
    fn timestamp_without_clock_is_bad_config() {
        let mut config = ProverConfig::recommended();
        config.freshness = FreshnessKind::Timestamp;
        config.clock = ClockKind::None;
        assert!(matches!(
            Prover::provision(config, &KEY, b"app"),
            Err(AttestError::BadConfig { .. })
        ));
    }

    #[test]
    fn unprotected_prover_answers_anything() {
        let (mut prover, _) = pair(ProverConfig::unprotected());
        // A completely bogus request — no auth, no freshness.
        let bogus = AttestRequest {
            scope: AttestScope::Whole,
            freshness: crate::message::FreshnessField::None,
            challenge: [0; 16],
            auth: Vec::new(),
        };
        // The prover does the full expensive attestation. DoS achieved.
        prover.handle_request(&bogus).unwrap();
        assert_eq!(prover.stats().accepted, 1);
        assert!(prover.last_cost().total_ms() > 700.0);
    }

    #[test]
    fn protected_key_unreadable_by_app_code() {
        let (mut prover, _) = pair(ProverConfig::recommended());
        assert!(prover.mcu_mut().read_attest_key(map::APP_CODE).is_err());
        // But Code_Attest read it fine during provisioning (we got here).
    }

    #[test]
    fn segmented_repeat_attestation_is_cheap_and_verifies() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        // First segmented attestation: everything is dirty, full cost.
        let req = verifier.make_request().unwrap();
        assert_eq!(req.scope, AttestScope::Segmented);
        let resp = prover.handle_request(&req).unwrap();
        assert!(verifier.check_response(&req, &resp, prover.expected_memory()));
        let first = *prover.last_cost();
        assert!(first.mac_recomputed_segments > 0);

        // Nothing written since (the freshness commit dirties only the
        // counter_R segment): the repeat re-digests just that one segment.
        let req = verifier.make_request().unwrap();
        let resp = prover.handle_request(&req).unwrap();
        assert!(verifier.check_response(&req, &resp, prover.expected_memory()));
        let second = *prover.last_cost();
        assert_eq!(second.mac_recomputed_segments, 1);
        assert!(
            second.response_cycles < first.response_cycles / 6,
            "repeat cost {} vs first {}",
            second.response_cycles,
            first.response_cycles
        );
    }

    #[test]
    fn segmented_tracks_app_writes() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        let req = verifier.make_request().unwrap();
        prover.handle_request(&req).unwrap();

        // Application code modifies RAM in a segment well away from
        // counter_R's; the next report must reflect it.
        prover
            .mcu_mut()
            .bus_write(map::RAM.start + 3 * 8192 + 64, &[0xEE; 100], map::APP_CODE)
            .unwrap();
        let req = verifier.make_request().unwrap();
        let resp = prover.handle_request(&req).unwrap();
        assert!(verifier.check_response(&req, &resp, prover.expected_memory()));
        // counter_R segment + the written segment were re-digested.
        assert_eq!(prover.last_cost().mac_recomputed_segments, 2);
    }

    #[test]
    fn segmented_scope_rejected_without_cache() {
        let (mut prover, _) = pair(ProverConfig::recommended());
        let (_, mut seg_verifier) = pair(ProverConfig::recommended_segmented());
        let req = seg_verifier.make_request().unwrap();
        let err = prover.handle_request(&req).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::ScopeUnsupported));
        assert_eq!(prover.stats().rejected_scope, 1);
        // Rejected after auth but before freshness: no counter burned, no
        // memory work done.
        assert_eq!(prover.last_cost().response_cycles, 0);
        let s = prover.stats();
        assert_eq!(s.requests_seen, s.accepted + s.rejected_total());
    }

    #[test]
    fn reboot_invalidates_segment_cache() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        let req = verifier.make_request().unwrap();
        prover.handle_request(&req).unwrap();
        assert!(prover.segment_cache().unwrap().cached_count() > 0);

        prover.reboot().unwrap();
        assert_eq!(prover.segment_cache().unwrap().cached_count(), 0);
        assert_eq!(prover.stats().segcache_invalidations, 1);

        // Without an NV store the counter rolled back; redial with a fresh
        // verifier state to confirm the post-reboot full recompute still
        // verifies. (RAM was wiped, so the expected image changed too.)
        let req = verifier.make_request().unwrap();
        let resp = prover.handle_request(&req).unwrap();
        assert!(verifier.check_response(&req, &resp, prover.expected_memory()));
        assert!(prover.last_cost().mac_recomputed_segments as usize > 1);
    }

    #[test]
    fn mpu_violation_invalidates_segment_cache() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        let req = verifier.make_request().unwrap();
        prover.handle_request(&req).unwrap();
        let cached_before = prover.segment_cache().unwrap().cached_count();
        assert!(cached_before > 0);

        // Untrusted code pokes at the protected counter word — EA-MPU
        // fault, logged. The next segmented response drops the cache.
        let _ = prover
            .mcu_mut()
            .bus_write(map::COUNTER_R.start, &[0; 8], map::APP_CODE);
        assert!(!prover.mcu().fault_log().is_empty());

        let req = verifier.make_request().unwrap();
        let resp = prover.handle_request(&req).unwrap();
        assert!(verifier.check_response(&req, &resp, prover.expected_memory()));
        assert_eq!(prover.stats().segcache_invalidations, 1);
        // Everything was recomputed from scratch.
        assert_eq!(
            prover.last_cost().mac_recomputed_segments as usize,
            prover.segment_cache().unwrap().segment_count()
        );
    }

    #[test]
    fn segmented_digest_matches_from_scratch_oracle() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        for _ in 0..3 {
            let req = verifier.make_request().unwrap();
            prover.handle_request(&req).unwrap();
            let oracle = crate::segcache::segment_digests(
                prover.expected_memory(),
                prover.segment_cache().unwrap().segment_len(),
            );
            assert_eq!(prover.segment_cache().unwrap().all().unwrap(), oracle);
            prover
                .mcu_mut()
                .bus_write(map::APP_RAM.start + 64, &[1, 2, 3], map::APP_CODE)
                .unwrap();
        }
    }

    #[test]
    fn bad_segment_len_is_bad_config() {
        let mut config = ProverConfig::recommended_segmented();
        config.segmented = Some(crate::segcache::SegmentedParams { segment_len: 100 });
        assert!(matches!(
            Prover::provision(config, &KEY, b"app"),
            Err(AttestError::BadConfig { .. })
        ));
    }

    #[test]
    fn stats_accumulate() {
        let (mut prover, mut verifier) = pair(ProverConfig::recommended());
        let good = verifier.make_request().unwrap();
        prover.handle_request(&good).unwrap();
        let mut forged = verifier.make_request().unwrap();
        forged.auth = vec![0; forged.auth.len()];
        let _ = prover.handle_request(&forged);
        let _ = prover.handle_request(&good); // replay
        let s = prover.stats();
        assert_eq!(s.requests_seen, 3);
        assert_eq!(s.accepted, 1);
        assert_eq!(s.rejected_auth, 1);
        assert_eq!(s.rejected_freshness, 1);
        assert!(s.attestation_cycles > 0);
    }

    /// Runs one round under the verifier's scope policy and asserts it
    /// verifies; returns the request that was used.
    fn round(prover: &mut Prover, verifier: &mut Verifier) -> crate::message::AttestRequest {
        let req = verifier.make_request().unwrap();
        let resp = prover.handle_request(&req).unwrap();
        let expected = prover.expected_memory().to_vec();
        assert!(verifier.check_response(&req, &resp, &expected));
        verifier.note_verified(&req, &resp, &expected);
        req
    }

    #[test]
    fn history_rounds_advance_and_stay_cheap_when_quiescent() {
        use crate::verifier::ScopePolicy;
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });

        // Bootstrap: since_round = 0, every segment reports modified.
        let req = round(&mut prover, &mut verifier);
        assert!(matches!(req.scope, AttestScope::History { since_round: 0 }));
        let seg_count = prover.segment_cache().unwrap().segment_count();
        assert_eq!(
            prover.last_cost().mac_recomputed_segments as usize,
            seg_count
        );
        assert_eq!(verifier.last_verified_round(), Some(1));
        assert_eq!(prover.current_round(), 2);

        // Quiescent follow-up: only the freshness commit's segment was
        // written since round 1, so exactly one digest is recomputed.
        let req = round(&mut prover, &mut verifier);
        assert!(matches!(req.scope, AttestScope::History { since_round: 1 }));
        assert_eq!(prover.last_cost().mac_recomputed_segments, 1);
        assert_eq!(verifier.last_history().unwrap().modified.len(), 1);
        assert_eq!(prover.stats().history_rounds, 2);
    }

    #[test]
    fn history_flags_transiently_restored_segment() {
        use crate::verifier::ScopePolicy;
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
        round(&mut prover, &mut verifier); // bootstrap

        // Transient malware: infect a segment, act, then restore the
        // original bytes before the next round. Content is back, but the
        // writes latched epochs.
        let addr = map::RAM.start + 5 * 8192 + 16;
        let mut original = [0u8; 32];
        prover
            .mcu_mut()
            .bus_read(addr, &mut original, map::APP_CODE)
            .unwrap();
        prover
            .mcu_mut()
            .bus_write(addr, &[0xBA; 32], map::APP_CODE)
            .unwrap();
        prover
            .mcu_mut()
            .bus_write(addr, &original, map::APP_CODE)
            .unwrap();

        round(&mut prover, &mut verifier);
        let outcome = verifier.last_history().unwrap();
        assert!(
            outcome.modified.contains(&5),
            "restored segment must appear in the authenticated modified set: {:?}",
            outcome.modified
        );
    }

    #[test]
    fn future_since_round_rejected_before_freshness() {
        use crate::message::AttestRequest;
        let (mut prover, verifier) = pair(ProverConfig::recommended_segmented());
        let signer = RequestSigner::new(verifier.auth_method(), &KEY).unwrap();
        let mut req = AttestRequest {
            scope: AttestScope::History { since_round: 99 },
            freshness: FreshnessField::Counter(1),
            challenge: [7; 16],
            auth: Vec::new(),
        };
        req.auth = signer.sign(&req.signed_bytes());
        let err = prover.handle_request(&req).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::BadAuth));
        // No freshness state burned, no digest work done.
        assert_eq!(prover.last_cost().response_cycles, 0);
        // The same counter re-dials fine at a servable window.
        req.scope = AttestScope::History { since_round: 0 };
        req.auth = signer.sign(&req.signed_bytes());
        prover.handle_request(&req).unwrap();
    }

    #[test]
    fn epoch_log_survives_reboot_via_sealed_record() {
        use crate::persist::InMemoryNvStore;
        use crate::verifier::ScopePolicy;
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        prover.attach_epoch_log_store(Box::new(InMemoryNvStore::default()));
        prover
            .attach_nv_store(Box::new(InMemoryNvStore::default()))
            .unwrap();
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
        round(&mut prover, &mut verifier);
        round(&mut prover, &mut verifier);
        let pre_reboot_round = prover.current_round();

        prover.reboot().unwrap();
        assert!(!prover.history_suspended());
        // Monotonic restore: the register never went backwards, so the
        // verifier's remembered round is still strictly in the past.
        assert!(prover.current_round() >= pre_reboot_round);

        // The verifier's next History round self-heals: everything was
        // stamped at the restored round, so it is a full-coverage round.
        round(&mut prover, &mut verifier);
        let seg_count = prover.segment_cache().unwrap().segment_count();
        assert_eq!(
            prover.last_cost().mac_recomputed_segments as usize,
            seg_count
        );
    }

    #[test]
    fn tampered_epoch_log_suspends_history_until_full_round() {
        use crate::persist::{InMemoryNvStore, SharedNvStore};
        use crate::verifier::ScopePolicy;
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        let store = SharedNvStore::new();
        prover.attach_epoch_log_store(Box::new(store.clone()));
        prover
            .attach_nv_store(Box::new(InMemoryNvStore::default()))
            .unwrap();
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
        round(&mut prover, &mut verifier);

        // Flip one bit in the sealed record: the rollback/forgery case.
        let mut raw = store.raw().unwrap();
        *raw.last_mut().unwrap() ^= 1;
        store.overwrite(Some(raw));

        prover.reboot().unwrap();
        assert!(prover.history_suspended());
        assert_eq!(prover.stats().epoch_recovery_failures, 1);

        // The History request is refused; the verifier falls back to a
        // full Segmented round, which lifts the suspension, then History
        // re-bootstraps from zero.
        let req = verifier.make_request().unwrap();
        assert!(matches!(req.scope, AttestScope::History { .. }));
        let err = prover.handle_request(&req).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::ScopeUnsupported));
        verifier.note_failed(&req);

        let req = round(&mut prover, &mut verifier);
        assert_eq!(req.scope, AttestScope::Segmented);
        assert!(!prover.history_suspended());
        let req = round(&mut prover, &mut verifier);
        assert!(matches!(req.scope, AttestScope::History { since_round: 0 }));
    }

    #[test]
    fn reboot_without_epoch_store_suspends_history() {
        use crate::verifier::ScopePolicy;
        let (mut prover, mut verifier) = pair(ProverConfig::recommended_segmented());
        prover
            .attach_nv_store(Box::new(crate::persist::InMemoryNvStore::default()))
            .unwrap();
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
        round(&mut prover, &mut verifier);
        prover.reboot().unwrap();
        // Rounds before this boot are unprovable without the sealed log.
        assert!(prover.history_suspended());
        let req = verifier.make_request().unwrap();
        let err = prover.handle_request(&req).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::ScopeUnsupported));
        assert!(prover.stats().rejected_scope >= 1);
        let s = prover.stats();
        assert_eq!(s.requests_seen, s.accepted + s.rejected_total());
    }
}
