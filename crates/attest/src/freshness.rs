//! Freshness policies (§4.2, Table 2).
//!
//! | policy        | replay | reorder | delay | prover cost |
//! |---------------|--------|---------|-------|-------------|
//! | nonce history | ✓      | –       | –     | unbounded non-volatile memory |
//! | counter       | ✓      | ✓       | –     | one protected word (`counter_R`) |
//! | timestamp     | ✓      | ✓       | ✓     | a protected real-time clock |
//!
//! The counter and the timestamp policies keep their persistent word in
//! the device's `counter_R` RAM cell and access it **through the bus as
//! `Code_Attest`**, so the EA-MPU rules of §6 genuinely gate the state
//! that `Adv_roam` wants to roll back.

use proverguard_mcu::device::Mcu;
use proverguard_mcu::map;

use crate::error::{AttestError, RejectReason};
use crate::message::{FreshnessField, NONCE_SIZE};

/// Which freshness mechanism the deployment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreshnessKind {
    /// Accept everything (vulnerable strawman).
    None,
    /// Verifier nonces, prover keeps a complete history.
    NonceHistory,
    /// Monotonically increasing counter.
    Counter,
    /// Verifier timestamps checked against the prover clock.
    Timestamp,
}

impl std::fmt::Display for FreshnessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreshnessKind::None => write!(f, "none"),
            FreshnessKind::NonceHistory => write!(f, "nonces"),
            FreshnessKind::Counter => write!(f, "counter"),
            FreshnessKind::Timestamp => write!(f, "timestamps"),
        }
    }
}

/// Default acceptance window for timestamps (maximum tolerated delivery
/// delay and clock skew), in milliseconds.
pub const DEFAULT_MAX_DELAY_MS: u64 = 500;

/// Prover-side freshness state.
#[derive(Debug, Clone)]
pub enum FreshnessPolicy {
    /// No freshness checking.
    None,
    /// Complete nonce history (the paper's memory-hungry option).
    NonceHistory {
        /// Every nonce ever accepted.
        seen: Vec<[u8; NONCE_SIZE]>,
    },
    /// Monotonic counter; persistent state lives in `counter_R`.
    Counter,
    /// Timestamp window; the last accepted timestamp lives in `counter_R`.
    Timestamp {
        /// Maximum tolerated `|now - t|` in milliseconds.
        max_delay_ms: u64,
    },
}

impl FreshnessPolicy {
    /// Builds the policy for `kind` with default parameters.
    #[must_use]
    pub fn new(kind: FreshnessKind) -> Self {
        match kind {
            FreshnessKind::None => FreshnessPolicy::None,
            FreshnessKind::NonceHistory => FreshnessPolicy::NonceHistory { seen: Vec::new() },
            FreshnessKind::Counter => FreshnessPolicy::Counter,
            FreshnessKind::Timestamp => FreshnessPolicy::Timestamp {
                max_delay_ms: DEFAULT_MAX_DELAY_MS,
            },
        }
    }

    /// The kind of this policy.
    #[must_use]
    pub fn kind(&self) -> FreshnessKind {
        match self {
            FreshnessPolicy::None => FreshnessKind::None,
            FreshnessPolicy::NonceHistory { .. } => FreshnessKind::NonceHistory,
            FreshnessPolicy::Counter => FreshnessKind::Counter,
            FreshnessPolicy::Timestamp { .. } => FreshnessKind::Timestamp,
        }
    }

    /// Non-volatile bytes the policy state occupies on the prover — the
    /// §4.2 argument against nonce histories ("a lot of non-volatile
    /// memory") made measurable.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        match self {
            FreshnessPolicy::None => 0,
            FreshnessPolicy::NonceHistory { seen } => seen.len() * NONCE_SIZE,
            // One 8-byte protected word.
            FreshnessPolicy::Counter | FreshnessPolicy::Timestamp { .. } => 8,
        }
    }

    /// Checks `field` and, if fresh, commits the new state.
    ///
    /// `now_ms` must be `Some` for the timestamp policy (the prover reads
    /// its clock first).
    ///
    /// # Errors
    ///
    /// - [`AttestError::Rejected`] when the request is stale (this is the
    ///   defence working).
    /// - [`AttestError::Device`] if the EA-MPU denies the `counter_R`
    ///   access (misconfigured trust anchor).
    /// - [`AttestError::MissingClock`] for timestamps without `now_ms`.
    pub fn check_and_update(
        &mut self,
        field: &FreshnessField,
        mcu: &mut Mcu,
        now_ms: Option<u64>,
    ) -> Result<(), AttestError> {
        match self {
            FreshnessPolicy::None => Ok(()),
            FreshnessPolicy::NonceHistory { seen } => {
                let FreshnessField::Nonce(nonce) = field else {
                    return Err(AttestError::Rejected(RejectReason::FreshnessKindMismatch));
                };
                if seen.contains(nonce) {
                    return Err(AttestError::Rejected(RejectReason::NonceReused));
                }
                seen.push(*nonce);
                Ok(())
            }
            FreshnessPolicy::Counter => {
                let FreshnessField::Counter(c) = field else {
                    return Err(AttestError::Rejected(RejectReason::FreshnessKindMismatch));
                };
                let stored = read_counter_r(mcu)?;
                if *c <= stored {
                    return Err(AttestError::Rejected(RejectReason::StaleCounter));
                }
                write_counter_r(mcu, *c)?;
                Ok(())
            }
            FreshnessPolicy::Timestamp { max_delay_ms } => {
                let FreshnessField::Timestamp(t) = field else {
                    return Err(AttestError::Rejected(RejectReason::FreshnessKindMismatch));
                };
                let now = now_ms.ok_or(AttestError::MissingClock)?;
                let last = read_counter_r(mcu)?;
                if *t <= last {
                    return Err(AttestError::Rejected(RejectReason::TimestampNotMonotonic));
                }
                let delay = now.abs_diff(*t);
                if delay > *max_delay_ms {
                    return Err(AttestError::Rejected(RejectReason::TimestampOutOfWindow));
                }
                write_counter_r(mcu, *t)?;
                Ok(())
            }
        }
    }
}

/// Patches a verifier-side expected RAM image so its `counter_R` word
/// matches what the prover will have committed by response time: the
/// prover writes the request's counter/timestamp into `counter_R`
/// *before* MACing memory, so every expected image must carry the same
/// value at the same offset. Nonce and no-freshness requests leave
/// `counter_R` untouched and this is a no-op.
///
/// This is the single shared implementation of the word-offset arithmetic
/// that the gateway, examples and integration tests all need.
pub fn patch_expected_image(image: &mut [u8], field: &FreshnessField) {
    let value = match field {
        FreshnessField::Counter(c) => *c,
        FreshnessField::Timestamp(t) => *t,
        FreshnessField::None | FreshnessField::Nonce(_) => return,
    };
    let off = (map::COUNTER_R.start - map::RAM.start) as usize;
    if image.len() >= off + 8 {
        image[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }
}

/// Byte offset of the `counter_R` word inside an expected RAM image.
#[must_use]
pub fn counter_r_offset() -> usize {
    (map::COUNTER_R.start - map::RAM.start) as usize
}

/// Like [`patch_expected_image`], but reports which segment (at
/// `segment_len`-byte granularity) the patch wrote into, so an
/// image-digest cache can re-derive exactly one segment digest instead of
/// sweeping the whole image. Returns `None` when the image was left
/// untouched (nonce / no-freshness field, or an image too short to hold
/// the word) or when `segment_len` is zero (no digest granularity in
/// effect).
pub fn patch_expected_image_tracked(
    image: &mut [u8],
    field: &FreshnessField,
    segment_len: u32,
) -> Option<usize> {
    let touches = matches!(
        field,
        FreshnessField::Counter(_) | FreshnessField::Timestamp(_)
    );
    patch_expected_image(image, field);
    let off = counter_r_offset();
    if !touches || segment_len == 0 || image.len() < off + 8 {
        return None;
    }
    Some(off / segment_len as usize)
}

/// Patches a verifier-side expected RAM image so its gated-command
/// counter word (third `TRUST_STATE` word) matches what the prover
/// committed when it executed the command. An attestation taken *after*
/// an `UpdateFirmware` must expect the counter that update consumed —
/// the campaign path resolves that per device, per wave.
pub fn patch_expected_command_counter(image: &mut [u8], counter: u64) {
    let off = (map::TRUST_STATE.start + 16 - map::RAM.start) as usize;
    if image.len() >= off + 8 {
        image[off..off + 8].copy_from_slice(&counter.to_le_bytes());
    }
}

/// Reads the protected `counter_R` word as `Code_Attest`.
///
/// # Errors
///
/// [`AttestError::Device`] if the EA-MPU denies the read.
pub fn read_counter_r(mcu: &mut Mcu) -> Result<u64, AttestError> {
    let mut buf = [0u8; 8];
    mcu.bus_read(map::COUNTER_R.start, &mut buf, map::ATTEST_PC)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes the protected `counter_R` word as `Code_Attest`.
///
/// # Errors
///
/// [`AttestError::Device`] if the EA-MPU denies the write.
pub fn write_counter_r(mcu: &mut Mcu, value: u64) -> Result<(), AttestError> {
    mcu.bus_write(map::COUNTER_R.start, &value.to_le_bytes(), map::ATTEST_PC)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mcu() -> Mcu {
        Mcu::new()
    }

    #[test]
    fn none_accepts_any_field() {
        let mut p = FreshnessPolicy::new(FreshnessKind::None);
        let mut m = mcu();
        for field in [
            FreshnessField::None,
            FreshnessField::Counter(0),
            FreshnessField::Timestamp(0),
            FreshnessField::Nonce([0; 16]),
        ] {
            assert!(p.check_and_update(&field, &mut m, None).is_ok());
        }
    }

    #[test]
    fn nonce_history_detects_replay_only() {
        let mut p = FreshnessPolicy::new(FreshnessKind::NonceHistory);
        let mut m = mcu();
        let n1 = FreshnessField::Nonce([1; 16]);
        let n2 = FreshnessField::Nonce([2; 16]);
        assert!(p.check_and_update(&n1, &mut m, None).is_ok());
        assert!(p.check_and_update(&n2, &mut m, None).is_ok());
        // Replay detected.
        let err = p.check_and_update(&n1, &mut m, None).unwrap_err();
        assert_eq!(err.reject_reason(), Some(RejectReason::NonceReused));
        // Storage grows linearly — the paper's complaint.
        assert_eq!(p.storage_bytes(), 2 * NONCE_SIZE);
    }

    #[test]
    fn counter_detects_replay_and_reorder() {
        let mut p = FreshnessPolicy::new(FreshnessKind::Counter);
        let mut m = mcu();
        assert!(p
            .check_and_update(&FreshnessField::Counter(5), &mut m, None)
            .is_ok());
        // Replay (same counter).
        let e = p
            .check_and_update(&FreshnessField::Counter(5), &mut m, None)
            .unwrap_err();
        assert_eq!(e.reject_reason(), Some(RejectReason::StaleCounter));
        // Reorder (older counter).
        let e = p
            .check_and_update(&FreshnessField::Counter(3), &mut m, None)
            .unwrap_err();
        assert_eq!(e.reject_reason(), Some(RejectReason::StaleCounter));
        // Progress.
        assert!(p
            .check_and_update(&FreshnessField::Counter(6), &mut m, None)
            .is_ok());
        assert_eq!(read_counter_r(&mut m).unwrap(), 6);
    }

    #[test]
    fn counter_state_lives_in_device_ram() {
        let mut p = FreshnessPolicy::new(FreshnessKind::Counter);
        let mut m = mcu();
        p.check_and_update(&FreshnessField::Counter(9), &mut m, None)
            .unwrap();
        // Roll the device word back — the policy must now accept a replay
        // (this is exactly Adv_roam's counter attack in §5).
        write_counter_r(&mut m, 8).unwrap();
        assert!(p
            .check_and_update(&FreshnessField::Counter(9), &mut m, None)
            .is_ok());
    }

    #[test]
    fn timestamp_detects_replay_reorder_and_delay() {
        let mut p = FreshnessPolicy::new(FreshnessKind::Timestamp);
        let mut m = mcu();
        // Genuine request at t=1000, clock says 1100.
        assert!(p
            .check_and_update(&FreshnessField::Timestamp(1000), &mut m, Some(1100))
            .is_ok());
        // Replay later: not monotonic.
        let e = p
            .check_and_update(&FreshnessField::Timestamp(1000), &mut m, Some(2000))
            .unwrap_err();
        assert_eq!(e.reject_reason(), Some(RejectReason::TimestampNotMonotonic));
        // Delayed request: t=1500 delivered when clock reads 9999.
        let e = p
            .check_and_update(&FreshnessField::Timestamp(1500), &mut m, Some(9999))
            .unwrap_err();
        assert_eq!(e.reject_reason(), Some(RejectReason::TimestampOutOfWindow));
        // Fresh request inside the window.
        assert!(p
            .check_and_update(&FreshnessField::Timestamp(10_000), &mut m, Some(10_100))
            .is_ok());
    }

    #[test]
    fn timestamp_rejects_far_future() {
        let mut p = FreshnessPolicy::new(FreshnessKind::Timestamp);
        let mut m = mcu();
        let e = p
            .check_and_update(&FreshnessField::Timestamp(50_000), &mut m, Some(1000))
            .unwrap_err();
        assert_eq!(e.reject_reason(), Some(RejectReason::TimestampOutOfWindow));
    }

    #[test]
    fn timestamp_requires_clock() {
        let mut p = FreshnessPolicy::new(FreshnessKind::Timestamp);
        let mut m = mcu();
        let e = p
            .check_and_update(&FreshnessField::Timestamp(1), &mut m, None)
            .unwrap_err();
        assert!(matches!(e, AttestError::MissingClock));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut m = mcu();
        let mut counter = FreshnessPolicy::new(FreshnessKind::Counter);
        let e = counter
            .check_and_update(&FreshnessField::Timestamp(1), &mut m, Some(1))
            .unwrap_err();
        assert_eq!(e.reject_reason(), Some(RejectReason::FreshnessKindMismatch));
        let mut nonce = FreshnessPolicy::new(FreshnessKind::NonceHistory);
        let e = nonce
            .check_and_update(&FreshnessField::None, &mut m, None)
            .unwrap_err();
        assert_eq!(e.reject_reason(), Some(RejectReason::FreshnessKindMismatch));
    }

    #[test]
    fn patch_expected_image_matches_device_commit() {
        let mut p = FreshnessPolicy::new(FreshnessKind::Counter);
        let mut m = mcu();
        p.check_and_update(&FreshnessField::Counter(0xDEAD_BEEF), &mut m, None)
            .unwrap();
        let mut image = vec![0u8; map::RAM.len() as usize];
        patch_expected_image(&mut image, &FreshnessField::Counter(0xDEAD_BEEF));
        let off = (map::COUNTER_R.start - map::RAM.start) as usize;
        assert_eq!(image[off..off + 8], 0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(read_counter_r(&mut m).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn patch_expected_image_ignores_nonces_and_short_images() {
        let mut image = vec![0xAAu8; 32];
        patch_expected_image(&mut image, &FreshnessField::Nonce([1; 16]));
        patch_expected_image(&mut image, &FreshnessField::None);
        assert!(image.iter().all(|&b| b == 0xAA));
        // Timestamp patches at the same word.
        patch_expected_image(&mut image, &FreshnessField::Timestamp(7));
        assert_eq!(image[..8], 7u64.to_le_bytes());
        // A too-short image is left alone rather than panicking.
        let mut tiny = vec![0u8; 4];
        patch_expected_image(&mut tiny, &FreshnessField::Counter(1));
        assert_eq!(tiny, vec![0u8; 4]);
    }

    #[test]
    fn patch_expected_command_counter_matches_device_word() {
        let mut m = mcu();
        let k = proverguard_crypto::mac::MacKey::new(
            proverguard_crypto::mac::MacAlgorithm::HmacSha1,
            &[0x42; 16],
        )
        .unwrap();
        crate::services::execute_command(
            &mut m,
            &k,
            &crate::services::CommandRequest {
                counter: 9,
                command: crate::services::Command::Ping,
                auth: Vec::new(),
            },
        )
        .unwrap();
        let mut image = vec![0u8; map::RAM.len() as usize];
        patch_expected_command_counter(&mut image, 9);
        let off = (map::TRUST_STATE.start + 16 - map::RAM.start) as usize;
        assert_eq!(image[off..off + 8], 9u64.to_le_bytes());
        let mut word = [0u8; 8];
        m.bus_read(map::TRUST_STATE.start + 16, &mut word, map::ATTEST_PC)
            .unwrap();
        assert_eq!(word, 9u64.to_le_bytes());
    }

    #[test]
    fn fixed_storage_for_counter_and_timestamp() {
        assert_eq!(
            FreshnessPolicy::new(FreshnessKind::Counter).storage_bytes(),
            8
        );
        assert_eq!(
            FreshnessPolicy::new(FreshnessKind::Timestamp).storage_bytes(),
            8
        );
        assert_eq!(FreshnessPolicy::new(FreshnessKind::None).storage_bytes(), 0);
    }
}
