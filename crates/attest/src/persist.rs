//! Pluggable non-volatile storage for the prover's freshness state.
//!
//! §5's `Adv_roam` wins by resetting state; the same state is also lost by
//! an honest reboot, because `counter_R` and the trust-state words live in
//! volatile RAM. This module gives the prover a small non-volatile record
//! it can write after every accepted request and re-load during
//! [`Prover::reboot`](crate::prover::Prover::reboot):
//!
//! - with [`Protection::EaMac`](crate::profile::Protection::EaMac) the
//!   record is **sealed** — a MAC under a key derived from `K_Attest`
//!   covers it, so a tampered or rolled-back record is *detected* at boot
//!   (the RATA observation: attestation guarantees hinge on state that
//!   persists correctly across resets);
//! - the [`Protection::Open`](crate::profile::Protection::Open) baseline
//!   stores the record in the clear, so anyone who can touch the store can
//!   roll the counter back — reproducing the §5 rollback as a *recovery*
//!   failure, not just an attack script.
//!
//! The storage medium itself is abstract ([`PersistedState`]): tests use
//! [`InMemoryNvStore`] or the adversary-accessible [`SharedNvStore`].

use std::fmt::Debug;
use std::sync::{Arc, Mutex};

use proverguard_crypto::mac::MacKey;
use proverguard_mcu::device::Mcu;
use proverguard_mcu::map;

use crate::error::AttestError;

/// Domain-separation prefix for the seal MAC (distinct from attestation
/// responses and sync/command authenticators).
const SEAL_DOMAIN: &[u8] = b"proverguard-nv-v1";

/// Magic bytes identifying a freshness record. The trailing digit is the
/// format version: v2 appended the admission-budget words, and a v1
/// record (or any other magic) is refused outright — a downgrade to the
/// budget-free format would itself be a rollback.
const MAGIC: &[u8; 8] = b"PGNVREC2";

/// Byte length of an encoded (unsealed) record.
pub const RECORD_LEN: usize = 8 + 6 * 8;

/// A non-volatile storage cell the prover can save one record into.
///
/// The trait is object-safe and cloneable-through-the-box so that
/// [`Prover`](crate::prover::Prover) can stay `Clone`, and `Send` so a
/// prover (store attached or not) can be moved onto the thread that will
/// serve its socket.
pub trait PersistedState: Debug + Send {
    /// Overwrites the stored record.
    fn save(&mut self, bytes: &[u8]);

    /// Reads the stored record, if any.
    fn load(&self) -> Option<Vec<u8>>;

    /// Clones the store behind a fresh box.
    fn box_clone(&self) -> Box<dyn PersistedState>;
}

impl Clone for Box<dyn PersistedState> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// A plain owned in-memory store (each prover clone gets its own copy).
#[derive(Debug, Clone, Default)]
pub struct InMemoryNvStore {
    cell: Option<Vec<u8>>,
}

impl InMemoryNvStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl PersistedState for InMemoryNvStore {
    fn save(&mut self, bytes: &[u8]) {
        self.cell = Some(bytes.to_vec());
    }

    fn load(&self) -> Option<Vec<u8>> {
        self.cell.clone()
    }

    fn box_clone(&self) -> Box<dyn PersistedState> {
        Box::new(self.clone())
    }
}

/// A store whose cell is shared between the prover and whoever else holds
/// the handle — the model of an external flash chip `Adv_roam` can rewrite
/// while the device is off.
#[derive(Debug, Clone, Default)]
pub struct SharedNvStore {
    cell: Arc<Mutex<Option<Vec<u8>>>>,
}

impl SharedNvStore {
    /// An empty shared store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw stored bytes (adversary/test view).
    #[must_use]
    pub fn raw(&self) -> Option<Vec<u8>> {
        self.cell.lock().expect("nv store lock poisoned").clone()
    }

    /// Overwrites the raw stored bytes from outside the prover — the
    /// tamper/rollback surface.
    pub fn overwrite(&self, bytes: Option<Vec<u8>>) {
        *self.cell.lock().expect("nv store lock poisoned") = bytes;
    }
}

impl PersistedState for SharedNvStore {
    fn save(&mut self, bytes: &[u8]) {
        *self.cell.lock().expect("nv store lock poisoned") = Some(bytes.to_vec());
    }

    fn load(&self) -> Option<Vec<u8>> {
        self.cell.lock().expect("nv store lock poisoned").clone()
    }

    fn box_clone(&self) -> Box<dyn PersistedState> {
        Box::new(self.clone())
    }
}

/// The freshness state worth carrying across a reboot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreshnessRecord {
    /// `counter_R`: last accepted request counter or timestamp.
    pub counter_r: u64,
    /// Last accepted clock-sync counter.
    pub sync_counter: u64,
    /// Last accepted gated-command counter.
    pub command_counter: u64,
    /// The prover's synced time (raw clock + offset) when the record was
    /// written — re-seeded as the clock offset after reboot, since the raw
    /// clock restarts from zero.
    pub synced_ms: u64,
    /// Admission-controller tokens (cycles) at the time of writing; zero
    /// when no controller is installed.
    pub admission_tokens: u64,
    /// Cycle-clock reading at the controller's last refill; zero when no
    /// controller is installed.
    pub admission_refill_mark: u64,
}

impl FreshnessRecord {
    /// Reads the live freshness words out of device RAM (as `Code_Attest`).
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the EA-MPU denies a read.
    pub fn capture(mcu: &mut Mcu, synced_ms: u64) -> Result<Self, AttestError> {
        let mut counter = [0u8; 8];
        mcu.bus_read(map::COUNTER_R.start, &mut counter, map::ATTEST_PC)?;
        // TRUST_STATE layout (see `map`): offset i64 ‖ sync u64 ‖ cmd u64.
        let mut trust = [0u8; 24];
        mcu.bus_read(map::TRUST_STATE.start, &mut trust, map::ATTEST_PC)?;
        Ok(FreshnessRecord {
            counter_r: u64::from_le_bytes(counter),
            sync_counter: u64::from_le_bytes(trust[8..16].try_into().expect("8 bytes")),
            command_counter: u64::from_le_bytes(trust[16..24].try_into().expect("8 bytes")),
            synced_ms,
            admission_tokens: 0,
            admission_refill_mark: 0,
        })
    }

    /// Writes the record back into device RAM as `pc` (the boot loader,
    /// before the MPU locks). The clock-sync offset word is seeded with
    /// `synced_ms` so synced time resumes where it left off.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the write is denied.
    pub fn restore(&self, mcu: &mut Mcu, pc: u32) -> Result<(), AttestError> {
        mcu.bus_write(map::COUNTER_R.start, &self.counter_r.to_le_bytes(), pc)?;
        let mut trust = [0u8; 24];
        trust[..8].copy_from_slice(&(self.synced_ms as i64).to_le_bytes());
        trust[8..16].copy_from_slice(&self.sync_counter.to_le_bytes());
        trust[16..24].copy_from_slice(&self.command_counter.to_le_bytes());
        mcu.bus_write(map::TRUST_STATE.start, &trust, pc)?;
        Ok(())
    }

    /// Serializes the record (magic ‖ four LE u64 words).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_LEN);
        out.extend_from_slice(MAGIC);
        for word in [
            self.counter_r,
            self.sync_counter,
            self.command_counter,
            self.synced_ms,
            self.admission_tokens,
            self.admission_refill_mark,
        ] {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Parses an unsealed record; `None` on wrong magic or length.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != RECORD_LEN || &bytes[..8] != MAGIC {
            return None;
        }
        let word = |i: usize| {
            u64::from_le_bytes(bytes[8 + 8 * i..16 + 8 * i].try_into().expect("8 bytes"))
        };
        Some(FreshnessRecord {
            counter_r: word(0),
            sync_counter: word(1),
            command_counter: word(2),
            synced_ms: word(3),
            admission_tokens: word(4),
            admission_refill_mark: word(5),
        })
    }

    /// Serializes with an appended MAC tag under `key` (EA-MAC profile).
    #[must_use]
    pub fn seal(&self, key: &MacKey) -> Vec<u8> {
        let mut out = self.encode();
        let tag = key.compute(&[SEAL_DOMAIN, &out].concat());
        out.extend_from_slice(&tag);
        out
    }

    /// Parses and verifies a sealed record; `None` when the bytes are
    /// malformed **or the tag does not verify** — a tampered or
    /// rolled-back store is indistinguishable from a corrupt one and both
    /// are refused.
    #[must_use]
    pub fn open_sealed(bytes: &[u8], key: &MacKey) -> Option<Self> {
        if bytes.len() <= RECORD_LEN {
            return None;
        }
        let (record, tag) = bytes.split_at(RECORD_LEN);
        if !key.verify(&[SEAL_DOMAIN, record].concat(), tag) {
            return None;
        }
        Self::decode(record)
    }
}

/// Magic bytes identifying an update journal (a separate record format —
/// the frozen `PGNVREC2` freshness layout is untouched by OTA support).
const JOURNAL_MAGIC: &[u8; 8] = b"PGUPJRN1";

/// Byte length of an encoded (unsealed) update journal.
pub const JOURNAL_LEN: usize = 8 + 20 + 20 + 2;

/// The firmware-update journal: the tiny non-volatile record that makes
/// a torn flash *detectable and recoverable* instead of a brick.
///
/// Written before the erase starts (`in_progress` set, target recorded)
/// and again after the image commits. On reboot the boot path compares
/// the actual flash digest against `active_digest` and `target_digest`:
/// a match commits or resumes normally; anything else — the torn-flash
/// signature — routes through recovery boot. Sealed with the same
/// EA-MAC-derived key as the freshness record, in its own store slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateJournal {
    /// Whole-flash digest of the currently committed (trusted) image.
    pub active_digest: [u8; 20],
    /// Whole-flash digest the in-flight update is moving to (equal to
    /// `active_digest` when no update is in flight).
    pub target_digest: [u8; 20],
    /// `true` between the pre-erase journal write and the commit.
    pub in_progress: bool,
    /// `true` once the execute-from-RAM mirror of the active image has
    /// been installed (so boot knows to reinstall it after a power
    /// cycle).
    pub mirrored: bool,
}

impl UpdateJournal {
    /// Serializes the journal (magic ‖ digests ‖ flags).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(JOURNAL_LEN);
        out.extend_from_slice(JOURNAL_MAGIC);
        out.extend_from_slice(&self.active_digest);
        out.extend_from_slice(&self.target_digest);
        out.push(u8::from(self.in_progress));
        out.push(u8::from(self.mirrored));
        out
    }

    /// Parses an unsealed journal; `None` on wrong magic or length.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != JOURNAL_LEN || &bytes[..8] != JOURNAL_MAGIC {
            return None;
        }
        Some(UpdateJournal {
            active_digest: bytes[8..28].try_into().expect("20 bytes"),
            target_digest: bytes[28..48].try_into().expect("20 bytes"),
            in_progress: bytes[48] != 0,
            mirrored: bytes[49] != 0,
        })
    }

    /// Serializes with an appended MAC tag under `key`.
    #[must_use]
    pub fn seal(&self, key: &MacKey) -> Vec<u8> {
        let mut out = self.encode();
        let tag = key.compute(&[SEAL_DOMAIN, &out].concat());
        out.extend_from_slice(&tag);
        out
    }

    /// Parses and verifies a sealed journal; `None` when malformed or
    /// the tag does not verify.
    #[must_use]
    pub fn open_sealed(bytes: &[u8], key: &MacKey) -> Option<Self> {
        if bytes.len() <= JOURNAL_LEN {
            return None;
        }
        let (record, tag) = bytes.split_at(JOURNAL_LEN);
        if !key.verify(&[SEAL_DOMAIN, record].concat(), tag) {
            return None;
        }
        Self::decode(record)
    }
}

/// Magic bytes identifying an epoch-log record (its own format; the
/// frozen `PGNVREC2` and `PGUPJRN1` layouts are untouched by history
/// support).
const EPOCH_MAGIC: &[u8; 8] = b"PGEPLOG1";

/// Byte length of the fixed header of an encoded (unsealed) epoch-log
/// record: magic ‖ epoch ‖ segment_len ‖ segment count.
pub const EPOCH_HEADER_LEN: usize = 8 + 8 + 8 + 8;

/// Hard cap on the per-segment list a decoder will accept (512 KiB RAM /
/// 64-byte minimum segments = 8192): a forged length word must not drive
/// an allocation.
const EPOCH_MAX_SEGMENTS: u64 = 8192;

/// The last-write epoch log worth carrying across a reboot.
///
/// The epoch *register* is volatile silicon, so without this record every
/// power cycle would restart round numbering — handing `Adv_roam` exactly
/// the rollback the TOCTOU log exists to close (reboot, replay round
/// numbers, and a verifier's `since_round` quietly points at a different
/// interval). The record is sealed under the same EA-MAC-derived key as
/// the freshness record; a rolled-back or forged copy fails the tag and
/// the prover boots with history *suspended* — `History` requests are
/// refused until a full-scope round rebuilds trust.
///
/// The per-segment epochs are recorded for tamper-evident audit (and the
/// golden-vector freeze), but restore deliberately does **not** replay
/// them into the hardware: RAM was wiped, so every segment truly was
/// just written, and the only sound post-boot log is "everything
/// modified at the restored epoch".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EpochLogRecord {
    /// The epoch register at capture time.
    pub epoch: u64,
    /// Dirty/epoch-tracking granularity the log was recorded under.
    pub segment_len: u32,
    /// Last-write epoch of each RAM segment at capture time.
    pub segment_epochs: Vec<u64>,
}

impl EpochLogRecord {
    /// Reads the live epoch state out of the device.
    #[must_use]
    pub fn capture(mcu: &Mcu) -> Self {
        EpochLogRecord {
            epoch: mcu.epoch(),
            segment_len: mcu.segment_len(),
            segment_epochs: (0..mcu.segment_count())
                .map(|i| mcu.segment_epoch(i))
                .collect(),
        }
    }

    /// Serializes the record (magic ‖ epoch ‖ segment_len ‖ count ‖
    /// per-segment epochs, all LE u64 words).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(EPOCH_HEADER_LEN + 8 * self.segment_epochs.len());
        out.extend_from_slice(EPOCH_MAGIC);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&u64::from(self.segment_len).to_le_bytes());
        out.extend_from_slice(&(self.segment_epochs.len() as u64).to_le_bytes());
        for e in &self.segment_epochs {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out
    }

    /// Parses an unsealed record; `None` on wrong magic, bad length, an
    /// absurd segment count, or a per-segment epoch newer than the
    /// register (an impossible state no honest capture produces).
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < EPOCH_HEADER_LEN || &bytes[..8] != EPOCH_MAGIC {
            return None;
        }
        let word =
            |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        let epoch = word(1);
        let segment_len = u32::try_from(word(2)).ok()?;
        let count = word(3);
        if count > EPOCH_MAX_SEGMENTS || bytes.len() != EPOCH_HEADER_LEN + 8 * count as usize {
            return None;
        }
        let segment_epochs: Vec<u64> = (0..count as usize).map(|i| word(4 + i)).collect();
        if segment_epochs.iter().any(|&e| e > epoch) {
            return None;
        }
        Some(EpochLogRecord {
            epoch,
            segment_len,
            segment_epochs,
        })
    }

    /// Serializes with an appended MAC tag under `key`.
    #[must_use]
    pub fn seal(&self, key: &MacKey) -> Vec<u8> {
        let mut out = self.encode();
        let tag = key.compute(&[SEAL_DOMAIN, &out].concat());
        out.extend_from_slice(&tag);
        out
    }

    /// Parses and verifies a sealed record; `None` when malformed or the
    /// tag does not verify — a rolled-back log is refused, not restored.
    #[must_use]
    pub fn open_sealed(bytes: &[u8], key: &MacKey) -> Option<Self> {
        if bytes.len() < EPOCH_HEADER_LEN + 8 {
            return None;
        }
        let count = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        if count > EPOCH_MAX_SEGMENTS {
            return None;
        }
        let record_len = EPOCH_HEADER_LEN + 8 * count as usize;
        if bytes.len() <= record_len {
            return None;
        }
        let (record, tag) = bytes.split_at(record_len);
        if !key.verify(&[SEAL_DOMAIN, record].concat(), tag) {
            return None;
        }
        Self::decode(record)
    }
}

/// What [`Prover::reboot`](crate::prover::Prover::reboot) found in the
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Freshness state restored from a valid record.
    Restored(FreshnessRecord),
    /// No store is attached; the prover boots with zeroed freshness state.
    NoStore,
    /// The store is attached but empty (first boot).
    Empty,
    /// The record failed validation (bad seal or corrupt bytes); the
    /// prover refuses it and boots with zeroed freshness state.
    TamperDetected,
}

impl RecoveryOutcome {
    /// `true` iff a record was restored.
    #[must_use]
    pub fn restored(&self) -> bool {
        matches!(self, RecoveryOutcome::Restored(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_crypto::mac::MacAlgorithm;

    fn key() -> MacKey {
        MacKey::new(MacAlgorithm::HmacSha1, &[0x11; 16]).unwrap()
    }

    fn record() -> FreshnessRecord {
        FreshnessRecord {
            counter_r: 7,
            sync_counter: 3,
            command_counter: 1,
            synced_ms: 42_000,
            admission_tokens: 9_999,
            admission_refill_mark: 123_456,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = record();
        assert_eq!(FreshnessRecord::decode(&r.encode()), Some(r));
        assert_eq!(FreshnessRecord::decode(&[]), None);
        let mut bad_magic = r.encode();
        bad_magic[0] ^= 1;
        assert_eq!(FreshnessRecord::decode(&bad_magic), None);
    }

    #[test]
    fn seal_detects_tampering_and_rollback() {
        let r = record();
        let sealed = r.seal(&key());
        assert_eq!(FreshnessRecord::open_sealed(&sealed, &key()), Some(r));
        // Bit-flip anywhere kills it.
        for i in 0..sealed.len() {
            let mut t = sealed.clone();
            t[i] ^= 0x40;
            assert_eq!(FreshnessRecord::open_sealed(&t, &key()), None, "byte {i}");
        }
        // A stale record re-sealed under the wrong key also fails.
        let other = MacKey::new(MacAlgorithm::HmacSha1, &[0x22; 16]).unwrap();
        assert_eq!(FreshnessRecord::open_sealed(&r.seal(&other), &key()), None);
    }

    #[test]
    fn capture_restore_roundtrip_through_device() {
        let mut mcu = Mcu::new();
        record().restore(&mut mcu, map::BOOT_PC).unwrap();
        let captured = FreshnessRecord::capture(&mut mcu, 42_000).unwrap();
        // The admission words live host-side, not in device RAM: capture
        // leaves them zero for the prover to fill in.
        assert_eq!(
            captured,
            FreshnessRecord {
                admission_tokens: 0,
                admission_refill_mark: 0,
                ..record()
            }
        );
        // The offset word was seeded with synced_ms.
        assert_eq!(
            crate::clocksync::read_offset_ms(&mut mcu).unwrap(),
            42_000_i64
        );
    }

    #[test]
    fn update_journal_roundtrip_and_seal() {
        let j = UpdateJournal {
            active_digest: [0xAA; 20],
            target_digest: [0xBB; 20],
            in_progress: true,
            mirrored: false,
        };
        assert_eq!(UpdateJournal::decode(&j.encode()), Some(j));
        assert_eq!(UpdateJournal::decode(&[]), None);
        // Journal magic and freshness magic are distinct formats.
        assert_eq!(UpdateJournal::decode(&record().encode()), None);
        let sealed = j.seal(&key());
        assert_eq!(UpdateJournal::open_sealed(&sealed, &key()), Some(j));
        let mut tampered = sealed.clone();
        tampered[10] ^= 1;
        assert_eq!(UpdateJournal::open_sealed(&tampered, &key()), None);
    }

    #[test]
    fn epoch_log_roundtrip_and_seal() {
        let r = EpochLogRecord {
            epoch: 9,
            segment_len: 8192,
            segment_epochs: vec![1, 4, 9, 9, 2],
        };
        assert_eq!(EpochLogRecord::decode(&r.encode()), Some(r.clone()));
        assert_eq!(EpochLogRecord::decode(&[]), None);
        assert_eq!(EpochLogRecord::decode(&record().encode()), None);
        let sealed = r.seal(&key());
        assert_eq!(
            EpochLogRecord::open_sealed(&sealed, &key()),
            Some(r.clone())
        );
        for i in 0..sealed.len() {
            let mut t = sealed.clone();
            t[i] ^= 0x40;
            assert_eq!(EpochLogRecord::open_sealed(&t, &key()), None, "byte {i}");
        }
        let other = MacKey::new(MacAlgorithm::HmacSha1, &[0x22; 16]).unwrap();
        assert_eq!(EpochLogRecord::open_sealed(&r.seal(&other), &key()), None);
    }

    #[test]
    fn epoch_log_rejects_impossible_and_absurd_records() {
        // A per-segment epoch newer than the register is unconstructable
        // by honest capture — refuse it rather than restore it.
        let bad = EpochLogRecord {
            epoch: 3,
            segment_len: 8192,
            segment_epochs: vec![2, 4],
        };
        assert_eq!(EpochLogRecord::decode(&bad.encode()), None);
        // A forged segment count must not drive an allocation.
        let mut huge = EpochLogRecord {
            epoch: 1,
            segment_len: 64,
            segment_epochs: vec![],
        }
        .encode();
        huge[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(EpochLogRecord::decode(&huge), None);
        assert_eq!(EpochLogRecord::open_sealed(&huge, &key()), None);
    }

    #[test]
    fn epoch_log_captures_device_state() {
        let mut mcu = Mcu::new();
        mcu.advance_epoch(map::ATTEST_PC).unwrap();
        mcu.bus_write(map::APP_RAM.start, &[1], map::APP_CODE)
            .unwrap();
        let r = EpochLogRecord::capture(&mcu);
        assert_eq!(r.epoch, mcu.epoch());
        assert_eq!(r.segment_len, mcu.segment_len());
        assert_eq!(r.segment_epochs.len(), mcu.segment_count());
        let seg = ((map::APP_RAM.start - map::RAM.start) / mcu.segment_len()) as usize;
        assert_eq!(r.segment_epochs[seg], mcu.epoch());
    }

    #[test]
    fn shared_store_exposes_tamper_surface() {
        let handle = SharedNvStore::new();
        let mut boxed: Box<dyn PersistedState> = Box::new(handle.clone());
        boxed.save(b"state");
        assert_eq!(handle.raw().as_deref(), Some(&b"state"[..]));
        handle.overwrite(Some(b"rolled back".to_vec()));
        assert_eq!(boxed.load().as_deref(), Some(&b"rolled back"[..]));
    }

    #[test]
    fn in_memory_store_is_private_per_clone() {
        let mut a = InMemoryNvStore::new();
        a.save(b"x");
        let mut b = a.clone();
        b.save(b"y");
        assert_eq!(a.load().as_deref(), Some(&b"x"[..]));
    }
}
