//! Request authentication (§4.1).
//!
//! The verifier proves to the prover that an `attreq` is genuine. The
//! paper compares symmetric MACs (cheap — 0.015 ms to 0.43 ms on the
//! 24 MHz prover) with ECDSA signatures (170.9 ms to verify — "a supposed
//! way of preventing DoS attacks can itself result in DoS") and rules the
//! latter out. Both are implemented so the trade-off can be measured.

use proverguard_crypto::ecdsa::{Signature, SigningKey, VerifyingKey};
use proverguard_crypto::mac::{MacAlgorithm, MacKey};
use proverguard_mcu::cycles::CostTable;

use crate::error::AttestError;

/// How attestation requests are authenticated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthMethod {
    /// No authentication (the vulnerable strawman of §3.1).
    None,
    /// Symmetric MAC with the shared `K_Attest`.
    Mac(MacAlgorithm),
    /// ECDSA over secp160r1 (the ruled-out public-key option).
    Ecdsa,
}

impl std::fmt::Display for AuthMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthMethod::None => write!(f, "no authentication"),
            AuthMethod::Mac(alg) => write!(f, "{alg}"),
            AuthMethod::Ecdsa => write!(f, "ECC (secp160r1)"),
        }
    }
}

/// Verifier-side authenticator state.
#[derive(Debug, Clone)]
pub enum RequestSigner {
    /// No authenticator is attached.
    None,
    /// Symmetric MAC keyed with `K_Attest`.
    Mac(MacKey),
    /// ECDSA signing key (the verifier's identity key).
    Ecdsa(Box<SigningKey>),
}

impl RequestSigner {
    /// Builds the signer for `method`.
    ///
    /// For [`AuthMethod::Ecdsa`] the signing key is derived from
    /// `key_material` (in a real deployment the verifier would have a
    /// proper identity key; the derivation keeps the simulation
    /// deterministic).
    ///
    /// # Errors
    ///
    /// [`AttestError::Crypto`] if the key material does not fit the MAC
    /// algorithm.
    pub fn new(method: AuthMethod, key_material: &[u8]) -> Result<Self, AttestError> {
        Ok(match method {
            AuthMethod::None => RequestSigner::None,
            AuthMethod::Mac(alg) => RequestSigner::Mac(MacKey::new(alg, key_material)?),
            AuthMethod::Ecdsa => {
                RequestSigner::Ecdsa(Box::new(SigningKey::from_seed(key_material)))
            }
        })
    }

    /// Produces the authenticator over `message`.
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        match self {
            RequestSigner::None => Vec::new(),
            RequestSigner::Mac(key) => key.compute(message),
            RequestSigner::Ecdsa(key) => key.sign(message).to_bytes().to_vec(),
        }
    }

    /// The verifying counterpart the prover should hold.
    ///
    /// # Errors
    ///
    /// [`AttestError::Crypto`] if key material is rejected (cannot happen
    /// for keys produced by [`RequestSigner::new`]).
    pub fn checker(&self) -> Result<RequestChecker, AttestError> {
        Ok(match self {
            RequestSigner::None => RequestChecker::None,
            RequestSigner::Mac(key) => RequestChecker::Mac(key.clone()),
            RequestSigner::Ecdsa(key) => RequestChecker::Ecdsa(Box::new(key.verifying_key())),
        })
    }
}

/// Prover-side authenticator state.
#[derive(Debug, Clone)]
pub enum RequestChecker {
    /// Accept everything (no authentication).
    None,
    /// Recompute the symmetric MAC.
    Mac(MacKey),
    /// Verify the ECDSA signature with the verifier's public key.
    Ecdsa(Box<VerifyingKey>),
}

impl RequestChecker {
    /// Checks `auth` over `message`. Returns `true` iff genuine.
    #[must_use]
    pub fn check(&self, message: &[u8], auth: &[u8]) -> bool {
        match self {
            RequestChecker::None => true,
            RequestChecker::Mac(key) => key.verify(message, auth),
            RequestChecker::Ecdsa(vk) => Signature::from_bytes(auth)
                .and_then(|sig| vk.verify(message, &sig))
                .is_ok(),
        }
    }

    /// Device cycles this check costs on the 24 MHz prover, per Table 1
    /// (§4.1's single-block convention).
    #[must_use]
    pub fn check_cycles(&self, cost: &CostTable) -> u64 {
        match self {
            RequestChecker::None => 0,
            RequestChecker::Mac(key) => cost.request_check_cost(key.algorithm()),
            RequestChecker::Ecdsa(_) => cost.ecdsa_verify,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(method: AuthMethod) {
        let signer = RequestSigner::new(method, &[0x11; 16]).unwrap();
        let checker = signer.checker().unwrap();
        let auth = signer.sign(b"attreq");
        assert!(checker.check(b"attreq", &auth), "{method}");
        if method != AuthMethod::None {
            assert!(!checker.check(b"forged", &auth), "{method}");
            assert!(!checker.check(b"attreq", b"junk"), "{method}");
        }
    }

    #[test]
    fn mac_methods_roundtrip() {
        for alg in MacAlgorithm::ALL {
            roundtrip(AuthMethod::Mac(alg));
        }
    }

    #[test]
    fn ecdsa_roundtrips() {
        roundtrip(AuthMethod::Ecdsa);
    }

    #[test]
    fn none_accepts_everything() {
        roundtrip(AuthMethod::None);
        let checker = RequestSigner::new(AuthMethod::None, &[])
            .unwrap()
            .checker()
            .unwrap();
        assert!(checker.check(b"anything", b""));
        assert!(checker.check(b"anything", b"even junk"));
    }

    #[test]
    fn wrong_key_rejected() {
        let signer = RequestSigner::new(AuthMethod::Mac(MacAlgorithm::HmacSha1), &[1; 16]).unwrap();
        let other = RequestSigner::new(AuthMethod::Mac(MacAlgorithm::HmacSha1), &[2; 16]).unwrap();
        let auth = signer.sign(b"m");
        assert!(!other.checker().unwrap().check(b"m", &auth));
    }

    #[test]
    fn check_cycles_ordering_matches_table1() {
        let cost = CostTable::siskiyou_peak();
        let cycles_of = |m: AuthMethod| {
            RequestSigner::new(m, &[1; 16])
                .unwrap()
                .checker()
                .unwrap()
                .check_cycles(&cost)
        };
        let none = cycles_of(AuthMethod::None);
        let speck = cycles_of(AuthMethod::Mac(MacAlgorithm::Speck64Cbc));
        let aes = cycles_of(AuthMethod::Mac(MacAlgorithm::Aes128Cbc));
        let hmac = cycles_of(AuthMethod::Mac(MacAlgorithm::HmacSha1));
        let ecdsa = cycles_of(AuthMethod::Ecdsa);
        assert!(none < speck && speck < aes && aes < hmac && hmac < ecdsa);
        // The paradox: ECDSA checking costs more than 100x the HMAC check.
        assert!(ecdsa > 100 * hmac);
    }
}
