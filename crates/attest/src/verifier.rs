//! The verifier (`Vrf`): issues authenticated, fresh attestation requests
//! and validates responses.
//!
//! The verifier is assumed to be a powerful machine; its costs are not
//! modelled. Its clock is a plain millisecond counter that experiment
//! scenarios advance in lockstep with (or deliberately apart from) the
//! prover's — clock synchronization itself is the paper's future work
//! item 2.

use proverguard_crypto::drbg::HmacDrbg;
use proverguard_crypto::mac::MacKey;
use proverguard_crypto::sha1::DIGEST_SIZE;

use crate::auth::{AuthMethod, RequestSigner};
use crate::error::AttestError;
use crate::freshness::FreshnessKind;
use crate::imagecache::ExpectedView;
use crate::message::{
    AttestRequest, AttestResponse, AttestScope, FreshnessField, CHALLENGE_SIZE, NONCE_SIZE,
};
use crate::prover::ProverConfig;
use crate::segcache::{self, HistoryReport, SegmentedParams};

/// How the verifier picks the scope of each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScopePolicy {
    /// Always the widest configured construction: `Segmented` when the
    /// deployment has segment parameters, `Whole` otherwise.
    #[default]
    Full,
    /// Cheap [`AttestScope::History`] rounds referencing the last round
    /// this verifier saw authenticated, re-anchored by a full `Segmented`
    /// round every `full_every` accepted rounds (0 = never). Bootstrap —
    /// and recovery after any rejected History round — goes through
    /// `since_round = 0` (every segment reports modified, so the round is
    /// full-coverage) or a full-scope fallback respectively.
    History {
        /// Accepted rounds between forced full `Segmented` rounds.
        full_every: u32,
    },
}

/// The authenticated plaintext of one verified History round: which
/// round the prover was in and which segments its epoch log reported as
/// written since `since_round`. Policy layers inspect [`Self::modified`]
/// — a segment that should be immutable (e.g. the application image
/// mirror) appearing here is TOCTOU evidence even though every digest
/// verified: the *write event* is the signal, not the content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryOutcome {
    /// The prover's round when it answered.
    pub round: u64,
    /// The `since_round` the request named.
    pub since_round: u64,
    /// Indices of segments written after `since_round`.
    pub modified: Vec<usize>,
}

/// The verifier's state.
#[derive(Debug, Clone)]
pub struct Verifier {
    signer: RequestSigner,
    response_key: MacKey,
    freshness: FreshnessKind,
    segmented: Option<SegmentedParams>,
    next_counter: u64,
    next_sync_counter: u64,
    next_command_counter: u64,
    clock_ms: u64,
    drbg: HmacDrbg,
    scope_policy: ScopePolicy,
    /// Last round number seen in a *verified* History response; the next
    /// History request quotes it as `since_round`. Stale-low is safe (the
    /// prover re-digests more, never less); `None` forces a bootstrap.
    last_verified_round: Option<u64>,
    /// Accepted rounds since the last full-scope one (drives `full_every`).
    rounds_since_full: u32,
    /// Set when a History round was rejected or failed verification: the
    /// next requests go full-scope until one verifies, then History
    /// re-bootstraps from `since_round = 0`.
    history_fallback: bool,
    /// Outcome of the most recent verified History round.
    last_history: Option<HistoryOutcome>,
    /// The long-term device key, kept as HKDF input keying material for
    /// the attested-channel handshake (`crate::channel`). Never put on
    /// the wire; session keys are labeled derivations from it.
    session_ikm: [u8; 16],
}

impl Verifier {
    /// Builds the verifier peer for a prover `config`, sharing `key`
    /// (`K_Attest`).
    ///
    /// # Errors
    ///
    /// [`AttestError::Crypto`] if `key` does not fit the configured
    /// algorithms.
    pub fn new(config: &ProverConfig, key: &[u8; 16]) -> Result<Self, AttestError> {
        Ok(Verifier {
            signer: RequestSigner::new(config.auth, key)?,
            response_key: MacKey::new(config.response_mac, key)?,
            freshness: config.freshness,
            segmented: config.segmented,
            next_counter: 1,
            next_sync_counter: 1,
            next_command_counter: 1,
            clock_ms: 0,
            drbg: HmacDrbg::new(key, b"proverguard-verifier-nonces"),
            scope_policy: ScopePolicy::Full,
            last_verified_round: None,
            rounds_since_full: 0,
            history_fallback: false,
            last_history: None,
            session_ikm: *key,
        })
    }

    /// Installs the scope policy, resetting all round tracking (the next
    /// History round bootstraps from `since_round = 0`).
    pub fn set_scope_policy(&mut self, policy: ScopePolicy) {
        self.scope_policy = policy;
        self.last_verified_round = None;
        self.rounds_since_full = 0;
        self.history_fallback = false;
        self.last_history = None;
    }

    /// The active scope policy.
    #[must_use]
    pub fn scope_policy(&self) -> ScopePolicy {
        self.scope_policy
    }

    /// The last prover round this verifier saw authenticated, if any.
    #[must_use]
    pub fn last_verified_round(&self) -> Option<u64> {
        self.last_verified_round
    }

    /// The most recent verified History round's authenticated outcome.
    #[must_use]
    pub fn last_history(&self) -> Option<&HistoryOutcome> {
        self.last_history.as_ref()
    }

    /// The authentication method in use.
    #[must_use]
    pub fn auth_method(&self) -> AuthMethod {
        match &self.signer {
            RequestSigner::None => AuthMethod::None,
            RequestSigner::Mac(k) => AuthMethod::Mac(k.algorithm()),
            RequestSigner::Ecdsa(_) => AuthMethod::Ecdsa,
        }
    }

    /// Current verifier clock in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Advances the verifier clock.
    pub fn advance_time_ms(&mut self, ms: u64) {
        self.clock_ms = self.clock_ms.saturating_add(ms);
    }

    /// Sets the verifier clock (scenario control).
    pub fn set_time_ms(&mut self, ms: u64) {
        self.clock_ms = ms;
    }

    /// Creates the next authenticated attestation request.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves room for
    /// signature failures.
    pub fn make_request(&mut self) -> Result<AttestRequest, AttestError> {
        let scope = self.policy_scope();
        self.request_with(scope, true)
    }

    /// Creates the next authenticated request at **full** scope
    /// (`Segmented` when configured, else `Whole`), regardless of the
    /// steady-state scope policy. Session establishment uses this: the
    /// handshake's key-confirming attestation always re-covers
    /// everything.
    ///
    /// # Errors
    ///
    /// As [`Verifier::make_request`].
    pub fn make_full_request(&mut self) -> Result<AttestRequest, AttestError> {
        let scope = self.full_scope();
        self.request_with(scope, true)
    }

    /// Creates the next **unsigned** attestation request for an
    /// established session round. Freshness and challenge are minted
    /// exactly as for [`Verifier::make_request`]; only the outer request
    /// authenticator is omitted — inside a session the frame MAC is the
    /// per-message authenticator, which is the whole amortization win.
    ///
    /// # Errors
    ///
    /// As [`Verifier::make_request`].
    pub fn make_session_request(&mut self) -> Result<AttestRequest, AttestError> {
        let scope = self.policy_scope();
        self.request_with(scope, false)
    }

    fn full_scope(&self) -> AttestScope {
        if self.segmented.is_some() {
            AttestScope::Segmented
        } else {
            AttestScope::Whole
        }
    }

    fn policy_scope(&self) -> AttestScope {
        match self.scope_policy {
            ScopePolicy::Full => self.full_scope(),
            ScopePolicy::History { full_every } => {
                let due_full = full_every > 0 && self.rounds_since_full >= full_every;
                if self.segmented.is_none() || self.history_fallback || due_full {
                    self.full_scope()
                } else {
                    AttestScope::History {
                        since_round: self.last_verified_round.unwrap_or(0),
                    }
                }
            }
        }
    }

    fn request_with(
        &mut self,
        scope: AttestScope,
        signed: bool,
    ) -> Result<AttestRequest, AttestError> {
        let freshness = match self.freshness {
            FreshnessKind::None => FreshnessField::None,
            FreshnessKind::NonceHistory => {
                let mut nonce = [0u8; NONCE_SIZE];
                self.drbg.fill(&mut nonce);
                FreshnessField::Nonce(nonce)
            }
            FreshnessKind::Counter => {
                let c = self.next_counter;
                self.next_counter += 1;
                FreshnessField::Counter(c)
            }
            FreshnessKind::Timestamp => FreshnessField::Timestamp(self.clock_ms),
        };
        let mut challenge = [0u8; CHALLENGE_SIZE];
        self.drbg.fill(&mut challenge);
        let mut request = AttestRequest {
            scope,
            freshness,
            challenge,
            auth: Vec::new(),
        };
        if signed {
            request.auth = self.signer.sign(&request.signed_bytes());
        }
        Ok(request)
    }

    /// Draws a fresh session-handshake nonce from the verifier's DRBG.
    pub(crate) fn session_nonce(&mut self) -> [u8; 16] {
        let mut nonce = [0u8; 16];
        self.drbg.fill(&mut nonce);
        nonce
    }

    /// The HKDF input keying material for session establishment.
    pub(crate) fn session_ikm(&self) -> &[u8; 16] {
        &self.session_ikm
    }

    /// Creates the next authenticated clock-synchronization message
    /// (§7 future-work item 2) carrying the verifier's current time.
    pub fn make_sync_request(&mut self) -> crate::clocksync::SyncRequest {
        let counter = self.next_sync_counter;
        self.next_sync_counter += 1;
        let mut request = crate::clocksync::SyncRequest {
            counter,
            verifier_time_ms: self.clock_ms,
            auth: Vec::new(),
        };
        request.auth = self.signer.sign(&request.signed_bytes());
        request
    }

    /// Creates the next authenticated gated command (§7 item 3).
    pub fn make_command(
        &mut self,
        command: crate::services::Command,
    ) -> crate::services::CommandRequest {
        let counter = self.next_command_counter;
        self.next_command_counter += 1;
        let mut request = crate::services::CommandRequest {
            counter,
            command,
            auth: Vec::new(),
        };
        request.auth = self.signer.sign(&request.signed_bytes());
        request
    }

    /// Validates a command receipt against the expected post-state digest.
    #[must_use]
    pub fn check_command_receipt(
        &self,
        receipt: &crate::services::CommandReceipt,
        command: &crate::services::Command,
        expected_digest: &[u8; 20],
    ) -> bool {
        receipt.verify(&self.response_key, command, expected_digest)
    }

    /// The segmented-mode parameters of this deployment, if any. The
    /// device directory uses this to intern expected images at the right
    /// digest granularity.
    #[must_use]
    pub fn segmented_params(&self) -> Option<SegmentedParams> {
        self.segmented
    }

    /// Validates a response against the expected memory image, using the
    /// construction the request's (authenticated) scope byte named. This
    /// byte-slice entry point digests the expected image from scratch;
    /// fleet paths hand an [`ExpectedView`] with an interned baseline to
    /// [`Verifier::check_response_view`] instead, which reuses the shared
    /// digest vector and re-digests only freshness-patched segments.
    #[must_use]
    pub fn check_response(
        &self,
        request: &AttestRequest,
        response: &AttestResponse,
        expected_memory: &[u8],
    ) -> bool {
        self.check_response_view(request, response, &ExpectedView::uncached(expected_memory))
    }

    /// Validates a response against an expected-image view. The keyed
    /// outer MAC is always recomputed per device and per request — only
    /// the unkeyed, content-only segment digests come from the view's
    /// baseline (when one is attached and matches).
    #[must_use]
    pub fn check_response_view(
        &self,
        request: &AttestRequest,
        response: &AttestResponse,
        expected: &ExpectedView<'_>,
    ) -> bool {
        match request.scope {
            AttestScope::Whole => {
                let mut macced = request.signed_bytes();
                macced.extend_from_slice(expected.memory());
                self.response_key.verify(&macced, &response.report)
            }
            AttestScope::Segmented => {
                let Some(params) = &self.segmented else {
                    return false;
                };
                let digests = expected.digests(params.segment_len as usize);
                let combined =
                    segcache::combined_input(&request.signed_bytes(), params.segment_len, &digests);
                self.response_key.verify(&combined, &response.report)
            }
            AttestScope::History { since_round } => {
                let Some(params) = &self.segmented else {
                    return false;
                };
                let Some((report, modified_digests)) =
                    self.parse_history(since_round, response, expected)
                else {
                    return false;
                };
                let input = segcache::history_input(
                    &request.signed_bytes(),
                    params.segment_len,
                    &report,
                    &modified_digests,
                );
                self.response_key.verify(
                    &input,
                    response.report.get(report.encoded_len()..).unwrap_or(&[]),
                )
            }
        }
    }

    /// Decodes a History report against the expected image: the bitmap
    /// must cover exactly the expected segment count, the prover's round
    /// must postdate `since_round` (the register is strictly ahead of
    /// every completed round), and the expected digests of the modified
    /// segments are recomputed from `expected_memory` — the unmodified
    /// ones are exactly what round `since_round` already vouched for.
    fn parse_history(
        &self,
        since_round: u64,
        response: &AttestResponse,
        expected: &ExpectedView<'_>,
    ) -> Option<(HistoryReport, Vec<[u8; DIGEST_SIZE]>)> {
        let params = self.segmented.as_ref()?;
        let seg_len = params.segment_len as usize;
        let seg_count = expected.memory().len().div_ceil(seg_len);
        let (report, _tag) = HistoryReport::decode(&response.report, seg_count)?;
        if report.modified.len() != seg_count || report.round <= since_round {
            return None;
        }
        let digests = report
            .modified_indices()
            .into_iter()
            .map(|i| expected.segment_digest_at(i, seg_len))
            .collect();
        Some((report, digests))
    }

    /// Records a round that completed and verified. Drives the History
    /// policy: a full-scope round re-anchors the baseline (and clears any
    /// fallback), a History round advances `since_round` to the prover's
    /// authenticated round and exposes its modified set via
    /// [`Verifier::last_history`]. Returns that outcome for History
    /// rounds so callers can apply TOCTOU policy immediately.
    pub fn note_verified(
        &mut self,
        request: &AttestRequest,
        response: &AttestResponse,
        expected_memory: &[u8],
    ) -> Option<&HistoryOutcome> {
        self.note_verified_view(request, response, &ExpectedView::uncached(expected_memory))
    }

    /// View-based variant of [`Verifier::note_verified`] — same policy
    /// effects, sharing the baseline digest vector when one is attached.
    pub fn note_verified_view(
        &mut self,
        request: &AttestRequest,
        response: &AttestResponse,
        expected: &ExpectedView<'_>,
    ) -> Option<&HistoryOutcome> {
        match request.scope {
            AttestScope::Whole | AttestScope::Segmented => {
                self.rounds_since_full = 0;
                self.history_fallback = false;
                self.last_history = None;
                // The prover advanced its register past this round; the
                // remembered History baseline goes stale-low, which is
                // safe (extra digests, never missing ones). After a
                // fallback the baseline was dropped and the next History
                // round re-bootstraps from zero.
                None
            }
            AttestScope::History { since_round } => {
                let (report, _) = self.parse_history(since_round, response, expected)?;
                self.rounds_since_full = self.rounds_since_full.saturating_add(1);
                self.last_verified_round = Some(report.round);
                self.last_history = Some(HistoryOutcome {
                    round: report.round,
                    since_round,
                    modified: report.modified_indices(),
                });
                self.last_history.as_ref()
            }
        }
    }

    /// Records a round that failed — rejected by the prover, lost, or
    /// failing verification. A failed History round drops the baseline
    /// and routes the next requests through a full-scope fallback until
    /// one verifies (the prover may have rebooted, suspended History
    /// after detecting epoch-log tampering, or desynchronized rounds).
    pub fn note_failed(&mut self, request: &AttestRequest) {
        if matches!(request.scope, AttestScope::History { .. }) {
            self.last_verified_round = None;
            self.history_fallback = true;
            self.last_history = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_crypto::mac::MacAlgorithm;

    const KEY: [u8; 16] = [9; 16];

    fn verifier(freshness: FreshnessKind) -> Verifier {
        let config = ProverConfig {
            auth: AuthMethod::Mac(MacAlgorithm::HmacSha1),
            freshness,
            ..ProverConfig::recommended()
        };
        Verifier::new(&config, &KEY).unwrap()
    }

    #[test]
    fn counters_increase_monotonically() {
        let mut v = verifier(FreshnessKind::Counter);
        let c = |req: AttestRequest| match req.freshness {
            FreshnessField::Counter(c) => c,
            _ => panic!("expected counter"),
        };
        let c1 = c(v.make_request().unwrap());
        let c2 = c(v.make_request().unwrap());
        assert!(c2 > c1);
    }

    #[test]
    fn nonces_are_unique() {
        let mut v = verifier(FreshnessKind::NonceHistory);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            match v.make_request().unwrap().freshness {
                FreshnessField::Nonce(n) => assert!(seen.insert(n), "duplicate nonce"),
                _ => panic!("expected nonce"),
            }
        }
    }

    #[test]
    fn timestamps_track_the_clock() {
        let mut v = verifier(FreshnessKind::Timestamp);
        v.set_time_ms(1234);
        match v.make_request().unwrap().freshness {
            FreshnessField::Timestamp(t) => assert_eq!(t, 1234),
            _ => panic!("expected timestamp"),
        }
        v.advance_time_ms(766);
        assert_eq!(v.now_ms(), 2000);
    }

    #[test]
    fn requests_are_authenticated() {
        let mut v = verifier(FreshnessKind::Counter);
        let req = v.make_request().unwrap();
        assert!(!req.auth.is_empty());
        // The signer covers the header: flipping a challenge byte breaks it.
        let signer = RequestSigner::new(v.auth_method(), &KEY).unwrap();
        let checker = signer.checker().unwrap();
        assert!(checker.check(&req.signed_bytes(), &req.auth));
        let mut tampered = req.clone();
        tampered.challenge[0] ^= 1;
        assert!(!checker.check(&tampered.signed_bytes(), &req.auth));
    }

    #[test]
    fn challenges_differ_between_requests() {
        let mut v = verifier(FreshnessKind::None);
        let a = v.make_request().unwrap();
        let b = v.make_request().unwrap();
        assert_ne!(a.challenge, b.challenge);
    }

    #[test]
    fn segmented_check_recomputes_from_scratch() {
        let config = ProverConfig::recommended_segmented();
        let mut v = Verifier::new(&config, &KEY).unwrap();
        let req = v.make_request().unwrap();
        assert_eq!(req.scope, AttestScope::Segmented);
        let memory = vec![3u8; 64 * 1024];
        let seg_len = config.segmented.unwrap().segment_len;
        let digests = segcache::segment_digests(&memory, seg_len as usize);
        let combined = segcache::combined_input(&req.signed_bytes(), seg_len, &digests);
        let good = AttestResponse {
            report: MacKey::new(MacAlgorithm::HmacSha1, &KEY)
                .unwrap()
                .compute(&combined),
        };
        assert!(v.check_response(&req, &good, &memory));
        // One flipped byte anywhere flips one segment digest.
        let mut tampered = memory.clone();
        tampered[40_000] ^= 1;
        assert!(!v.check_response(&req, &good, &tampered));
        // A whole-memory-construction response must not pass a segmented
        // check (downgrade detection).
        let mut macced = req.signed_bytes();
        macced.extend_from_slice(&memory);
        let whole = AttestResponse {
            report: MacKey::new(MacAlgorithm::HmacSha1, &KEY)
                .unwrap()
                .compute(&macced),
        };
        assert!(!v.check_response(&req, &whole, &memory));
    }

    #[test]
    fn check_response_detects_memory_tampering() {
        let mut v = verifier(FreshnessKind::Counter);
        let req = v.make_request().unwrap();
        let memory = vec![0u8; 1024];
        // Fabricate the response the prover would produce.
        let mut macced = req.signed_bytes();
        macced.extend_from_slice(&memory);
        let good = AttestResponse {
            report: MacKey::new(MacAlgorithm::HmacSha1, &KEY)
                .unwrap()
                .compute(&macced),
        };
        assert!(v.check_response(&req, &good, &memory));
        let mut tampered = memory.clone();
        tampered[512] = 0xff;
        assert!(!v.check_response(&req, &good, &tampered));
    }
}
