//! The verifier (`Vrf`): issues authenticated, fresh attestation requests
//! and validates responses.
//!
//! The verifier is assumed to be a powerful machine; its costs are not
//! modelled. Its clock is a plain millisecond counter that experiment
//! scenarios advance in lockstep with (or deliberately apart from) the
//! prover's — clock synchronization itself is the paper's future work
//! item 2.

use proverguard_crypto::drbg::HmacDrbg;
use proverguard_crypto::mac::MacKey;

use crate::auth::{AuthMethod, RequestSigner};
use crate::error::AttestError;
use crate::freshness::FreshnessKind;
use crate::message::{
    AttestRequest, AttestResponse, AttestScope, FreshnessField, CHALLENGE_SIZE, NONCE_SIZE,
};
use crate::prover::ProverConfig;
use crate::segcache::{self, SegmentedParams};

/// The verifier's state.
#[derive(Debug, Clone)]
pub struct Verifier {
    signer: RequestSigner,
    response_key: MacKey,
    freshness: FreshnessKind,
    segmented: Option<SegmentedParams>,
    next_counter: u64,
    next_sync_counter: u64,
    next_command_counter: u64,
    clock_ms: u64,
    drbg: HmacDrbg,
}

impl Verifier {
    /// Builds the verifier peer for a prover `config`, sharing `key`
    /// (`K_Attest`).
    ///
    /// # Errors
    ///
    /// [`AttestError::Crypto`] if `key` does not fit the configured
    /// algorithms.
    pub fn new(config: &ProverConfig, key: &[u8; 16]) -> Result<Self, AttestError> {
        Ok(Verifier {
            signer: RequestSigner::new(config.auth, key)?,
            response_key: MacKey::new(config.response_mac, key)?,
            freshness: config.freshness,
            segmented: config.segmented,
            next_counter: 1,
            next_sync_counter: 1,
            next_command_counter: 1,
            clock_ms: 0,
            drbg: HmacDrbg::new(key, b"proverguard-verifier-nonces"),
        })
    }

    /// The authentication method in use.
    #[must_use]
    pub fn auth_method(&self) -> AuthMethod {
        match &self.signer {
            RequestSigner::None => AuthMethod::None,
            RequestSigner::Mac(k) => AuthMethod::Mac(k.algorithm()),
            RequestSigner::Ecdsa(_) => AuthMethod::Ecdsa,
        }
    }

    /// Current verifier clock in milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Advances the verifier clock.
    pub fn advance_time_ms(&mut self, ms: u64) {
        self.clock_ms = self.clock_ms.saturating_add(ms);
    }

    /// Sets the verifier clock (scenario control).
    pub fn set_time_ms(&mut self, ms: u64) {
        self.clock_ms = ms;
    }

    /// Creates the next authenticated attestation request.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` reserves room for
    /// signature failures.
    pub fn make_request(&mut self) -> Result<AttestRequest, AttestError> {
        let freshness = match self.freshness {
            FreshnessKind::None => FreshnessField::None,
            FreshnessKind::NonceHistory => {
                let mut nonce = [0u8; NONCE_SIZE];
                self.drbg.fill(&mut nonce);
                FreshnessField::Nonce(nonce)
            }
            FreshnessKind::Counter => {
                let c = self.next_counter;
                self.next_counter += 1;
                FreshnessField::Counter(c)
            }
            FreshnessKind::Timestamp => FreshnessField::Timestamp(self.clock_ms),
        };
        let mut challenge = [0u8; CHALLENGE_SIZE];
        self.drbg.fill(&mut challenge);
        let scope = if self.segmented.is_some() {
            AttestScope::Segmented
        } else {
            AttestScope::Whole
        };
        let mut request = AttestRequest {
            scope,
            freshness,
            challenge,
            auth: Vec::new(),
        };
        request.auth = self.signer.sign(&request.signed_bytes());
        Ok(request)
    }

    /// Creates the next authenticated clock-synchronization message
    /// (§7 future-work item 2) carrying the verifier's current time.
    pub fn make_sync_request(&mut self) -> crate::clocksync::SyncRequest {
        let counter = self.next_sync_counter;
        self.next_sync_counter += 1;
        let mut request = crate::clocksync::SyncRequest {
            counter,
            verifier_time_ms: self.clock_ms,
            auth: Vec::new(),
        };
        request.auth = self.signer.sign(&request.signed_bytes());
        request
    }

    /// Creates the next authenticated gated command (§7 item 3).
    pub fn make_command(
        &mut self,
        command: crate::services::Command,
    ) -> crate::services::CommandRequest {
        let counter = self.next_command_counter;
        self.next_command_counter += 1;
        let mut request = crate::services::CommandRequest {
            counter,
            command,
            auth: Vec::new(),
        };
        request.auth = self.signer.sign(&request.signed_bytes());
        request
    }

    /// Validates a command receipt against the expected post-state digest.
    #[must_use]
    pub fn check_command_receipt(
        &self,
        receipt: &crate::services::CommandReceipt,
        command: &crate::services::Command,
        expected_digest: &[u8; 20],
    ) -> bool {
        receipt.verify(&self.response_key, command, expected_digest)
    }

    /// Validates a response against the expected memory image, using the
    /// construction the request's (authenticated) scope byte named. The
    /// verifier recomputes the segmented digest list from scratch — only
    /// the prover, which trusts its dirty-tracking hardware, may cache.
    #[must_use]
    pub fn check_response(
        &self,
        request: &AttestRequest,
        response: &AttestResponse,
        expected_memory: &[u8],
    ) -> bool {
        match request.scope {
            AttestScope::Whole => {
                let mut macced = request.signed_bytes();
                macced.extend_from_slice(expected_memory);
                self.response_key.verify(&macced, &response.report)
            }
            AttestScope::Segmented => {
                let Some(params) = &self.segmented else {
                    return false;
                };
                let digests =
                    segcache::segment_digests(expected_memory, params.segment_len as usize);
                let combined =
                    segcache::combined_input(&request.signed_bytes(), params.segment_len, &digests);
                self.response_key.verify(&combined, &response.report)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_crypto::mac::MacAlgorithm;

    const KEY: [u8; 16] = [9; 16];

    fn verifier(freshness: FreshnessKind) -> Verifier {
        let config = ProverConfig {
            auth: AuthMethod::Mac(MacAlgorithm::HmacSha1),
            freshness,
            ..ProverConfig::recommended()
        };
        Verifier::new(&config, &KEY).unwrap()
    }

    #[test]
    fn counters_increase_monotonically() {
        let mut v = verifier(FreshnessKind::Counter);
        let c = |req: AttestRequest| match req.freshness {
            FreshnessField::Counter(c) => c,
            _ => panic!("expected counter"),
        };
        let c1 = c(v.make_request().unwrap());
        let c2 = c(v.make_request().unwrap());
        assert!(c2 > c1);
    }

    #[test]
    fn nonces_are_unique() {
        let mut v = verifier(FreshnessKind::NonceHistory);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            match v.make_request().unwrap().freshness {
                FreshnessField::Nonce(n) => assert!(seen.insert(n), "duplicate nonce"),
                _ => panic!("expected nonce"),
            }
        }
    }

    #[test]
    fn timestamps_track_the_clock() {
        let mut v = verifier(FreshnessKind::Timestamp);
        v.set_time_ms(1234);
        match v.make_request().unwrap().freshness {
            FreshnessField::Timestamp(t) => assert_eq!(t, 1234),
            _ => panic!("expected timestamp"),
        }
        v.advance_time_ms(766);
        assert_eq!(v.now_ms(), 2000);
    }

    #[test]
    fn requests_are_authenticated() {
        let mut v = verifier(FreshnessKind::Counter);
        let req = v.make_request().unwrap();
        assert!(!req.auth.is_empty());
        // The signer covers the header: flipping a challenge byte breaks it.
        let signer = RequestSigner::new(v.auth_method(), &KEY).unwrap();
        let checker = signer.checker().unwrap();
        assert!(checker.check(&req.signed_bytes(), &req.auth));
        let mut tampered = req.clone();
        tampered.challenge[0] ^= 1;
        assert!(!checker.check(&tampered.signed_bytes(), &req.auth));
    }

    #[test]
    fn challenges_differ_between_requests() {
        let mut v = verifier(FreshnessKind::None);
        let a = v.make_request().unwrap();
        let b = v.make_request().unwrap();
        assert_ne!(a.challenge, b.challenge);
    }

    #[test]
    fn segmented_check_recomputes_from_scratch() {
        let config = ProverConfig::recommended_segmented();
        let mut v = Verifier::new(&config, &KEY).unwrap();
        let req = v.make_request().unwrap();
        assert_eq!(req.scope, AttestScope::Segmented);
        let memory = vec![3u8; 64 * 1024];
        let seg_len = config.segmented.unwrap().segment_len;
        let digests = segcache::segment_digests(&memory, seg_len as usize);
        let combined = segcache::combined_input(&req.signed_bytes(), seg_len, &digests);
        let good = AttestResponse {
            report: MacKey::new(MacAlgorithm::HmacSha1, &KEY)
                .unwrap()
                .compute(&combined),
        };
        assert!(v.check_response(&req, &good, &memory));
        // One flipped byte anywhere flips one segment digest.
        let mut tampered = memory.clone();
        tampered[40_000] ^= 1;
        assert!(!v.check_response(&req, &good, &tampered));
        // A whole-memory-construction response must not pass a segmented
        // check (downgrade detection).
        let mut macced = req.signed_bytes();
        macced.extend_from_slice(&memory);
        let whole = AttestResponse {
            report: MacKey::new(MacAlgorithm::HmacSha1, &KEY)
                .unwrap()
                .compute(&macced),
        };
        assert!(!v.check_response(&req, &whole, &memory));
    }

    #[test]
    fn check_response_detects_memory_tampering() {
        let mut v = verifier(FreshnessKind::Counter);
        let req = v.make_request().unwrap();
        let memory = vec![0u8; 1024];
        // Fabricate the response the prover would produce.
        let mut macced = req.signed_bytes();
        macced.extend_from_slice(&memory);
        let good = AttestResponse {
            report: MacKey::new(MacAlgorithm::HmacSha1, &KEY)
                .unwrap()
                .compute(&macced),
        };
        assert!(v.check_response(&req, &good, &memory));
        let mut tampered = memory.clone();
        tampered[512] = 0xff;
        assert!(!v.check_response(&req, &good, &tampered));
    }
}
