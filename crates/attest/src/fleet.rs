//! Verifier-side fleet management: health scoring, circuit breakers, and
//! bounded-concurrency scheduling of attestation rounds.
//!
//! One [`SessionDriver`](crate::session::SessionDriver) grades a single
//! channel; a real deployment attests *many* provers continuously. Doing
//! that naively hurts the fleet twice over: a dead or depleted device
//! eats a full retry budget every round (the verifier becomes its own
//! flood, §3.1's DoS economics turned inward), and a compromised device
//! that will never verify keeps getting hammered anyway. The
//! [`FleetController`] fixes both:
//!
//! - a per-device **health score** — an exponentially weighted moving
//!   average of session outcomes — separates flaky from dead;
//! - a per-device **circuit breaker** stops scheduling a device after
//!   consecutive failures (`Closed → Open`), lets a cooldown pass, then
//!   sends a single **probe** session (`Open → HalfOpen`); the probe's
//!   outcome either re-closes the breaker or re-opens it for another
//!   cooldown;
//! - **bounded concurrency**: at most `max_concurrent` sessions per
//!   scheduling round, handed out round-robin so every eligible device
//!   eventually gets a turn — the liveness half of the soak invariants.
//!
//! The controller is pure policy: it decides *who* to attest and records
//! *what happened*, while the caller owns the transports and runs the
//! sessions. That keeps it deterministic and testable without a single
//! simulated device.

use crate::session::SessionReport;

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive session failures that trip `Closed → Open`.
    pub failure_threshold: u32,
    /// How long an open breaker waits before allowing a half-open probe.
    pub open_cooldown_ms: u64,
    /// Probe successes required to re-close from `HalfOpen`.
    pub half_open_successes: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            open_cooldown_ms: 30_000,
            half_open_successes: 1,
        }
    }
}

/// Where a breaker is in its `Closed → Open → HalfOpen` cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: sessions flow normally.
    Closed,
    /// Tripped: no sessions until `until_ms`.
    Open {
        /// When the cooldown expires and a probe becomes legal.
        until_ms: u64,
    },
    /// Cooldown expired: probe sessions decide which way to go.
    HalfOpen,
}

/// One device's circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with `policy`.
    #[must_use]
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            trips: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// May a session be attempted at `now_ms`? An expired cooldown flips
    /// `Open → HalfOpen` as a side effect — the caller's next session
    /// against this device is the probe.
    pub fn can_attempt(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until_ms } if now_ms >= until_ms => {
                self.state = BreakerState::HalfOpen;
                self.half_open_successes = 0;
                proverguard_telemetry::trace::event_with("fleet.breaker.half_open", now_ms);
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Feeds one session outcome back in.
    pub fn record(&mut self, succeeded: bool, now_ms: u64) {
        if succeeded {
            self.consecutive_failures = 0;
            match self.state {
                BreakerState::HalfOpen => {
                    self.half_open_successes += 1;
                    if self.half_open_successes >= self.policy.half_open_successes {
                        self.state = BreakerState::Closed;
                        proverguard_telemetry::trace::event_with("fleet.breaker.closed", now_ms);
                        proverguard_telemetry::metrics::counter_add("fleet.breaker.closes", 1);
                    }
                }
                BreakerState::Closed | BreakerState::Open { .. } => {}
            }
            return;
        }
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = match self.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.policy.failure_threshold,
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                until_ms: now_ms.saturating_add(self.policy.open_cooldown_ms),
            };
            self.trips = self.trips.saturating_add(1);
            proverguard_telemetry::trace::event_with("fleet.breaker.open", now_ms);
            proverguard_telemetry::metrics::counter_add("fleet.breaker.trips", 1);
        }
    }
}

/// Fleet-level tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPolicy {
    /// Per-device breaker tuning.
    pub breaker: BreakerPolicy,
    /// Maximum sessions handed out per scheduling round.
    pub max_concurrent: usize,
    /// EWMA smoothing factor for the health score, in `(0, 1]`: the
    /// weight of the newest outcome.
    pub ewma_alpha: f64,
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy {
            breaker: BreakerPolicy::default(),
            max_concurrent: 4,
            ewma_alpha: 0.3,
        }
    }
}

/// Everything the controller knows about one device.
#[derive(Debug, Clone)]
pub struct DeviceHealth {
    /// The device's circuit breaker.
    pub breaker: CircuitBreaker,
    /// EWMA of session outcomes in `[0, 1]`; starts at 1 (innocent until
    /// proven flaky).
    pub score: f64,
    /// Sessions driven against this device.
    pub sessions: u64,
    /// Sessions that verified.
    pub successes: u64,
    /// When the last session finished, if any.
    pub last_session_ms: Option<u64>,
    /// When the last *successful* session finished, if any.
    pub last_success_ms: Option<u64>,
}

impl DeviceHealth {
    fn new(policy: &FleetPolicy) -> Self {
        DeviceHealth {
            breaker: CircuitBreaker::new(policy.breaker),
            score: 1.0,
            sessions: 0,
            successes: 0,
            last_session_ms: None,
            last_success_ms: None,
        }
    }

    /// `true` while the breaker is closed.
    #[must_use]
    pub fn available(&self) -> bool {
        self.breaker.state() == BreakerState::Closed
    }

    /// `true` once the health score has decayed below `threshold` — the
    /// "looks compromised or depleted" signal operators alert on.
    #[must_use]
    pub fn suspect(&self, threshold: f64) -> bool {
        self.score < threshold
    }
}

/// Schedules attestation rounds across N provers.
#[derive(Debug, Clone)]
pub struct FleetController {
    policy: FleetPolicy,
    devices: Vec<DeviceHealth>,
    /// Round-robin start position for the next schedule call.
    cursor: usize,
}

impl FleetController {
    /// A controller for `n` devices.
    #[must_use]
    pub fn new(n: usize, policy: FleetPolicy) -> Self {
        FleetController {
            devices: (0..n).map(|_| DeviceHealth::new(&policy)).collect(),
            policy,
            cursor: 0,
        }
    }

    /// Number of managed devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` when managing no devices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// One device's health record.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn device(&self, index: usize) -> &DeviceHealth {
        &self.devices[index]
    }

    /// All device health records.
    #[must_use]
    pub fn devices(&self) -> &[DeviceHealth] {
        &self.devices
    }

    /// Picks the devices to attest this round: up to `max_concurrent`,
    /// round-robin from where the last round stopped, skipping devices
    /// whose breaker is open. Expired cooldowns flip to half-open here
    /// and get their probe slot like anyone else.
    pub fn schedule(&mut self, now_ms: u64) -> Vec<usize> {
        let n = self.devices.len();
        if n == 0 || self.policy.max_concurrent == 0 {
            return Vec::new();
        }
        let mut chosen = Vec::new();
        for step in 0..n {
            if chosen.len() >= self.policy.max_concurrent {
                break;
            }
            let idx = (self.cursor + step) % n;
            if self.devices[idx].breaker.can_attempt(now_ms) {
                chosen.push(idx);
            }
        }
        // Next round starts after the last device we *considered*, so a
        // long streak of open breakers cannot starve the tail.
        self.cursor = (self.cursor + n.min(self.policy.max_concurrent.max(1))) % n;
        chosen
    }

    /// Records a driven session's outcome for `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn record(&mut self, index: usize, report: &SessionReport, now_ms: u64) {
        self.record_outcome(index, report.succeeded(), now_ms);
    }

    /// Records a bare success/failure for `index` (for callers that do
    /// not use [`SessionReport`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn record_outcome(&mut self, index: usize, succeeded: bool, now_ms: u64) {
        let alpha = self.policy.ewma_alpha;
        let d = &mut self.devices[index];
        d.sessions += 1;
        d.last_session_ms = Some(now_ms);
        if succeeded {
            d.successes += 1;
            d.last_success_ms = Some(now_ms);
        }
        let outcome = if succeeded { 1.0 } else { 0.0 };
        d.score = alpha * outcome + (1.0 - alpha) * d.score;
        d.breaker.record(succeeded, now_ms);
    }

    /// Indices of devices whose breaker is currently not closed.
    #[must_use]
    pub fn open_devices(&self) -> Vec<usize> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.available())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> FleetPolicy {
        FleetPolicy {
            breaker: BreakerPolicy {
                failure_threshold: 2,
                open_cooldown_ms: 1_000,
                half_open_successes: 1,
            },
            max_concurrent: 2,
            ewma_alpha: 0.5,
        }
    }

    #[test]
    fn breaker_full_cycle() {
        let mut b = CircuitBreaker::new(policy().breaker);
        assert!(b.can_attempt(0));
        b.record(false, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false, 10);
        assert_eq!(b.state(), BreakerState::Open { until_ms: 1_010 });
        assert_eq!(b.trips(), 1);
        // Cooldown not yet over.
        assert!(!b.can_attempt(500));
        // Expired: half-open, probe allowed.
        assert!(b.can_attempt(1_010));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe re-opens immediately.
        b.record(false, 1_020);
        assert_eq!(b.state(), BreakerState::Open { until_ms: 2_020 });
        // Next probe succeeds: closed again.
        assert!(b.can_attempt(2_020));
        b.record(true, 2_030);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_in_closed_state_resets_failure_streak() {
        let mut b = CircuitBreaker::new(policy().breaker);
        b.record(false, 0);
        b.record(true, 1);
        b.record(false, 2);
        // Two non-consecutive failures: still closed.
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn schedule_is_bounded_and_fair() {
        let mut fleet = FleetController::new(5, policy());
        let first = fleet.schedule(0);
        assert_eq!(first, vec![0, 1]);
        let second = fleet.schedule(0);
        assert_eq!(second, vec![2, 3]);
        let third = fleet.schedule(0);
        assert_eq!(third, vec![4, 0]);
    }

    #[test]
    fn open_breakers_are_skipped_then_probed() {
        let mut fleet = FleetController::new(3, policy());
        // Device 1 fails twice: breaker opens.
        for _ in 0..2 {
            fleet.record_outcome(1, false, 0);
        }
        assert_eq!(fleet.open_devices(), vec![1]);
        // While open, schedule never hands out device 1 …
        for _ in 0..4 {
            assert!(!fleet.schedule(10).contains(&1));
        }
        // … but after the cooldown it gets a probe slot again.
        let later: Vec<usize> = (0..3).flat_map(|_| fleet.schedule(2_000)).collect();
        assert!(later.contains(&1));
        assert_eq!(fleet.device(1).breaker.state(), BreakerState::HalfOpen);
        // A successful probe re-closes it.
        fleet.record_outcome(1, true, 2_100);
        assert!(fleet.device(1).available());
    }

    #[test]
    fn health_score_decays_and_recovers() {
        let mut fleet = FleetController::new(1, policy());
        assert!(!fleet.device(0).suspect(0.5));
        fleet.record_outcome(0, false, 0);
        fleet.record_outcome(0, false, 1);
        // 1.0 -> 0.5 -> 0.25 with alpha 0.5.
        assert!(fleet.device(0).suspect(0.5));
        fleet.record_outcome(0, true, 2);
        fleet.record_outcome(0, true, 3);
        assert!(fleet.device(0).score > 0.5);
        assert_eq!(fleet.device(0).successes, 2);
        assert_eq!(fleet.device(0).sessions, 4);
    }

    #[test]
    fn empty_fleet_schedules_nothing() {
        let mut fleet = FleetController::new(0, policy());
        assert!(fleet.is_empty());
        assert!(fleet.schedule(0).is_empty());
    }
}
