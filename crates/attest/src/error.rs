//! Attestation-layer errors and rejection reasons.

use std::error::Error;
use std::fmt;

use proverguard_crypto::CryptoError;
use proverguard_mcu::McuError;

/// Why the prover rejected an attestation request *before* doing the
/// expensive work — the whole point of the paper's defences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RejectReason {
    /// The request's MAC or signature did not verify.
    BadAuth,
    /// The nonce was already seen (nonce-history policy).
    NonceReused,
    /// The counter was not strictly greater than `counter_R`.
    StaleCounter,
    /// The timestamp was not newer than the last accepted one.
    TimestampNotMonotonic,
    /// The timestamp is too far from the prover's clock (delayed or
    /// clock-skewed request).
    TimestampOutOfWindow,
    /// The request carried a freshness field of the wrong kind for the
    /// prover's policy.
    FreshnessKindMismatch,
    /// The wire bytes did not parse as a request at all (truncated,
    /// corrupted, or garbage) — rejected before any cryptography runs.
    Malformed,
    /// The admission controller shed the request: the prover's
    /// attestation cycle/energy budget is exhausted. Rejected before any
    /// cryptography runs.
    Throttled,
    /// The prover is in low-battery degraded mode and the request did not
    /// carry a fresh monotonic counter/timestamp. Rejected before any
    /// cryptography runs.
    DegradedMode,
    /// The request asked for the segmented response construction but the
    /// prover has no segment cache configured. Rejected right after
    /// authentication, before any freshness state is consumed or memory
    /// work done.
    ScopeUnsupported,
    /// The named session is unknown, idle-expired, or was evicted: the
    /// peer must run a fresh attested handshake. No session key material
    /// is consulted — the lookup fails before any MAC check.
    SessionExpired,
    /// A session frame's sequence number fell inside the replay window
    /// (already seen) or behind it. Rejected before the frame MAC is
    /// checked — replays cost the prover no cryptography at all.
    SessionReplay,
    /// A session frame's MAC did not verify under the session key, or its
    /// direction/epoch did not match the session state.
    SessionAuth,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BadAuth => write!(f, "request authentication failed"),
            RejectReason::NonceReused => write!(f, "nonce already seen"),
            RejectReason::StaleCounter => write!(f, "counter not strictly increasing"),
            RejectReason::TimestampNotMonotonic => {
                write!(f, "timestamp not newer than last accepted")
            }
            RejectReason::TimestampOutOfWindow => {
                write!(f, "timestamp outside the acceptance window")
            }
            RejectReason::FreshnessKindMismatch => {
                write!(f, "freshness field kind does not match the policy")
            }
            RejectReason::Malformed => write!(f, "wire bytes failed to parse"),
            RejectReason::Throttled => {
                write!(
                    f,
                    "admission controller shed the request (budget exhausted)"
                )
            }
            RejectReason::DegradedMode => {
                write!(f, "low-battery degraded mode admits only fresh counters")
            }
            RejectReason::ScopeUnsupported => {
                write!(f, "segmented scope not supported by this prover")
            }
            RejectReason::SessionExpired => {
                write!(f, "session unknown, expired, or evicted; re-handshake")
            }
            RejectReason::SessionReplay => {
                write!(f, "session frame sequence number already seen")
            }
            RejectReason::SessionAuth => {
                write!(f, "session frame authentication failed")
            }
        }
    }
}

/// Errors surfaced by the attestation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttestError {
    /// The prover rejected the request (the defences worked).
    Rejected(RejectReason),
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// The device raised a fault (MPU violation, bus fault, …).
    Device(McuError),
    /// The configuration requires a clock the device does not have.
    MissingClock,
    /// A message failed to parse.
    MalformedMessage {
        /// Explanation.
        reason: String,
    },
    /// Configuration is internally inconsistent (e.g. timestamp freshness
    /// without any clock).
    BadConfig {
        /// Explanation.
        reason: String,
    },
    /// Power was lost mid-operation (a reboot during a flash write left
    /// the image torn). The device must go through recovery boot.
    PowerLoss,
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestError::Rejected(reason) => write!(f, "request rejected: {reason}"),
            AttestError::Crypto(e) => write!(f, "crypto error: {e}"),
            AttestError::Device(e) => write!(f, "device error: {e}"),
            AttestError::MissingClock => write!(f, "prover has no clock installed"),
            AttestError::MalformedMessage { reason } => {
                write!(f, "malformed message: {reason}")
            }
            AttestError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            AttestError::PowerLoss => {
                write!(f, "power lost mid-operation; flash image is torn")
            }
        }
    }
}

impl Error for AttestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttestError::Crypto(e) => Some(e),
            AttestError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for AttestError {
    fn from(e: CryptoError) -> Self {
        AttestError::Crypto(e)
    }
}

impl From<McuError> for AttestError {
    fn from(e: McuError) -> Self {
        AttestError::Device(e)
    }
}

impl AttestError {
    /// `true` iff this error is a rejection (detection), not a failure.
    #[must_use]
    pub fn is_rejection(&self) -> bool {
        matches!(self, AttestError::Rejected(_))
    }

    /// The rejection reason, if this is a rejection.
    #[must_use]
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            AttestError::Rejected(r) => Some(*r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AttestError::Rejected(RejectReason::BadAuth);
        assert_eq!(
            e.to_string(),
            "request rejected: request authentication failed"
        );
        assert!(e.is_rejection());
        assert_eq!(e.reject_reason(), Some(RejectReason::BadAuth));
    }

    #[test]
    fn conversions_preserve_source() {
        let e: AttestError = CryptoError::BadMac.into();
        assert!(matches!(e, AttestError::Crypto(CryptoError::BadMac)));
        assert!(e.source().is_some());
        assert!(!e.is_rejection());

        let e: AttestError = McuError::MpuLocked.into();
        assert!(matches!(e, AttestError::Device(McuError::MpuLocked)));
    }
}
