//! Simulated OTA-campaign fleet: thousands of devices answering
//! [`CampaignAction`]s under a seeded fault schedule.
//!
//! The real prover stack (a full [`World`](crate::world::World) per
//! device, ≈790 KiB of simulated MCU memory each) is the right tool for
//! a handful of end-to-end devices, but a 2,000-device staged rollout
//! needs a lighter model. [`SimFleet`] keeps exactly the state the
//! campaign state machine can observe — which image (old, new, torn) is
//! in each device's flash, whether the device is reachable, whether it
//! is compromised — and rolls a per-device seeded RNG against the PR-2
//! lossy-radio rates ([`FaultConfig::lossy`]: 300 ‰ drops, 200 ‰ long
//! delays) to decide each action's [`DeviceOutcome`].
//!
//! Because the fleet tracks *actual* flash contents independently of
//! what it reports, it doubles as the soak's oracle: after convergence,
//! `campaign_soak` asserts that every device the controller marked
//! `Healthy` really holds the new image (the zero-wrong-image gate) and
//! that every torn flash was re-flashed, never trusted.

use proverguard_attest::campaign::{CampaignAction, DeviceOutcome, ImageId};

use crate::fault::FaultConfig;

/// What is actually in a simulated device's flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFlash {
    /// The campaign's starting image.
    Old,
    /// The rollout target, fully programmed.
    New,
    /// A power loss interrupted the erase-then-program sequence: the
    /// flash holds a prefix of one image over zeros — neither digest
    /// matches.
    Torn,
}

/// Per-fleet simulation tuning. All probabilities are per-mille rolls
/// against a per-device RNG derived from [`CampaignSimConfig::seed`].
#[derive(Debug, Clone)]
pub struct CampaignSimConfig {
    /// Master seed; per-device schedules derive from it.
    pub seed: u64,
    /// Fleet size.
    pub devices: usize,
    /// ‰ chance an action's session is lost (maps to `Timeout`) — the
    /// PR-2 drop rate by default.
    pub drop_per_mille: u16,
    /// ‰ chance an action is delayed past the retry budget (also a
    /// `Timeout`) — the PR-2 delay rate by default.
    pub delay_per_mille: u16,
    /// ‰ chance the gateway sheds the session (`Busy`).
    pub busy_per_mille: u16,
    /// ‰ chance power dies mid-flash during an `UpdateFirmware`,
    /// leaving a torn image.
    pub torn_per_mille: u16,
    /// ‰ chance the device roams offline when an action reaches it.
    pub offline_per_mille: u16,
    /// Ticks an offline device stays away before it can return.
    pub offline_return_ticks: u64,
    /// The *last* `compromised` device indices present a valid MAC over
    /// the wrong image on every attestation: the quarantine signature.
    /// (Placed at the top of the index space so they land in a late
    /// wave, compromised *mid-campaign* rather than at the canary.)
    pub compromised: usize,
    /// The *new* image is bad: every gating attestation of `New` comes
    /// back as neither image (the digest of what was actually flashed
    /// matches nothing the verifier expects).
    pub bad_image: bool,
}

impl CampaignSimConfig {
    /// The PR-2 lossy-radio schedule over `devices` devices: the
    /// [`FaultConfig::lossy`] drop/delay rates, a 5 ‰ torn-flash rate,
    /// 10 ‰ roaming, and one compromised device per 500.
    #[must_use]
    pub fn lossy(seed: u64, devices: usize) -> Self {
        let template = FaultConfig::lossy(seed);
        CampaignSimConfig {
            seed,
            devices,
            drop_per_mille: template.drop_per_mille,
            delay_per_mille: template.delay_per_mille,
            busy_per_mille: 20,
            torn_per_mille: 5,
            offline_per_mille: 10,
            offline_return_ticks: 6,
            compromised: devices / 500,
            bad_image: false,
        }
    }
}

/// One simulated device.
#[derive(Debug, Clone)]
struct SimDevice {
    flash: SimFlash,
    rng: u64,
    /// `Some(t)` while roaming: reachable again at tick `t`.
    offline_until: Option<u64>,
    /// Set once the fleet has reported `Offline` for this park (so the
    /// return can be polled exactly once).
    parked_reported: bool,
}

/// A deterministic fleet of simulated campaign targets.
#[derive(Debug)]
pub struct SimFleet {
    config: CampaignSimConfig,
    devices: Vec<SimDevice>,
    /// Torn flashes produced (oracle counter).
    pub torn_flashes: u64,
    /// Actions answered.
    pub actions: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimFleet {
    /// A fleet per `config`, every device starting on the old image.
    #[must_use]
    pub fn new(config: CampaignSimConfig) -> Self {
        let devices = (0..config.devices)
            .map(|i| {
                let mut seed = config.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                // Warm the stream so adjacent devices decorrelate.
                let _ = splitmix64(&mut seed);
                SimDevice {
                    flash: SimFlash::Old,
                    rng: seed,
                    offline_until: None,
                    parked_reported: false,
                }
            })
            .collect();
        SimFleet {
            config,
            devices,
            torn_flashes: 0,
            actions: 0,
        }
    }

    /// Actual flash content of device `i` (oracle view — the campaign
    /// controller never sees this directly).
    #[must_use]
    pub fn flash_of(&self, i: usize) -> SimFlash {
        self.devices[i].flash
    }

    /// Whether device `i` is compromised (wrong-image MAC on every
    /// attestation).
    #[must_use]
    pub fn is_compromised(&self, i: usize) -> bool {
        i + self.config.compromised >= self.config.devices
    }

    fn roll(&mut self, i: usize, per_mille: u16) -> bool {
        (splitmix64(&mut self.devices[i].rng) % 1000) < u64::from(per_mille)
    }

    /// Devices whose roam ended by `now`: report each to the controller
    /// as [`DeviceOutcome::CameOnline`]. Drains the returns (a device is
    /// listed once per park).
    pub fn poll_returns(&mut self, now: u64) -> Vec<usize> {
        let mut back = Vec::new();
        for (i, d) in self.devices.iter_mut().enumerate() {
            if let Some(until) = d.offline_until {
                if d.parked_reported && now >= until {
                    d.offline_until = None;
                    d.parked_reported = false;
                    back.push(i);
                }
            }
        }
        back
    }

    /// Answers one campaign action at tick `now`.
    pub fn perform(&mut self, action: CampaignAction, now: u64) -> DeviceOutcome {
        self.actions += 1;
        let i = action.device();

        // Roaming: an already-offline device stays silent; otherwise roll
        // for a new park. Either way the campaign sees `Offline`.
        if self.devices[i].offline_until.is_some() {
            self.devices[i].parked_reported = true;
            return DeviceOutcome::Offline;
        }
        if self.roll(i, self.config.offline_per_mille) {
            self.devices[i].offline_until = Some(now + self.config.offline_return_ticks);
            self.devices[i].parked_reported = true;
            return DeviceOutcome::Offline;
        }

        // Radio: drops and over-budget delays are both timeouts from the
        // session driver's point of view; the gateway may also shed.
        if self.roll(i, self.config.drop_per_mille) || self.roll(i, self.config.delay_per_mille) {
            return DeviceOutcome::Timeout;
        }
        if self.roll(i, self.config.busy_per_mille) {
            return DeviceOutcome::Busy;
        }

        match action {
            CampaignAction::SendUpdate { image, .. } => {
                if self.roll(i, self.config.torn_per_mille) {
                    // Power died after the erase, mid-program: the flash
                    // now matches neither image.
                    self.devices[i].flash = SimFlash::Torn;
                    self.torn_flashes += 1;
                    return DeviceOutcome::UpdateTorn;
                }
                self.devices[i].flash = match image {
                    ImageId::Old => SimFlash::Old,
                    ImageId::New => SimFlash::New,
                };
                DeviceOutcome::UpdateOk
            }
            CampaignAction::Attest { image, .. } => {
                if self.is_compromised(i) {
                    // A valid MAC over the wrong image, every time.
                    return DeviceOutcome::AttestedOther;
                }
                match (self.devices[i].flash, image) {
                    (SimFlash::Torn, _) => DeviceOutcome::AttestedNeither,
                    (SimFlash::New, ImageId::New) if self.config.bad_image => {
                        // The device faithfully attests what it flashed —
                        // but the bad image hashes to nothing the
                        // verifier expects.
                        DeviceOutcome::AttestedNeither
                    }
                    (SimFlash::Old, ImageId::Old) | (SimFlash::New, ImageId::New) => {
                        DeviceOutcome::AttestedExpected
                    }
                    _ => DeviceOutcome::AttestedOther,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_attest::campaign::CampaignAction;

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let cfg = CampaignSimConfig::lossy(7, 64);
        let mut a = SimFleet::new(cfg.clone());
        let mut b = SimFleet::new(cfg);
        for now in 0..50 {
            for i in 0..64 {
                let action = CampaignAction::SendUpdate {
                    device: i,
                    image: ImageId::New,
                };
                assert_eq!(a.perform(action, now), b.perform(action, now));
            }
        }
    }

    #[test]
    fn compromised_devices_always_attest_other() {
        let mut cfg = CampaignSimConfig::lossy(3, 8);
        cfg.compromised = 2;
        cfg.drop_per_mille = 0;
        cfg.delay_per_mille = 0;
        cfg.busy_per_mille = 0;
        cfg.offline_per_mille = 0;
        let mut fleet = SimFleet::new(cfg);
        assert!(!fleet.is_compromised(0));
        assert!(fleet.is_compromised(6) && fleet.is_compromised(7));
        for now in 0..20 {
            let outcome = fleet.perform(
                CampaignAction::Attest {
                    device: 7,
                    image: ImageId::Old,
                },
                now,
            );
            assert_eq!(outcome, DeviceOutcome::AttestedOther);
        }
    }

    #[test]
    fn torn_flash_attests_neither_until_reflashed() {
        let mut cfg = CampaignSimConfig::lossy(11, 4);
        cfg.torn_per_mille = 1000; // every flash tears
        cfg.drop_per_mille = 0;
        cfg.delay_per_mille = 0;
        cfg.busy_per_mille = 0;
        cfg.offline_per_mille = 0;
        cfg.compromised = 0;
        let mut fleet = SimFleet::new(cfg);
        let up = CampaignAction::SendUpdate {
            device: 1,
            image: ImageId::New,
        };
        assert_eq!(fleet.perform(up, 0), DeviceOutcome::UpdateTorn);
        assert_eq!(fleet.flash_of(1), SimFlash::Torn);
        let at = CampaignAction::Attest {
            device: 1,
            image: ImageId::New,
        };
        assert_eq!(fleet.perform(at, 1), DeviceOutcome::AttestedNeither);
        // Heal the tear and the retry lands.
        fleet.config.torn_per_mille = 0;
        assert_eq!(fleet.perform(up, 2), DeviceOutcome::UpdateOk);
        assert_eq!(fleet.perform(at, 3), DeviceOutcome::AttestedExpected);
    }

    #[test]
    fn bad_image_attests_neither_not_other() {
        let mut cfg = CampaignSimConfig::lossy(5, 2);
        cfg.bad_image = true;
        cfg.torn_per_mille = 0;
        cfg.drop_per_mille = 0;
        cfg.delay_per_mille = 0;
        cfg.busy_per_mille = 0;
        cfg.offline_per_mille = 0;
        cfg.compromised = 0;
        let mut fleet = SimFleet::new(cfg);
        let up = CampaignAction::SendUpdate {
            device: 0,
            image: ImageId::New,
        };
        assert_eq!(fleet.perform(up, 0), DeviceOutcome::UpdateOk);
        let at = CampaignAction::Attest {
            device: 0,
            image: ImageId::New,
        };
        assert_eq!(fleet.perform(at, 1), DeviceOutcome::AttestedNeither);
        // Rolling back to the (good) old image still verifies.
        let down = CampaignAction::SendUpdate {
            device: 0,
            image: ImageId::Old,
        };
        assert_eq!(fleet.perform(down, 2), DeviceOutcome::UpdateOk);
        let at_old = CampaignAction::Attest {
            device: 0,
            image: ImageId::Old,
        };
        assert_eq!(fleet.perform(at_old, 3), DeviceOutcome::AttestedExpected);
    }

    #[test]
    fn offline_devices_return_after_park() {
        let mut cfg = CampaignSimConfig::lossy(9, 2);
        cfg.offline_per_mille = 1000;
        cfg.offline_return_ticks = 3;
        let mut fleet = SimFleet::new(cfg);
        let action = CampaignAction::SendUpdate {
            device: 0,
            image: ImageId::New,
        };
        assert_eq!(fleet.perform(action, 0), DeviceOutcome::Offline);
        assert!(fleet.poll_returns(1).is_empty());
        assert_eq!(fleet.poll_returns(3), vec![0]);
        // Drained: not listed twice.
        assert!(fleet.poll_returns(4).is_empty());
    }
}
