//! The transient-malware (TOCTOU) adversary: infect, act, restore.
//!
//! Remote attestation is a *sampling* defence — it proves what memory
//! held at the instant of the sweep. Malware that writes itself into the
//! application image, does its work, and restores the original bytes
//! **between** attestation rounds presents pristine content to every
//! `Whole` and `Segmented` sweep: time-of-check vs time-of-use.
//!
//! The per-segment last-write **epoch log** closes the gap at the write
//! event instead of the content: every RAM write latches the current
//! round number next to the dirty bit, and an
//! [`AttestScope::History`](proverguard_attest::message::AttestScope)
//! round reports the authenticated set of segments written since a
//! verified round. Restoring the bytes cannot un-write them — the
//! restore is itself a write — so the infected segment lands in the
//! modified set even though its digest matches the expected image again.
//!
//! [`TransientMalware`] is the scripted adversary; [`toctou_alarm`] is
//! the verifier-side policy: a verified History round whose modified set
//! intersects the segments that hold the (should-be-immutable)
//! application image mirror is TOCTOU evidence.

use proverguard_attest::error::AttestError;
use proverguard_attest::verifier::HistoryOutcome;
use proverguard_mcu::map;

use crate::world::World;

/// A scripted transient infection of one application-image segment.
///
/// Each [`TransientMalware::strike`] performs the full cycle — read the
/// original bytes, overwrite them with a payload (infect), pretend to do
/// damage, write the original bytes back (restore) — leaving memory
/// content exactly as it was. Only the epoch log remembers.
#[derive(Debug, Clone)]
pub struct TransientMalware {
    /// Address the payload lands at (inside [`map::APP_IMAGE_MIRROR`]).
    pub target_addr: u32,
    /// Payload size in bytes.
    pub payload_len: usize,
    /// Strikes performed so far.
    pub strikes: u64,
}

impl Default for TransientMalware {
    fn default() -> Self {
        TransientMalware {
            // Deep inside the image mirror, well away from the protected
            // words at the bottom of RAM.
            target_addr: map::APP_IMAGE_MIRROR.start + 5 * 8192,
            payload_len: 64,
            strikes: 0,
        }
    }
}

impl TransientMalware {
    /// Runs one infect → act → restore cycle against `world`'s prover, as
    /// application code (the malware *is* the compromised application).
    /// Memory content is byte-identical before and after.
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the bus refuses the app-mode accesses.
    pub fn strike(&mut self, world: &mut World) -> Result<(), AttestError> {
        let mcu = world.prover.mcu_mut();
        let mut original = vec![0u8; self.payload_len];
        mcu.bus_read(self.target_addr, &mut original, map::APP_CODE)?;
        // Infect: the payload takes the segment over.
        let payload = vec![0xBAu8; self.payload_len];
        mcu.bus_write(self.target_addr, &payload, map::APP_CODE)?;
        // Act: the malware does its damage here (modelled as a no-op with
        // zero dwell time — the hardest case for a sampling defence).
        // Restore: pristine content for the next sweep.
        mcu.bus_write(self.target_addr, &original, map::APP_CODE)?;
        self.strikes += 1;
        Ok(())
    }

    /// The segment index the strikes land in, at `segment_len` granularity.
    #[must_use]
    pub fn target_segment(&self, segment_len: u32) -> usize {
        ((self.target_addr - map::RAM.start) / segment_len.max(1)) as usize
    }
}

/// Indices of the segments that lie entirely inside the application image
/// mirror — the region a healthy application never writes. The bottom
/// segment is excluded (it also holds `counter_R` and the other protected
/// words, which legitimately change every round), as is any trailing
/// segment that spills past the mirror into application scratch RAM.
#[must_use]
pub fn immutable_segments(segment_len: u32) -> Vec<usize> {
    let seg = u64::from(segment_len.max(1));
    let ram_start = u64::from(map::RAM.start);
    let first_byte = u64::from(map::APP_IMAGE_MIRROR.start) - ram_start;
    let last_byte = u64::from(map::APP_IMAGE_MIRROR.end) - ram_start;
    let first = first_byte.div_ceil(seg); // fully inside: starts at/after the mirror
    let last = last_byte / seg; // fully inside: ends at/before the mirror end
    (first..last).map(|i| i as usize).collect()
}

/// Verifier-side TOCTOU policy: `true` iff a verified History round's
/// authenticated modified set touches the immutable image-mirror
/// segments. Every digest may verify — the *write event* is the alarm.
///
/// Bootstrap rounds (`since_round == 0`) are exempt: they predate any
/// verified baseline, so every segment legitimately reports modified
/// (provisioning wrote all of RAM) and the round carries no differential
/// information — its recomputed digests already verify the content.
#[must_use]
pub fn toctou_alarm(outcome: &HistoryOutcome, segment_len: u32) -> bool {
    if outcome.since_round == 0 {
        return false;
    }
    let immutable = immutable_segments(segment_len);
    outcome
        .modified
        .iter()
        .any(|i| immutable.binary_search(i).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_attest::prover::ProverConfig;
    use proverguard_attest::verifier::ScopePolicy;

    fn history_world() -> World {
        let mut world = World::new(ProverConfig::recommended_segmented()).unwrap();
        world
            .verifier
            .set_scope_policy(ScopePolicy::History { full_every: 0 });
        world
    }

    fn run_round(world: &mut World) -> bool {
        let req = world.verifier.make_request().unwrap();
        let Ok(resp) = world.prover.handle_request(&req) else {
            world.verifier.note_failed(&req);
            return false;
        };
        let expected = world.prover.expected_memory().to_vec();
        let ok = world.verifier.check_response(&req, &resp, &expected);
        if ok {
            world.verifier.note_verified(&req, &resp, &expected);
        } else {
            world.verifier.note_failed(&req);
        }
        ok
    }

    #[test]
    fn strike_leaves_memory_identical() {
        let mut world = history_world();
        let before = world.prover.expected_memory().to_vec();
        TransientMalware::default().strike(&mut world).unwrap();
        assert_eq!(world.prover.expected_memory(), &before[..]);
    }

    #[test]
    fn whole_and_segmented_miss_the_strike_history_catches_it() {
        // Full-scope rounds: the restored content verifies — the attack
        // wins against the paper's own construction.
        for config in [
            ProverConfig::recommended(),
            ProverConfig::recommended_segmented(),
        ] {
            let mut world = World::new(config).unwrap();
            let mut malware = TransientMalware::default();
            assert!(run_round(&mut world));
            malware.strike(&mut world).unwrap();
            assert!(
                run_round(&mut world),
                "restored memory must verify under full-scope sweeps"
            );
            assert!(world.verifier.last_history().is_none());
        }

        // History rounds: same strike, caught.
        let mut world = history_world();
        let mut malware = TransientMalware::default();
        assert!(run_round(&mut world)); // bootstrap
        malware.strike(&mut world).unwrap();
        assert!(run_round(&mut world), "digests all match — MAC verifies");
        let seg_len = world.prover.segment_cache().unwrap().segment_len() as u32;
        let outcome = world.verifier.last_history().unwrap();
        assert!(
            outcome.modified.contains(&malware.target_segment(seg_len)),
            "strike segment missing from modified set {:?}",
            outcome.modified
        );
        assert!(
            toctou_alarm(outcome, seg_len),
            "policy must raise the alarm"
        );
    }

    #[test]
    fn quiescent_history_round_raises_no_alarm() {
        let mut world = history_world();
        assert!(run_round(&mut world));
        assert!(run_round(&mut world));
        let seg_len = world.prover.segment_cache().unwrap().segment_len() as u32;
        let outcome = world.verifier.last_history().unwrap();
        assert!(
            !toctou_alarm(outcome, seg_len),
            "false alarm on {:?}",
            outcome.modified
        );
    }

    #[test]
    fn immutable_segments_exclude_protected_words_and_scratch() {
        let segs = immutable_segments(8192);
        // Segment 0 holds counter_R — must not be graded immutable.
        assert!(!segs.contains(&0));
        // The default strike target is graded.
        assert!(segs.contains(&TransientMalware::default().target_segment(8192)));
        // Sorted, for the binary search in `toctou_alarm`.
        assert!(segs.windows(2).all(|w| w[0] < w[1]));
    }
}
