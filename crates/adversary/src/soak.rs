//! Chaos soak: a simulated fleet under combined fault + flood pressure.
//!
//! The single-channel experiments grade one defence at a time. A real
//! deployment faces everything at once: honest devices behind lossy
//! radios, a compromised device that will never verify again, and a
//! forgery flood grinding at every prover's battery — all while the
//! verifier keeps the rest of the fleet attested. This module wires the
//! whole stack together and *soaks* it:
//!
//! - each device is a [`World`] behind a seeded [`FaultyLink`], with its
//!   own battery and (optionally) a prover-side
//!   [`AdmissionPolicy`](proverguard_attest::AdmissionPolicy) bucket;
//! - the verifier side runs a [`FleetController`]: per-device circuit
//!   breakers, health scores, round-robin bounded concurrency;
//! - every round, every device is flooded with forged requests before
//!   the scheduled attestation sessions run.
//!
//! The run is fully deterministic from [`SoakConfig::seed`] (all
//! per-device fault schedules are derived from it), so a soak is a
//! reproducible regression gate, not a flake generator. At the end the
//! report checks the **liveness invariants**:
//!
//! 1. no device's battery ever fell below the configured energy floor;
//! 2. every honest device (faulty channels included) attested at least
//!    once;
//! 3. once faults cleared, every faulty-but-honest device's breaker
//!    re-closed;
//! 4. every compromised device was quarantined: zero successes and a
//!    tripped breaker.
//!
//! A defended configuration (MAC auth + admission control) passes all
//! four under flood; an undefended one burns through its batteries —
//! that contrast is the fleet-scale version of the paper's Table 1
//! economics, and what `proverguard-bench`'s `fleet_soak` binary prints.

use proverguard_attest::error::AttestError;
use proverguard_attest::fleet::{BreakerState, FleetController, FleetPolicy};
use proverguard_attest::freshness::FreshnessKind;
use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::session::{RetryPolicy, SessionDriver};
use proverguard_attest::verifier::{ScopePolicy, Verifier};
use proverguard_attest::AdmissionPolicy;
use proverguard_mcu::energy::{Battery, DEFAULT_NJ_PER_CYCLE};
use proverguard_telemetry::metrics;

use crate::fault::{FaultConfig, FaultyLink};
use crate::toctou::{toctou_alarm, TransientMalware};
use crate::world::{World, DEFAULT_IMAGE, DEFAULT_KEY};

/// Key provisioned into compromised devices: `Adv_roam` re-flashed the
/// prover, so its `K_Attest` no longer matches the verifier's.
const COMPROMISED_KEY: [u8; 16] = [0xA5; 16];

/// What kind of device slot `i` of the fleet is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceRole {
    /// Correct key, clean channel.
    Honest,
    /// Correct key, faulty channel (until the faults clear).
    Faulty,
    /// Wrong key: attestation can never verify.
    Compromised,
    /// Correct key, clean channel — but transient malware runs an
    /// infect/act/restore cycle between rounds. Every digest verifies;
    /// only a `History`-scope policy sees the write events.
    Transient,
}

/// One soak scenario. Device slots are laid out deterministically:
/// indices `[0, compromised_devices)` are compromised, the next
/// `faulty_devices` slots are honest-but-faulty, the next
/// `transient_devices` slots run transient malware, and the rest are
/// honest with clean channels.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Human-readable label for reports.
    pub label: String,
    /// Master seed; every per-device fault schedule derives from it.
    pub seed: u64,
    /// Fleet size.
    pub devices: usize,
    /// How many devices are compromised (wrong `K_Attest`).
    pub compromised_devices: usize,
    /// How many devices sit behind a faulty channel.
    pub faulty_devices: usize,
    /// How many devices run transient malware between rounds.
    pub transient_devices: usize,
    /// Scope policy installed into every device's verifier. With
    /// [`ScopePolicy::History`], transient devices must be flagged by the
    /// TOCTOU alarm; with [`ScopePolicy::Full`] their strikes are
    /// invisible (the contrast `toctou_bench` measures).
    pub scope_policy: ScopePolicy,
    /// Scheduling rounds to run.
    pub rounds: u64,
    /// Idle wall time per round (simulated ms) — this is also what the
    /// admission buckets refill on.
    pub round_ms: u64,
    /// Forged requests delivered to *each* device, every round.
    pub flood_per_round: u64,
    /// Round at which faulty channels become clean (set ≥ `rounds` to
    /// never clear).
    pub faults_clear_at_round: u64,
    /// Battery capacity each device starts with, in joules.
    pub battery_capacity_j: f64,
    /// Liveness floor: no battery may ever drop below this fraction.
    pub energy_floor_fraction: f64,
    /// Fault template for the faulty devices (its `seed` is replaced by
    /// a per-device derivation of [`SoakConfig::seed`]).
    pub fault: FaultConfig,
    /// Retry/backoff policy for every driven session.
    pub retry: RetryPolicy,
    /// Verifier-side fleet policy (breakers, concurrency, EWMA).
    pub fleet: FleetPolicy,
    /// Prover-side admission policy (`None` = no admission control).
    pub admission: Option<AdmissionPolicy>,
    /// Prover configuration for every device.
    pub config: ProverConfig,
}

impl SoakConfig {
    /// The fixed CI seed (also recorded in EXPERIMENTS.md): change it and
    /// the deterministic soak gate is a different experiment.
    pub const CI_SEED: u64 = 0xC0DE_50AC;

    /// The short, deterministic gate run by `ci.sh` and the integration
    /// tests: 4 devices (1 compromised, 1 behind a lossy radio that heals
    /// at round 5), 10 rounds, a 10-forgery flood per device per round,
    /// full defences on.
    #[must_use]
    pub fn ci() -> Self {
        let round_ms = 20_000;
        SoakConfig {
            label: "ci defended".to_string(),
            seed: Self::CI_SEED,
            devices: 4,
            compromised_devices: 1,
            faulty_devices: 1,
            transient_devices: 0,
            scope_policy: ScopePolicy::Full,
            rounds: 10,
            round_ms,
            flood_per_round: 10,
            faults_clear_at_round: 5,
            battery_capacity_j: 2.0,
            energy_floor_fraction: 0.5,
            fault: FaultConfig::lossy(0),
            retry: RetryPolicy {
                timeout_ms: 1000,
                max_retries: 2,
                backoff_base_ms: 100,
                backoff_factor: 2,
                ..RetryPolicy::default()
            },
            fleet: FleetPolicy {
                breaker: proverguard_attest::fleet::BreakerPolicy {
                    failure_threshold: 3,
                    open_cooldown_ms: 2 * round_ms,
                    half_open_successes: 1,
                },
                max_concurrent: 2,
                ewma_alpha: 0.3,
            },
            admission: Some(AdmissionPolicy::recommended()),
            config: ProverConfig::recommended(),
        }
    }

    /// The same scenario with every prover defence stripped: no request
    /// authentication, no admission control. The flood lands.
    #[must_use]
    pub fn ci_undefended() -> Self {
        SoakConfig {
            label: "ci undefended".to_string(),
            admission: None,
            config: ProverConfig::unprotected(),
            ..Self::ci()
        }
    }

    /// The CI scenario with the epoch-log defence exercised: segmented
    /// provers, a `History`-mostly scope policy (one full re-anchor every
    /// 4 rounds), and one device running transient malware. The grade
    /// adds invariant 5: the transient device must trip the TOCTOU alarm.
    #[must_use]
    pub fn ci_history() -> Self {
        SoakConfig {
            label: "ci history".to_string(),
            devices: 5,
            transient_devices: 1,
            scope_policy: ScopePolicy::History { full_every: 4 },
            config: ProverConfig::recommended_segmented(),
            ..Self::ci()
        }
    }
}

/// Per-device outcome of a soak.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSummary {
    /// Fleet slot.
    pub index: usize,
    /// What the device was.
    pub role: DeviceRole,
    /// Sessions the fleet controller scheduled against it.
    pub sessions: u64,
    /// Sessions that verified.
    pub successes: u64,
    /// Lowest battery fraction ever observed.
    pub min_battery_fraction: f64,
    /// Battery fraction at the end of the soak.
    pub final_battery_fraction: f64,
    /// Requests the prover's admission controller shed.
    pub throttled: u64,
    /// Times the device's breaker tripped open.
    pub breaker_trips: u64,
    /// Verified History rounds whose modified set touched the immutable
    /// image-mirror segments (the TOCTOU alarm).
    pub toctou_flags: u64,
    /// Whether the breaker ended the soak closed.
    pub breaker_closed: bool,
    /// Final EWMA health score.
    pub health_score: f64,
}

/// Everything a soak run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// The scenario label.
    pub label: String,
    /// Rounds run.
    pub rounds: u64,
    /// Sessions driven across the fleet.
    pub total_sessions: u64,
    /// Sessions that verified.
    pub total_successes: u64,
    /// Forged requests delivered across the fleet.
    pub total_flood: u64,
    /// Battery energy the whole fleet burned, in joules.
    pub fleet_energy_joules: f64,
    /// Per-device summaries, in slot order.
    pub devices: Vec<DeviceSummary>,
    /// Liveness-invariant violations (empty = the soak passed).
    pub violations: Vec<String>,
}

impl SoakReport {
    /// `true` iff every liveness invariant held.
    #[must_use]
    pub fn liveness_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Derives device `i`'s fault seed from the master seed (SplitMix64-style
/// mixing so neighbouring slots get unrelated schedules).
fn derive_seed(master: u64, index: usize) -> u64 {
    let mut z = master ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

/// A forged request matching the fleet's freshness discipline (the
/// adversary controls the unauthenticated header, so it always *looks*
/// fresh; only the auth/admission stages can shed it cheaply).
fn forged_request(kind: FreshnessKind, sequence: u64, now_ms: u64) -> AttestRequest {
    let freshness = match kind {
        FreshnessKind::None => FreshnessField::None,
        FreshnessKind::NonceHistory => {
            let mut nonce = [0u8; 16];
            nonce[..8].copy_from_slice(&sequence.to_be_bytes());
            FreshnessField::Nonce(nonce)
        }
        FreshnessKind::Counter => FreshnessField::Counter(sequence),
        FreshnessKind::Timestamp => FreshnessField::Timestamp(now_ms),
    };
    AttestRequest {
        scope: AttestScope::Whole,
        freshness,
        challenge: [0xbb; 16],
        auth: vec![0u8; 8],
    }
}

fn role_of(cfg: &SoakConfig, index: usize) -> DeviceRole {
    if index < cfg.compromised_devices {
        DeviceRole::Compromised
    } else if index < cfg.compromised_devices + cfg.faulty_devices {
        DeviceRole::Faulty
    } else if index < cfg.compromised_devices + cfg.faulty_devices + cfg.transient_devices {
        DeviceRole::Transient
    } else {
        DeviceRole::Honest
    }
}

/// Runs one soak scenario to completion and grades the invariants.
///
/// # Errors
///
/// [`AttestError`] if any device fails to provision.
///
/// # Panics
///
/// Panics if the config asks for more compromised + faulty devices than
/// fleet slots, or for zero devices/rounds.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, AttestError> {
    assert!(cfg.devices > 0 && cfg.rounds > 0, "soak must do something");
    assert!(
        cfg.compromised_devices + cfg.faulty_devices + cfg.transient_devices <= cfg.devices,
        "more special devices than fleet slots"
    );

    // ---- provision the fleet ------------------------------------------
    let mut links = Vec::with_capacity(cfg.devices);
    let mut roles = Vec::with_capacity(cfg.devices);
    for i in 0..cfg.devices {
        let role = role_of(cfg, i);
        let key = match role {
            DeviceRole::Compromised => &COMPROMISED_KEY,
            _ => &DEFAULT_KEY,
        };
        let mut prover = Prover::provision(cfg.config.clone(), key, DEFAULT_IMAGE)?;
        // The verifier always holds the *genuine* fleet key; a compromised
        // prover is exactly one whose key no longer matches it.
        let mut verifier = Verifier::new(&cfg.config, &DEFAULT_KEY)?;
        verifier.set_scope_policy(cfg.scope_policy);
        prover
            .mcu_mut()
            .set_battery(Battery::new(cfg.battery_capacity_j, DEFAULT_NJ_PER_CYCLE));
        prover.set_admission_policy(cfg.admission);
        let fault = match role {
            DeviceRole::Faulty => FaultConfig {
                seed: derive_seed(cfg.seed, i),
                ..cfg.fault
            },
            _ => FaultConfig::none(derive_seed(cfg.seed, i)),
        };
        links.push(FaultyLink::new(World { prover, verifier }, fault));
        roles.push(role);
    }

    let mut fleet = FleetController::new(cfg.devices, cfg.fleet);
    let driver = SessionDriver::new(cfg.retry);
    let mut sessions = vec![0u64; cfg.devices];
    let mut successes = vec![0u64; cfg.devices];
    let mut min_fraction = vec![1.0f64; cfg.devices];
    let mut toctou_flags = vec![0u64; cfg.devices];
    let mut malware: Vec<Option<TransientMalware>> = roles
        .iter()
        .map(|r| (*r == DeviceRole::Transient).then(TransientMalware::default))
        .collect();
    let seg_len = cfg
        .config
        .segmented
        .map_or(proverguard_mcu::DEFAULT_SEGMENT_LEN, |p| p.segment_len);
    let mut total_flood = 0u64;
    let mut flood_sequence = 0u64;

    // ---- soak ---------------------------------------------------------
    for round in 0..cfg.rounds {
        let now_ms = round * cfg.round_ms;
        if round == cfg.faults_clear_at_round {
            for (i, link) in links.iter_mut().enumerate() {
                if roles[i] == DeviceRole::Faulty {
                    link.set_fault_config(FaultConfig::none(derive_seed(cfg.seed, i)));
                }
            }
        }

        // The flood hits every device, every round, before any honest
        // traffic — worst case for the admission bucket.
        for link in links.iter_mut() {
            for _ in 0..cfg.flood_per_round {
                flood_sequence = flood_sequence.saturating_add(1);
                let bogus = forged_request(
                    cfg.config.freshness,
                    flood_sequence,
                    link.world.verifier.now_ms(),
                );
                let _ = link.world.prover.handle_wire_request(&bogus.to_bytes());
                total_flood = total_flood.saturating_add(1);
            }
        }
        metrics::counter_add(
            "soak.flood.requests",
            cfg.flood_per_round * cfg.devices as u64,
        );

        // Transient malware strikes between rounds: infect, act, restore.
        // By the time any sweep runs, memory content is pristine — only
        // the epoch log holds the write events.
        for (i, slot) in malware.iter_mut().enumerate() {
            if let Some(m) = slot {
                m.strike(&mut links[i].world)?;
            }
        }

        // Bounded-concurrency attestation round.
        for idx in fleet.schedule(now_ms) {
            let report = driver.run(&mut links[idx]);
            sessions[idx] = sessions[idx].saturating_add(1);
            if report.succeeded() {
                successes[idx] = successes[idx].saturating_add(1);
                // TOCTOU policy: a verified History round whose modified
                // set touched the immutable image mirror raises the alarm.
                if let Some(outcome) = links[idx].world.verifier.last_history() {
                    if toctou_alarm(outcome, seg_len) {
                        toctou_flags[idx] = toctou_flags[idx].saturating_add(1);
                        metrics::counter_add("soak.toctou.alarms", 1);
                    }
                }
            }
            fleet.record(idx, &report, now_ms);
        }

        // Idle out the rest of the round; track the battery floor and
        // publish the per-tick device metrics the soak dashboards read.
        for (i, link) in links.iter_mut().enumerate() {
            let _ = link.world.advance_ms(cfg.round_ms);
            let fraction = link.world.prover.mcu().battery().remaining_fraction();
            if fraction < min_fraction[i] {
                min_fraction[i] = fraction;
            }
            let stats = link.world.prover.stats();
            metrics::histogram_record(
                "soak.device.battery_permille",
                (fraction * 1000.0).clamp(0.0, 1000.0) as u64,
            );
            metrics::histogram_record(
                "soak.device.requests_seen_per_round",
                stats.requests_seen / round.saturating_add(1),
            );
            metrics::gauge_set("soak.round", round);
        }
    }

    // ---- grade --------------------------------------------------------
    let mut devices = Vec::with_capacity(cfg.devices);
    let mut violations = Vec::new();
    let mut fleet_energy = 0.0;
    for (i, link) in links.iter().enumerate() {
        let battery = link.world.prover.mcu().battery();
        fleet_energy += cfg.battery_capacity_j - battery.remaining_joules();
        let health = fleet.device(i);
        let summary = DeviceSummary {
            index: i,
            role: roles[i],
            sessions: sessions[i],
            successes: successes[i],
            min_battery_fraction: min_fraction[i],
            final_battery_fraction: battery.remaining_fraction(),
            throttled: link
                .world
                .prover
                .admission()
                .map_or(0, |a| a.stats().throttled + a.stats().degraded_refused),
            breaker_trips: health.breaker.trips(),
            toctou_flags: toctou_flags[i],
            breaker_closed: health.breaker.state() == BreakerState::Closed,
            health_score: health.score,
        };

        // Accounting invariant: every request the prover saw was either
        // accepted or counted by exactly one rejection statistic.
        let stats = link.world.prover.stats();
        if stats.requests_seen != stats.accepted.saturating_add(stats.rejected_total()) {
            violations.push(format!(
                "device {i} stats do not partition: {} seen != {} accepted + {} rejected",
                stats.requests_seen,
                stats.accepted,
                stats.rejected_total()
            ));
        }

        if summary.min_battery_fraction < cfg.energy_floor_fraction {
            violations.push(format!(
                "device {i} ({:?}) fell to {:.0} % battery, floor is {:.0} %",
                roles[i],
                summary.min_battery_fraction * 100.0,
                cfg.energy_floor_fraction * 100.0
            ));
        }
        match roles[i] {
            DeviceRole::Honest | DeviceRole::Faulty => {
                if summary.successes == 0 {
                    violations.push(format!(
                        "honest device {i} ({:?}) never attested in {} rounds",
                        roles[i], cfg.rounds
                    ));
                }
                if roles[i] == DeviceRole::Faulty
                    && cfg.faults_clear_at_round < cfg.rounds
                    && !summary.breaker_closed
                {
                    violations.push(format!(
                        "device {i}'s breaker still open after its faults cleared"
                    ));
                }
                if summary.toctou_flags > 0 {
                    violations.push(format!(
                        "false TOCTOU alarm on honest device {i} ({:?}): {} flags",
                        roles[i], summary.toctou_flags
                    ));
                }
            }
            DeviceRole::Transient => {
                // Invariant 5: the infect/act/restore device keeps
                // verifying (every digest matches), but under a History
                // policy the epoch log must expose the write events.
                if summary.successes == 0 {
                    violations.push(format!(
                        "transient device {i} never attested in {} rounds",
                        cfg.rounds
                    ));
                }
                match cfg.scope_policy {
                    ScopePolicy::History { .. } => {
                        if summary.toctou_flags == 0 {
                            violations.push(format!(
                                "transient malware on device {i} went undetected \
                                 under a History scope policy"
                            ));
                        }
                    }
                    ScopePolicy::Full => {
                        if summary.toctou_flags > 0 {
                            violations.push(format!(
                                "device {i} raised {} TOCTOU flags under a Full \
                                 scope policy, which never runs History rounds",
                                summary.toctou_flags
                            ));
                        }
                    }
                }
            }
            DeviceRole::Compromised => {
                if summary.successes > 0 {
                    violations.push(format!(
                        "compromised device {i} attested {} times",
                        summary.successes
                    ));
                }
                if summary.breaker_trips == 0 {
                    violations.push(format!("compromised device {i} was never quarantined"));
                }
            }
        }
        devices.push(summary);
    }

    Ok(SoakReport {
        label: cfg.label.clone(),
        rounds: cfg.rounds,
        total_sessions: sessions.iter().sum(),
        total_successes: successes.iter().sum(),
        total_flood,
        fleet_energy_joules: fleet_energy,
        devices,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny scenario for fast unit checks (the full CI scenario runs in
    /// `tests/chaos_soak.rs`).
    fn mini() -> SoakConfig {
        SoakConfig {
            label: "mini".to_string(),
            devices: 2,
            compromised_devices: 1,
            faulty_devices: 0,
            rounds: 4,
            flood_per_round: 3,
            faults_clear_at_round: 0,
            ..SoakConfig::ci()
        }
    }

    #[test]
    fn mini_soak_is_deterministic() {
        let a = run_soak(&mini()).unwrap();
        let b = run_soak(&mini()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mini_soak_separates_honest_from_compromised() {
        let report = run_soak(&mini()).unwrap();
        assert!(report.liveness_ok(), "violations: {:?}", report.violations);
        let compromised = &report.devices[0];
        let honest = &report.devices[1];
        assert_eq!(compromised.successes, 0);
        assert!(compromised.breaker_trips >= 1);
        assert!(honest.successes >= 1);
        assert!(honest.health_score > compromised.health_score);
    }

    /// A tiny History-policy scenario: one transient device, two honest.
    fn mini_history() -> SoakConfig {
        SoakConfig {
            label: "mini history".to_string(),
            devices: 3,
            compromised_devices: 0,
            faulty_devices: 0,
            transient_devices: 1,
            rounds: 6,
            flood_per_round: 2,
            faults_clear_at_round: 0,
            ..SoakConfig::ci_history()
        }
    }

    #[test]
    fn mini_history_soak_flags_only_the_transient_device() {
        let report = run_soak(&mini_history()).unwrap();
        assert!(report.liveness_ok(), "violations: {:?}", report.violations);
        let transient = &report.devices[0];
        assert_eq!(transient.role, DeviceRole::Transient);
        assert!(transient.successes >= 1, "every digest still verifies");
        assert!(
            transient.toctou_flags >= 1,
            "epoch log must expose the strikes"
        );
        for honest in &report.devices[1..] {
            assert_eq!(honest.role, DeviceRole::Honest);
            assert_eq!(honest.toctou_flags, 0, "no false alarms");
        }
    }

    #[test]
    fn mini_history_soak_is_deterministic() {
        let a = run_soak(&mini_history()).unwrap();
        let b = run_soak(&mini_history()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn derived_seeds_differ_per_device() {
        let seeds: Vec<u64> = (0..16).map(|i| derive_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    #[should_panic(expected = "more special devices")]
    fn overfull_roles_rejected() {
        let cfg = SoakConfig {
            compromised_devices: 3,
            faulty_devices: 3,
            devices: 4,
            ..SoakConfig::ci()
        };
        let _ = run_soak(&cfg);
    }
}
