//! Deterministic fault injection for attestation sessions.
//!
//! `Adv_ext` is usually *smart* — replay, reorder, forge. This module
//! models the channel being *hostile by accident*: radio loss, line
//! noise, brown-outs. Per message, driven by a seeded RNG, it can drop,
//! duplicate, delay, truncate or bit-flip the bytes in either direction,
//! and it can power-cycle the prover or glitch its clock between pipeline
//! stages. [`FaultyLink`] plugs the whole thing into the verifier's
//! [`SessionDriver`](proverguard_attest::session::SessionDriver) so
//! retry/backoff behaviour can be graded against a reproducible fault
//! schedule.

use proverguard_attest::clock::ClockKind;
use proverguard_attest::error::AttestError;
use proverguard_attest::message::AttestResponse;
use proverguard_attest::session::{AttemptOutcome, SessionLink};

use crate::world::World;

/// One thing the channel (or the power rail) can do to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The message vanishes.
    Drop,
    /// The message arrives twice.
    Duplicate,
    /// The message arrives late by [`FaultConfig::delay_ms`].
    Delay,
    /// The message loses its tail.
    Truncate,
    /// One bit of the message flips.
    BitFlip,
    /// The prover power-cycles before handling the message.
    Reboot,
    /// The prover's clock jumps ahead by
    /// [`FaultConfig::clock_glitch_ms`] before handling the message.
    ClockGlitch,
}

/// Which leg of the exchange a fault hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Verifier → prover.
    Request,
    /// Prover → verifier.
    Response,
}

/// Per-mille fault probabilities plus fault parameters. The per-message
/// roll picks **at most one** fault, so the rates must sum to ≤ 1000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// RNG seed — same seed, same fault schedule.
    pub seed: u64,
    /// ‰ chance the message is dropped.
    pub drop_per_mille: u16,
    /// ‰ chance the message is duplicated.
    pub duplicate_per_mille: u16,
    /// ‰ chance the message is delayed.
    pub delay_per_mille: u16,
    /// ‰ chance the message is truncated.
    pub truncate_per_mille: u16,
    /// ‰ chance one bit flips.
    pub bitflip_per_mille: u16,
    /// ‰ chance the prover reboots (request leg only).
    pub reboot_per_mille: u16,
    /// ‰ chance the prover's clock glitches (request leg only).
    pub clock_glitch_per_mille: u16,
    /// How late a delayed message arrives.
    pub delay_ms: u64,
    /// How far a glitched clock jumps.
    pub clock_glitch_ms: u64,
}

impl FaultConfig {
    /// A perfectly clean channel (the control group).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            truncate_per_mille: 0,
            bitflip_per_mille: 0,
            reboot_per_mille: 0,
            clock_glitch_per_mille: 0,
            delay_ms: 1500,
            clock_glitch_ms: 5_000,
        }
    }

    /// A lossy radio: 30 % drops, 20 % long delays.
    #[must_use]
    pub fn lossy(seed: u64) -> Self {
        FaultConfig {
            drop_per_mille: 300,
            delay_per_mille: 200,
            ..Self::none(seed)
        }
    }

    /// A noisy line: 25 % truncations, 25 % bit-flips.
    #[must_use]
    pub fn corrupting(seed: u64) -> Self {
        FaultConfig {
            truncate_per_mille: 250,
            bitflip_per_mille: 250,
            ..Self::none(seed)
        }
    }

    /// A browning-out prover: 30 % reboots, 10 % clock glitches.
    #[must_use]
    pub fn rebooting(seed: u64) -> Self {
        FaultConfig {
            reboot_per_mille: 300,
            clock_glitch_per_mille: 100,
            ..Self::none(seed)
        }
    }

    /// Always-drop (every attempt times out — exercises retry exhaustion).
    #[must_use]
    pub fn black_hole(seed: u64) -> Self {
        FaultConfig {
            drop_per_mille: 1000,
            ..Self::none(seed)
        }
    }

    fn assert_valid(&self) {
        let sum = self.drop_per_mille
            + self.duplicate_per_mille
            + self.delay_per_mille
            + self.truncate_per_mille
            + self.bitflip_per_mille
            + self.reboot_per_mille
            + self.clock_glitch_per_mille;
        assert!(sum <= 1000, "fault rates sum to {sum} ‰ > 1000 ‰");
    }
}

/// SplitMix64 — tiny, seedable, good enough for fault schedules. Kept
/// local so the non-dev dependency graph stays free of test crates.
#[derive(Debug, Clone)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A fault that actually fired, for the post-mortem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which message (0-based, counting both legs) was hit.
    pub message_index: u64,
    /// Which leg.
    pub direction: Direction,
    /// What happened to it.
    pub kind: FaultKind,
}

/// Rolls faults from the seeded schedule and remembers what fired.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: FaultRng,
    messages: u64,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An injector for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config's fault rates sum past 1000 ‰.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        config.assert_valid();
        FaultInjector {
            rng: FaultRng::new(config.seed),
            config,
            messages: 0,
            events: Vec::new(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Every fault that has fired so far.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Rolls the fault (if any) for the next message on `direction`.
    /// Reboot and clock-glitch only make sense on the way *to* the
    /// prover, so response rolls mapping onto them fire nothing.
    pub fn roll(&mut self, direction: Direction) -> Option<FaultKind> {
        let index = self.messages;
        self.messages += 1;
        let roll = self.rng.below(1000) as u16;
        let c = &self.config;
        let ladder = [
            (FaultKind::Drop, c.drop_per_mille),
            (FaultKind::Duplicate, c.duplicate_per_mille),
            (FaultKind::Delay, c.delay_per_mille),
            (FaultKind::Truncate, c.truncate_per_mille),
            (FaultKind::BitFlip, c.bitflip_per_mille),
            (FaultKind::Reboot, c.reboot_per_mille),
            (FaultKind::ClockGlitch, c.clock_glitch_per_mille),
        ];
        let mut ceiling = 0u16;
        for (kind, rate) in ladder {
            ceiling += rate;
            if roll < ceiling {
                let prover_side = matches!(kind, FaultKind::Reboot | FaultKind::ClockGlitch);
                if prover_side && direction == Direction::Response {
                    return None;
                }
                self.events.push(FaultEvent {
                    message_index: index,
                    direction,
                    kind,
                });
                return Some(kind);
            }
        }
        None
    }

    /// Mangles `bytes` in place for a [`FaultKind::Truncate`] or
    /// [`FaultKind::BitFlip`] fault.
    pub fn mangle(&mut self, kind: FaultKind, bytes: &mut Vec<u8>) {
        match kind {
            FaultKind::Truncate => {
                let keep = self.rng.below(bytes.len().max(1) as u64) as usize;
                bytes.truncate(keep);
            }
            FaultKind::BitFlip if !bytes.is_empty() => {
                let bit = self.rng.below(bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            _ => {}
        }
    }
}

/// A [`SessionLink`] that runs attempts through a [`FaultInjector`]:
/// the wire carries raw bytes (`Prover::handle_wire_request`), so every
/// injected corruption hits the prover's cheap parse-reject path rather
/// than a host-side panic.
#[derive(Debug)]
pub struct FaultyLink {
    /// The verifier + prover pair under test.
    pub world: World,
    injector: FaultInjector,
}

impl FaultyLink {
    /// Wraps `world` in a faulty channel.
    #[must_use]
    pub fn new(world: World, config: FaultConfig) -> Self {
        FaultyLink {
            world,
            injector: FaultInjector::new(config),
        }
    }

    /// The fault log so far.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        self.injector.events()
    }

    /// Swaps the fault schedule mid-experiment (e.g. a soak run whose
    /// faults clear after a configured round). The new injector starts
    /// from `config`'s own seed; the old event log is kept.
    ///
    /// # Panics
    ///
    /// Panics if `config`'s fault rates sum past 1000 ‰.
    pub fn set_fault_config(&mut self, config: FaultConfig) {
        config.assert_valid();
        let events = std::mem::take(&mut self.injector.events);
        self.injector = FaultInjector::new(config);
        self.injector.events = events;
    }

    /// Delivers request bytes to the prover, keeping the verifier's clock
    /// in step with the prover's compute time.
    fn deliver(&mut self, bytes: &[u8]) -> Result<Vec<u8>, AttestError> {
        let result = self.world.prover.handle_wire_request(bytes);
        let compute_ms = self.world.prover.last_cost().total_ms().ceil() as u64;
        self.world.verifier.advance_time_ms(compute_ms);
        result
    }
}

impl SessionLink for FaultyLink {
    fn attempt(&mut self, timeout_ms: u64) -> AttemptOutcome {
        let request = match self.world.verifier.make_request() {
            Ok(r) => r,
            Err(e) => return AttemptOutcome::Error(e),
        };
        let mut bytes = request.to_bytes();

        // Request leg.
        match self.injector.roll(Direction::Request) {
            Some(FaultKind::Drop) => {
                // The verifier waits out its whole timeout for nothing.
                let _ = self.world.advance_ms(timeout_ms);
                return AttemptOutcome::RequestLost;
            }
            Some(FaultKind::Delay) => {
                let delay = self.injector.config.delay_ms;
                if delay >= timeout_ms {
                    let _ = self.world.advance_ms(timeout_ms);
                    return AttemptOutcome::RequestLost;
                }
                // Late but within the timeout: time passes, then the
                // (possibly now stale-looking) request arrives.
                let _ = self.world.advance_ms(delay);
            }
            Some(kind @ (FaultKind::Truncate | FaultKind::BitFlip)) => {
                self.injector.mangle(kind, &mut bytes);
            }
            Some(FaultKind::Duplicate) => {
                // The spurious copy arrives first; whatever the prover
                // makes of it is lost on the floor. The original is then
                // delivered normally below — and meets freshness state
                // the copy already consumed.
                let _ = self.deliver(&bytes.clone());
            }
            Some(FaultKind::Reboot) => {
                if let Err(e) = self.world.prover.reboot() {
                    return AttemptOutcome::Error(e);
                }
            }
            Some(FaultKind::ClockGlitch) => {
                let glitch = self.injector.config.clock_glitch_ms;
                // Only the prover's clock jumps — the two drift apart.
                if let Err(e) = self.world.prover.advance_time_ms(glitch) {
                    return AttemptOutcome::Error(e);
                }
            }
            None => {}
        }

        let response_bytes = match self.deliver(&bytes) {
            Ok(b) => b,
            Err(AttestError::Rejected(reason)) => {
                self.world.verifier.note_failed(&request);
                return AttemptOutcome::Rejected(reason);
            }
            Err(e) => return AttemptOutcome::Error(e),
        };

        // Response leg.
        let mut response_bytes = response_bytes;
        match self.injector.roll(Direction::Response) {
            Some(FaultKind::Drop) => {
                let _ = self.world.advance_ms(timeout_ms);
                return AttemptOutcome::ResponseLost;
            }
            Some(FaultKind::Delay) => {
                let delay = self.injector.config.delay_ms;
                if delay >= timeout_ms {
                    let _ = self.world.advance_ms(timeout_ms);
                    return AttemptOutcome::ResponseLost;
                }
                let _ = self.world.advance_ms(delay);
            }
            Some(kind @ (FaultKind::Truncate | FaultKind::BitFlip)) => {
                self.injector.mangle(kind, &mut response_bytes);
            }
            Some(FaultKind::Duplicate)
            | Some(FaultKind::Reboot)
            | Some(FaultKind::ClockGlitch)
            | None => {}
        }

        let Ok(response) = AttestResponse::from_bytes(&response_bytes) else {
            self.world.verifier.note_failed(&request);
            return AttemptOutcome::BadResponse;
        };
        let expected = self.world.prover.expected_memory().to_vec();
        if self
            .world
            .verifier
            .check_response(&request, &response, &expected)
        {
            self.world
                .verifier
                .note_verified(&request, &response, &expected);
            AttemptOutcome::Success
        } else {
            self.world.verifier.note_failed(&request);
            AttemptOutcome::BadResponse
        }
    }

    fn wait_ms(&mut self, ms: u64) {
        let _ = self.world.advance_ms(ms);
    }

    fn recover(&mut self, _failed: &AttemptOutcome) {
        // A rebooted or glitched prover clock makes every timestamped
        // request look out-of-window; authenticated §7 sync messages are
        // the legitimate fix. Each sync's correction is clamped, so a
        // large skew takes several rounds — keep going until the outcome
        // reports the full measured skew was applied (converged), with a
        // hard cap so a hostile clock can't trap the verifier here.
        if self.world.prover.config().clock == ClockKind::None {
            return;
        }
        for _ in 0..16 {
            let sync = self.world.verifier.make_sync_request();
            match self.world.prover.handle_sync(&sync) {
                Ok(outcome) if outcome.applied_ms == outcome.measured_skew_ms => break,
                Ok(_) => {} // clamped — sync again
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_attest::prover::ProverConfig;
    use proverguard_attest::session::{RetryPolicy, SessionDriver};

    fn driver() -> SessionDriver {
        SessionDriver::new(RetryPolicy {
            timeout_ms: 1000,
            max_retries: 8,
            backoff_base_ms: 50,
            backoff_factor: 2,
            ..RetryPolicy::default()
        })
    }

    #[test]
    fn clean_channel_succeeds_first_try() {
        let world = World::new(ProverConfig::recommended()).unwrap();
        let mut link = FaultyLink::new(world, FaultConfig::none(1));
        let report = driver().run(&mut link);
        assert!(report.succeeded());
        assert_eq!(report.attempt_count(), 1);
        assert!(link.events().is_empty());
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let mut a = FaultInjector::new(FaultConfig::lossy(7));
        let mut b = FaultInjector::new(FaultConfig::lossy(7));
        for _ in 0..200 {
            assert_eq!(a.roll(Direction::Request), b.roll(Direction::Request));
        }
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn rates_scale_fault_frequency() {
        let mut injector = FaultInjector::new(FaultConfig::lossy(3));
        for _ in 0..1000 {
            let _ = injector.roll(Direction::Request);
        }
        let fired = injector.events().len();
        // 50 % nominal rate; allow generous slack.
        assert!((350..650).contains(&fired), "{fired} faults in 1000");
    }

    #[test]
    fn black_hole_exhausts_the_retry_budget() {
        let world = World::new(ProverConfig::recommended()).unwrap();
        let mut link = FaultyLink::new(world, FaultConfig::black_hole(5));
        let report = driver().run(&mut link);
        assert!(!report.succeeded());
        assert_eq!(report.attempt_count(), 9);
        assert!(report
            .attempts
            .iter()
            .all(|a| a.outcome == AttemptOutcome::RequestLost));
        // The prover never saw a single byte.
        assert_eq!(link.world.prover.stats().requests_seen, 0);
    }

    #[test]
    fn overfull_rates_rejected() {
        let config = FaultConfig {
            drop_per_mille: 600,
            bitflip_per_mille: 600,
            ..FaultConfig::none(0)
        };
        assert!(std::panic::catch_unwind(|| FaultInjector::new(config)).is_err());
    }
}
