//! Denial-of-service economics (§3.1, §4.1).
//!
//! The DoS argument is quantitative: every bogus request an unprotected
//! prover answers costs it the full whole-memory MAC (~754 ms of compute
//! and the corresponding battery charge), while an authenticated-and-fresh
//! pipeline rejects the same request after a single primitive-block check.
//! This module floods provers and reports cycles, wall time, energy and
//! battery fraction per configuration — including the paper's paradox
//! configuration, where ECDSA request authentication is itself expensive
//! enough to remain a DoS vector.

use proverguard_attest::error::AttestError;
use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_attest::prover::ProverConfig;
use proverguard_mcu::cycles::cycles_to_ms;

use crate::world::World;

/// Result of flooding one prover configuration with bogus requests.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodReport {
    /// Human-readable configuration label.
    pub label: String,
    /// Number of bogus requests delivered.
    pub requests: u64,
    /// How many the prover actually answered (DoS successes).
    pub answered: u64,
    /// Total prover cycles burned on the flood.
    pub cycles_burned: u64,
    /// Battery energy drained, in joules.
    pub energy_joules: f64,
    /// Fraction of battery capacity consumed by the flood, in `[0, 1]`.
    pub battery_fraction: f64,
}

impl FloodReport {
    /// Average prover milliseconds burned per bogus request. An empty
    /// flood burned nothing per request — 0, never `NaN`.
    #[must_use]
    pub fn ms_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        cycles_to_ms(self.cycles_burned) / self.requests as f64
    }
}

/// Fraction of `capacity_j` consumed by `energy_j`, clamped to `[0, 1]`:
/// a flood that fully depletes the battery reports 1.0 (never more, and
/// never `NaN` on a dead-on-arrival cell).
#[must_use]
fn battery_fraction(energy_j: f64, capacity_j: f64) -> f64 {
    if capacity_j <= 0.0 {
        return 1.0;
    }
    (energy_j / capacity_j).clamp(0.0, 1.0)
}

/// Floods `config` with `n` forged (unauthenticated garbage) requests and
/// reports what it cost the prover.
///
/// # Errors
///
/// [`AttestError`] if provisioning fails.
pub fn flood_with_forgeries(
    config: ProverConfig,
    label: &str,
    n: u64,
) -> Result<FloodReport, AttestError> {
    let mut world = World::new(config)?;
    world.advance_ms(1000)?;
    let start_cycles = world.prover.stats().attestation_cycles;
    let start_energy = world.prover.mcu().battery().remaining_joules();
    let capacity = start_energy;

    let mut answered = 0u64;
    for i in 0..n {
        // Adv_ext fabricates a request; without the key the auth bytes are
        // garbage. Freshness fields count up so that *unauthenticated*
        // provers with a counter policy still accept them (the adversary
        // can put anything in an unauthenticated header).
        let bogus = AttestRequest {
            scope: AttestScope::Whole,
            freshness: match world.prover.config().freshness {
                proverguard_attest::freshness::FreshnessKind::None => FreshnessField::None,
                proverguard_attest::freshness::FreshnessKind::NonceHistory => {
                    let mut nonce = [0u8; 16];
                    nonce[..8].copy_from_slice(&i.to_be_bytes());
                    FreshnessField::Nonce(nonce)
                }
                proverguard_attest::freshness::FreshnessKind::Counter => {
                    FreshnessField::Counter(i + 1)
                }
                proverguard_attest::freshness::FreshnessKind::Timestamp => {
                    FreshnessField::Timestamp(world.verifier.now_ms())
                }
            },
            challenge: [0xbb; 16],
            auth: vec![0u8; 8],
        };
        if world.prover.handle_request(&bogus).is_ok() {
            answered = answered.saturating_add(1);
        }
        world.advance_ms(10)?;
    }

    let cycles_burned = world
        .prover
        .stats()
        .attestation_cycles
        .saturating_sub(start_cycles);
    let energy_joules = start_energy - world.prover.mcu().battery().remaining_joules();
    Ok(FloodReport {
        label: label.to_string(),
        requests: n,
        answered,
        cycles_burned,
        energy_joules,
        battery_fraction: battery_fraction(energy_joules, capacity),
    })
}

/// Floods `config` with `n` malformed wire blobs (line noise / fuzz
/// traffic) through [`Prover::handle_wire_request`] and reports what the
/// parse-reject path cost the prover. The blobs are seeded garbage of
/// varying length, so none of them parse.
///
/// [`Prover::handle_wire_request`]: proverguard_attest::prover::Prover::handle_wire_request
///
/// # Errors
///
/// [`AttestError`] if provisioning fails.
pub fn flood_with_garbage(
    config: ProverConfig,
    label: &str,
    n: u64,
) -> Result<FloodReport, AttestError> {
    let mut world = World::new(config)?;
    world.advance_ms(1000)?;
    let start_cycles = world.prover.stats().attestation_cycles;
    let start_energy = world.prover.mcu().battery().remaining_joules();
    let capacity = start_energy;

    let mut answered = 0u64;
    for i in 0..n {
        // Garbage that cannot be a valid message: wrong version byte up
        // front, then filler whose length walks through the interesting
        // range (empty through larger-than-any-real-request).
        let mut blob = vec![0xff_u8];
        blob.extend((0..(i % 96)).map(|j| (i ^ j) as u8));
        if world.prover.handle_wire_request(&blob).is_ok() {
            answered = answered.saturating_add(1);
        }
        world.advance_ms(10)?;
    }

    let cycles_burned = world
        .prover
        .stats()
        .attestation_cycles
        .saturating_sub(start_cycles);
    let energy_joules = start_energy - world.prover.mcu().battery().remaining_joules();
    Ok(FloodReport {
        label: label.to_string(),
        requests: n,
        answered,
        cycles_burned,
        energy_joules,
        battery_fraction: battery_fraction(energy_joules, capacity),
    })
}

/// The §3.1/§4.1 comparison set: unprotected vs each authentication
/// primitive (the flood is pure forgery traffic).
///
/// # Errors
///
/// [`AttestError`] if any provisioning fails.
pub fn standard_comparison(n: u64) -> Result<Vec<FloodReport>, AttestError> {
    use proverguard_attest::auth::AuthMethod;
    use proverguard_crypto::mac::MacAlgorithm;

    let mut reports = Vec::new();
    reports.push(flood_with_forgeries(
        ProverConfig::unprotected(),
        "unprotected (no auth)",
        n,
    )?);
    for (alg, label) in [
        (MacAlgorithm::Speck64Cbc, "Speck 64/128 auth"),
        (MacAlgorithm::Aes128Cbc, "AES-128 auth"),
        (MacAlgorithm::HmacSha1, "SHA1-HMAC auth"),
    ] {
        let config = ProverConfig {
            auth: AuthMethod::Mac(alg),
            ..ProverConfig::recommended()
        };
        reports.push(flood_with_forgeries(config, label, n)?);
    }
    let ecdsa = ProverConfig {
        auth: AuthMethod::Ecdsa,
        ..ProverConfig::recommended()
    };
    reports.push(flood_with_forgeries(
        ecdsa,
        "ECDSA secp160r1 auth (paradox)",
        n,
    )?);
    Ok(reports)
}

/// How many bogus requests deplete the prover's battery entirely, for a
/// given per-request cycle cost.
#[must_use]
pub fn requests_to_deplete(battery_cycles: u64, cycles_per_request: u64) -> u64 {
    if cycles_per_request == 0 {
        return u64::MAX;
    }
    battery_cycles.div_ceil(cycles_per_request)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_prover_answers_every_forgery() {
        let r = flood_with_forgeries(ProverConfig::unprotected(), "open", 5).unwrap();
        assert_eq!(r.answered, 5);
        // ~754 ms each.
        assert!(r.ms_per_request() > 700.0, "got {}", r.ms_per_request());
        assert!(r.energy_joules > 0.0);
    }

    #[test]
    fn authenticated_prover_answers_none() {
        let r = flood_with_forgeries(ProverConfig::recommended(), "speck", 5).unwrap();
        assert_eq!(r.answered, 0);
        // Speck check: ~0.017 ms per forgery.
        assert!(r.ms_per_request() < 0.1, "got {}", r.ms_per_request());
    }

    #[test]
    fn flood_cost_ordering_matches_the_paper() {
        let reports = standard_comparison(3).unwrap();
        let by_label = |label: &str| {
            reports
                .iter()
                .find(|r| r.label.contains(label))
                .unwrap_or_else(|| panic!("missing {label}"))
                .ms_per_request()
        };
        let open = by_label("unprotected");
        let speck = by_label("Speck");
        let aes = by_label("AES");
        let hmac = by_label("HMAC");
        let ecdsa = by_label("ECDSA");
        // The defence hierarchy: every MAC beats no auth by orders of
        // magnitude; Speck < AES < HMAC; and the ECDSA "defence" costs
        // ~170 ms per forgery — far better than 754 ms, but ~10000x a
        // Speck check: the §4.1 paradox.
        assert!(speck < aes && aes < hmac && hmac < ecdsa && ecdsa < open);
        assert!(ecdsa > 1000.0 * speck);
    }

    #[test]
    fn garbage_flood_is_cheaper_than_forgery_flood() {
        let garbage = flood_with_garbage(ProverConfig::recommended(), "garbage", 20).unwrap();
        let forged = flood_with_forgeries(ProverConfig::recommended(), "forged", 20).unwrap();
        // Nothing parses, so nothing is answered — and every blob is
        // counted by the malformed-reject statistic.
        assert_eq!(garbage.answered, 0);
        assert!(garbage.cycles_burned < forged.cycles_burned);
        assert!(
            garbage.ms_per_request() < 0.01,
            "got {}",
            garbage.ms_per_request()
        );
    }

    #[test]
    fn garbage_flood_counts_malformed_rejects() {
        let mut world = World::new(ProverConfig::recommended()).unwrap();
        for _ in 0..4 {
            let _ = world.prover.handle_wire_request(&[0xff, 1, 2, 3]);
        }
        assert_eq!(world.prover.stats().rejected_malformed, 4);
        assert_eq!(world.prover.stats().requests_seen, 4);
    }

    #[test]
    fn depletion_math() {
        assert_eq!(requests_to_deplete(100, 10), 10);
        assert_eq!(requests_to_deplete(101, 10), 11);
        assert_eq!(requests_to_deplete(100, 0), u64::MAX);
    }

    #[test]
    fn battery_fraction_is_sane() {
        let r = flood_with_forgeries(ProverConfig::unprotected(), "open", 10).unwrap();
        assert!(r.battery_fraction > 0.0 && r.battery_fraction < 1.0);
    }

    #[test]
    fn battery_fraction_saturates_at_one() {
        // Accounting jitter (e.g. a flood measured against an
        // already-drained capacity snapshot) must clamp, not report >100 %.
        assert_eq!(battery_fraction(2.0, 1.0), 1.0);
        assert_eq!(battery_fraction(1.0, 1.0), 1.0);
        // A dead-on-arrival cell is fully consumed by definition, not NaN.
        assert_eq!(battery_fraction(0.0, 0.0), 1.0);
        // Negative jitter clamps to zero.
        assert_eq!(battery_fraction(-1e-9, 1.0), 0.0);
        assert!((battery_fraction(0.25, 1.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_flood_has_finite_stats() {
        let r = flood_with_forgeries(ProverConfig::recommended(), "empty", 0).unwrap();
        assert_eq!(r.requests, 0);
        // Zero requests: 0 ms/request, not NaN.
        assert_eq!(r.ms_per_request(), 0.0);
        assert!(r.ms_per_request().is_finite());
        assert!(r.battery_fraction.is_finite());
        assert!((0.0..=1.0).contains(&r.battery_fraction));
    }
}
