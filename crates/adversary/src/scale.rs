//! Fleet-scale honest load: thousands of lightweight simulated devices
//! driven by one event-driven client loop.
//!
//! A real [`Prover`](proverguard_attest::prover::Prover) simulates the
//! whole MCU — flash, MPU, cycle accounting — which is exactly right for
//! fidelity experiments and exactly wrong for scale experiments: you
//! cannot provision 32 000 of them just to measure the *verifier's*
//! concurrency ceiling. A [`SimDevice`] keeps only what the gateway can
//! observe on the wire — the response-MAC key and the expected memory
//! image — so its answers are indistinguishable from an honest prover's
//! to [`check_response`](proverguard_attest::verifier::Verifier::check_response),
//! at the cost of a single HMAC per request.
//!
//! [`drive_oneshot_wave`] then plays the prover side of the one-shot
//! gateway protocol for an entire wave of such devices from a single
//! thread, mirroring the gateway's own event-driven driver: every client
//! connection is registered with a [`Poller`] and advanced on readiness,
//! so the client harness scales to the same connection counts it is
//! trying to impose on the gateway.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proverguard_attest::freshness::patch_expected_image;
use proverguard_attest::gateway::GatewayMsg;
use proverguard_attest::message::{AttestRequest, AttestResponse};
use proverguard_crypto::mac::{MacAlgorithm, MacKey};
use proverguard_reactor::{Events, Poller, Token};
use proverguard_transport::nb::NbTransport;
use proverguard_transport::{LoopbackConnector, Transport};

/// A wire-honest device stand-in: answers authenticated attestation
/// requests with a valid `Whole`-scope response MAC over the patched
/// expected image, without simulating the MCU underneath.
#[derive(Debug, Clone)]
pub struct SimDevice {
    response_key: MacKey,
    image: Arc<Vec<u8>>,
}

impl SimDevice {
    /// A device holding `key`, presenting `image` as its RAM contents.
    /// The image must be at least 8 bytes so the freshness counter word
    /// (`counter_R`, at the base of RAM) exists to be patched.
    ///
    /// # Panics
    ///
    /// If the HMAC key schedule rejects `key` (it accepts any 16-byte
    /// key) or `image` is shorter than the counter word.
    #[must_use]
    pub fn new(key: &[u8; 16], image: Vec<u8>) -> Self {
        assert!(image.len() >= 8, "image must cover the counter_R word");
        SimDevice {
            response_key: MacKey::new(MacAlgorithm::HmacSha1, key).expect("HMAC accepts any key"),
            image: Arc::new(image),
        }
    }

    /// The baseline image, for registering the device's verifier-side
    /// expectation.
    #[must_use]
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Answers one serialized [`AttestRequest`] with a serialized
    /// [`AttestResponse`] that verifies against this device's key and
    /// image, committing the request's freshness value into the image
    /// first (reject-then-MAC ordering, like the real prover). Returns
    /// `None` for requests that do not parse.
    #[must_use]
    pub fn respond(&self, raw_request: &[u8]) -> Option<Vec<u8>> {
        let request = AttestRequest::from_bytes(raw_request).ok()?;
        let mut image = (*self.image).clone();
        patch_expected_image(&mut image, &request.freshness);
        let mut macced = request.signed_bytes();
        macced.extend_from_slice(&image);
        let response = AttestResponse {
            report: self.response_key.compute(&macced),
        };
        Some(response.to_bytes())
    }
}

/// Aggregate outcome of one [`drive_oneshot_wave`] call.
#[derive(Debug, Default, Clone)]
pub struct WaveReport {
    /// Connections dialed.
    pub dialed: u64,
    /// Sessions the gateway concluded with `Bye {{ verified: true }}`.
    pub verified: u64,
    /// Connections shed with `Busy`.
    pub shed: u64,
    /// Everything else: unverified `Bye`, protocol garbage, dead links,
    /// or sessions still unfinished at the wave deadline.
    pub failed: u64,
    /// Dial-to-`Bye` wall-clock latency of each *verified* session, in
    /// microseconds, in completion order.
    pub latencies_us: Vec<u64>,
}

impl WaveReport {
    /// The `p`-th percentile (0..=100) of the verified-session latencies,
    /// in microseconds. 0 when no session verified.
    #[must_use]
    pub fn latency_percentile(&self, p: u64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = (p.min(100) as usize * (sorted.len() - 1)) / 100;
        sorted[rank]
    }

    /// Fraction of dials shed with `Busy`, in [0, 1].
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.dialed == 0 {
            return 0.0;
        }
        self.shed as f64 / self.dialed as f64
    }
}

/// One in-flight client connection.
struct Client {
    nb: Box<dyn NbTransport>,
    sim: Arc<SimDevice>,
    dialed_at: Instant,
}

enum Verdict {
    Verified,
    Shed,
    Failed,
    StillRunning,
}

/// Feeds every buffered frame of one client through the one-shot prover
/// protocol: answer `AttReq`, tolerate `Reject` (the gateway's retry
/// budget is its business), stop on a verdict frame.
fn pump_client(client: &mut Client) -> Verdict {
    loop {
        let frame = match client.nb.try_recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => return Verdict::StillRunning,
            Err(_) => return Verdict::Failed,
        };
        match GatewayMsg::decode(&frame) {
            Ok(GatewayMsg::AttReq(raw)) => {
                let Some(reply) = client.sim.respond(&raw) else {
                    return Verdict::Failed;
                };
                if client
                    .nb
                    .enqueue_send(&GatewayMsg::AttResp(reply).encode())
                    .is_err()
                    || client.nb.flush().is_err()
                {
                    return Verdict::Failed;
                }
            }
            Ok(GatewayMsg::Busy) => return Verdict::Shed,
            Ok(GatewayMsg::Bye { verified }) => {
                return if verified {
                    Verdict::Verified
                } else {
                    Verdict::Failed
                }
            }
            Ok(GatewayMsg::Reject(_)) => {}
            Ok(_) | Err(_) => return Verdict::Failed,
        }
    }
}

/// Dials one connection per `(device_id, device)` pair and plays every
/// session concurrently from this thread's event loop until each reaches
/// a verdict or `deadline` passes. Unfinished sessions are booked as
/// failed — a scale gate wants loud truncation, not a hung harness.
#[must_use]
pub fn drive_oneshot_wave(
    connector: &LoopbackConnector,
    devices: &[(u64, Arc<SimDevice>)],
    deadline: Duration,
) -> WaveReport {
    let mut report = WaveReport {
        dialed: devices.len() as u64,
        ..WaveReport::default()
    };
    let mut poller = Poller::new().expect("create client poller");
    let mut clients: Vec<Option<Client>> = Vec::with_capacity(devices.len());
    let mut remaining = 0usize;

    for (slot, (device_id, sim)) in devices.iter().enumerate() {
        let dialed_at = Instant::now();
        let Ok(conn) = connector.connect() else {
            report.failed += 1;
            clients.push(None);
            continue;
        };
        let boxed: Box<dyn Transport> = Box::new(conn);
        let Ok(mut nb) = boxed.into_nb() else {
            report.failed += 1;
            clients.push(None);
            continue;
        };
        let notifier = poller
            .notifier(Token(slot))
            .expect("register client notifier");
        nb.attach_notifier(notifier);
        let hello = GatewayMsg::Hello {
            device_id: *device_id,
        };
        if nb.enqueue_send(&hello.encode()).is_err() || nb.flush().is_err() {
            report.failed += 1;
            clients.push(None);
            continue;
        }
        clients.push(Some(Client {
            nb,
            sim: Arc::clone(sim),
            dialed_at,
        }));
        remaining += 1;
    }

    let started = Instant::now();
    let mut events = Events::with_capacity(1024);
    while remaining > 0 && started.elapsed() < deadline {
        let budget = deadline.saturating_sub(started.elapsed());
        let _ = poller.poll(&mut events, Some(budget.min(Duration::from_millis(50))));
        let ready: Vec<usize> = events.iter().map(|ev| ev.token.0).collect();
        for slot in ready {
            let Some(client) = clients.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            let verdict = pump_client(client);
            match verdict {
                Verdict::StillRunning => {}
                Verdict::Verified => {
                    let us =
                        u64::try_from(client.dialed_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                    report.verified += 1;
                    report.latencies_us.push(us);
                    clients[slot] = None;
                    remaining -= 1;
                }
                Verdict::Shed => {
                    report.shed += 1;
                    clients[slot] = None;
                    remaining -= 1;
                }
                Verdict::Failed => {
                    report.failed += 1;
                    clients[slot] = None;
                    remaining -= 1;
                }
            }
        }
    }
    report.failed += remaining as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_attest::prover::ProverConfig;
    use proverguard_attest::verifier::Verifier;

    const KEY: [u8; 16] = [0x42; 16];

    fn sim_image() -> Vec<u8> {
        let mut image = vec![0u8; 64];
        for (i, byte) in image.iter_mut().enumerate() {
            *byte = (i as u8).wrapping_mul(31);
        }
        image
    }

    /// The whole point of SimDevice: its wire responses verify against a
    /// real Verifier expecting its image.
    #[test]
    fn sim_device_response_verifies() {
        let config = ProverConfig::recommended();
        let mut verifier = Verifier::new(&config, &KEY).expect("verifier");
        let sim = SimDevice::new(&KEY, sim_image());

        for round in 0..3 {
            verifier.set_time_ms(round * 100);
            let request = verifier.make_request().expect("request");
            let raw = sim.respond(&request.to_bytes()).expect("responds");
            let response = AttestResponse::from_bytes(&raw).expect("parses");
            let mut expected = sim.image().to_vec();
            patch_expected_image(&mut expected, &request.freshness);
            assert!(
                verifier.check_response(&request, &response, &expected),
                "sim response must verify on round {round}"
            );
            verifier.note_verified(&request, &response, &expected);
        }
    }

    /// A tampered image no longer verifies: SimDevice is honest, not a
    /// universal forger.
    #[test]
    fn sim_device_bound_to_its_image() {
        let config = ProverConfig::recommended();
        let mut verifier = Verifier::new(&config, &KEY).expect("verifier");
        let sim = SimDevice::new(&KEY, sim_image());

        let request = verifier.make_request().expect("request");
        let raw = sim.respond(&request.to_bytes()).expect("responds");
        let response = AttestResponse::from_bytes(&raw).expect("parses");
        let mut other = sim_image();
        other[40] ^= 0xff;
        patch_expected_image(&mut other, &request.freshness);
        assert!(
            !verifier.check_response(&request, &response, &other),
            "response must be bound to the presented image"
        );
    }

    #[test]
    fn wave_report_percentiles() {
        let report = WaveReport {
            dialed: 4,
            verified: 4,
            latencies_us: vec![40, 10, 30, 20],
            ..WaveReport::default()
        };
        assert_eq!(report.latency_percentile(0), 10);
        assert_eq!(report.latency_percentile(50), 20);
        assert_eq!(report.latency_percentile(100), 40);
        assert_eq!(WaveReport::default().latency_percentile(50), 0);
    }
}
