//! Wire-level adversary tooling: the crate's seeded fault schedules
//! applied to **real transports**, plus the flood clients that hammer a
//! gateway the way `Adv_ext` hammers a prover.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and rolls the same
//! [`FaultInjector`] ladder the in-process [`crate::FaultyLink`] uses, so
//! a fault matrix graded against the simulated channel applies unchanged
//! to the socketed stack. Two kinds differ by necessity:
//!
//! - Truncate/bit-flip mangle the message **payload** (the framing layer
//!   below re-frames it intact), so corruption lands on the gateway
//!   protocol and attestation parsers — the layers with something to
//!   reject. Codec-level garbage is the flood clients' job
//!   ([`raw_garbage_flood`] writes unframed bytes straight at the codec).
//! - Reboot/clock-glitch are prover-side power faults with no wire
//!   equivalent; the roll is consumed (keeping schedules aligned with
//!   [`crate::FaultyLink`] runs on the same seed) but nothing fires.
//!
//! The **session probes** ([`session_replay_probe`] and friends) attack
//! the attested secure channel of [`proverguard_attest::channel`]: each
//! wiretaps a legitimate agent exchange with [`TapTransport`], replays or
//! forges the captured material at the gateway, and then lets the honest
//! agent re-converge — grading both halves of the security story (every
//! attack rejected without key-schedule work, no honest device left
//! stranded).

use std::fmt;
use std::time::Duration;

use proverguard_attest::channel;
use proverguard_attest::error::RejectReason;
use proverguard_attest::gateway::{GatewayMsg, ProverAgent};
use proverguard_attest::session::RetryPolicy;
use proverguard_transport::mem::LoopbackConnector;
use proverguard_transport::{LinkStats, Transport, TransportError};

use crate::fault::{Direction, FaultConfig, FaultEvent, FaultInjector, FaultKind};

/// A [`Transport`] with a seeded fault schedule between the caller and
/// the real link: sends and receives roll the [`FaultInjector`] ladder
/// (send = [`Direction::Request`], receive = [`Direction::Response`]).
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    injector: FaultInjector,
    /// Duplicate-fault copy waiting to be received again.
    replay: Option<Vec<u8>>,
    /// Cap on the real sleep a Delay fault performs, so a schedule tuned
    /// for simulated milliseconds cannot stall a wall-clock bench.
    pub max_real_delay_ms: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the fault schedule of `config`.
    #[must_use]
    pub fn new(inner: T, config: FaultConfig) -> Self {
        FaultyTransport {
            inner,
            injector: FaultInjector::new(config),
            replay: None,
            max_real_delay_ms: 100,
        }
    }

    /// Every fault that has fired so far.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        self.injector.events()
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn nap(&self) {
        let ms = self.injector.config().delay_ms.min(self.max_real_delay_ms);
        std::thread::sleep(Duration::from_millis(ms));
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        match self.injector.roll(Direction::Request) {
            Some(FaultKind::Drop) => Ok(()), // vanished on the wire
            Some(FaultKind::Duplicate) => {
                self.inner.send(payload)?;
                self.inner.send(payload)
            }
            Some(FaultKind::Delay) => {
                self.nap();
                self.inner.send(payload)
            }
            Some(kind @ (FaultKind::Truncate | FaultKind::BitFlip)) => {
                let mut mangled = payload.to_vec();
                self.injector.mangle(kind, &mut mangled);
                self.inner.send(&mangled)
            }
            // Power faults have no wire equivalent; the roll is consumed
            // to keep the schedule aligned across harnesses.
            Some(FaultKind::Reboot | FaultKind::ClockGlitch) | None => self.inner.send(payload),
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        if let Some(copy) = self.replay.take() {
            return Ok(copy);
        }
        loop {
            let payload = self.inner.recv()?;
            match self.injector.roll(Direction::Response) {
                Some(FaultKind::Drop) => continue, // eaten; wait for the next
                Some(FaultKind::Duplicate) => {
                    self.replay = Some(payload.clone());
                    return Ok(payload);
                }
                Some(FaultKind::Delay) => {
                    self.nap();
                    return Ok(payload);
                }
                Some(kind @ (FaultKind::Truncate | FaultKind::BitFlip)) => {
                    let mut mangled = payload;
                    self.injector.mangle(kind, &mut mangled);
                    return Ok(mangled);
                }
                Some(FaultKind::Reboot | FaultKind::ClockGlitch) | None => return Ok(payload),
            }
        }
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_deadline(deadline)
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }

    fn peer(&self) -> String {
        format!("faulty:{}", self.inner.peer())
    }
}

// ---------------------------------------------------------------------------
// Flood clients
// ---------------------------------------------------------------------------

/// What a flood run observed from the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FloodStats {
    /// Connections/sessions the flood opened (or tried to).
    pub attempts: u64,
    /// `Busy` frames received — the gateway shedding us cheaply.
    pub busy: u64,
    /// `Bye` frames received (always `verified: false` for forgeries).
    pub byes: u64,
    /// Attestation requests answered with forged responses.
    pub forged_responses: u64,
    /// Connections that ended in an error/hang-up (the usual fate of
    /// garbage: the gateway just closes).
    pub closed: u64,
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn junk_bytes(state: &mut u64, max_len: usize) -> Vec<u8> {
    let len = (splitmix64(state) as usize % max_len.max(1)) + 1;
    (0..len).map(|_| (splitmix64(state) & 0xff) as u8).collect()
}

/// Blasts `blasts` bursts of **unframed** random bytes at a loopback
/// gateway — line noise aimed at the frame codec itself. Loopback-only
/// because it needs [`proverguard_transport::mem::MemTransport::send_raw`].
pub fn raw_garbage_flood(connector: &LoopbackConnector, blasts: usize, seed: u64) -> FloodStats {
    let mut state = seed;
    let mut stats = FloodStats::default();
    for _ in 0..blasts {
        stats.attempts += 1;
        let Ok(mut conn) = connector.connect() else {
            stats.closed += 1;
            continue;
        };
        if conn.send_raw(junk_bytes(&mut state, 64)).is_err() {
            stats.closed += 1;
            continue;
        }
        // The gateway either sheds us with Busy or (having failed to
        // parse the noise) hangs up; a short read settles which.
        let _ = conn.set_deadline(Some(Duration::from_millis(200)));
        match conn.recv().map(|b| GatewayMsg::decode(&b)) {
            Ok(Ok(GatewayMsg::Busy)) => stats.busy += 1,
            _ => stats.closed += 1,
        }
    }
    stats
}

/// Opens `frames` connections and sends one **well-framed but
/// protocol-garbage** payload down each — exercises the gateway's
/// handshake rejection (as opposed to the codec rejection of
/// [`raw_garbage_flood`]).
pub fn junk_frame_flood<F>(mut connect: F, frames: usize, seed: u64) -> FloodStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut state = seed.wrapping_add(0x6a75_6e6b); // "junk"
    let mut stats = FloodStats::default();
    for _ in 0..frames {
        stats.attempts += 1;
        let Ok(mut conn) = connect() else {
            stats.closed += 1;
            continue;
        };
        if conn.send(&junk_bytes(&mut state, 256)).is_err() {
            stats.closed += 1;
            continue;
        }
        let _ = conn.set_deadline(Some(Duration::from_millis(200)));
        match conn.recv().map(|b| GatewayMsg::decode(&b)) {
            Ok(Ok(GatewayMsg::Busy)) => stats.busy += 1,
            _ => stats.closed += 1,
        }
    }
    stats
}

/// Runs `sessions` **forged** attestation sessions: a correct `Hello` for
/// `device_id`, then a random (hence MAC-invalid) response to every
/// request. The gateway must burn its retries and report the session
/// failed — and never crash or mis-verify.
pub fn forgery_flood<F>(
    mut connect: F,
    device_id: u64,
    sessions: usize,
    seed: u64,
    io_timeout: Duration,
) -> FloodStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut state = seed.wrapping_add(0x666f_7267); // "forg"
    let mut stats = FloodStats::default();
    for _ in 0..sessions {
        stats.attempts += 1;
        let Ok(mut conn) = connect() else {
            stats.closed += 1;
            continue;
        };
        if conn.set_deadline(Some(io_timeout)).is_err() {
            stats.closed += 1;
            continue;
        }
        if conn
            .send(&GatewayMsg::Hello { device_id }.encode())
            .is_err()
        {
            stats.closed += 1;
            continue;
        }
        loop {
            match conn.recv().map(|b| GatewayMsg::decode(&b)) {
                Ok(Ok(GatewayMsg::AttReq(_))) => {
                    // Sometimes a forged MAC, sometimes an insolent
                    // "your request was malformed" — both must bounce.
                    let reply = if splitmix64(&mut state) & 1 == 0 {
                        GatewayMsg::AttResp(junk_bytes(&mut state, 32))
                    } else {
                        GatewayMsg::Reject(RejectReason::Malformed)
                    };
                    stats.forged_responses += 1;
                    if conn.send(&reply.encode()).is_err() {
                        stats.closed += 1;
                        break;
                    }
                }
                Ok(Ok(GatewayMsg::Busy)) => {
                    stats.busy += 1;
                    break;
                }
                Ok(Ok(GatewayMsg::Bye { .. })) => {
                    stats.byes += 1;
                    break;
                }
                _ => {
                    stats.closed += 1;
                    break;
                }
            }
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// Session attacks
// ---------------------------------------------------------------------------

/// A [`Transport`] that records every framed payload in both directions —
/// the adversary's passive wiretap. Session probes run one *legitimate*
/// agent exchange through the tap, then weaponize the captured frames.
pub struct TapTransport {
    inner: Box<dyn Transport>,
    /// Payloads the wrapped caller sent (prover → gateway).
    pub sent: Vec<Vec<u8>>,
    /// Payloads the wrapped caller received (gateway → prover).
    pub received: Vec<Vec<u8>>,
}

impl TapTransport {
    /// Wiretaps `inner`.
    #[must_use]
    pub fn new(inner: Box<dyn Transport>) -> Self {
        TapTransport {
            inner,
            sent: Vec::new(),
            received: Vec::new(),
        }
    }

    /// The last payload the caller sent that decoded as a session frame —
    /// the sealed material a replay attack wants.
    #[must_use]
    pub fn last_sent_session_frame(&self) -> Option<Vec<u8>> {
        self.sent
            .iter()
            .rev()
            .find_map(|bytes| match GatewayMsg::decode(bytes) {
                Ok(GatewayMsg::SessFrame(raw)) => Some(raw),
                _ => None,
            })
    }
}

impl fmt::Debug for TapTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TapTransport")
            .field("sent", &self.sent.len())
            .field("received", &self.received.len())
            .finish()
    }
}

impl Transport for TapTransport {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.sent.push(payload.to_vec());
        self.inner.send(payload)
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        let payload = self.inner.recv()?;
        self.received.push(payload.clone());
        Ok(payload)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_deadline(deadline)
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }

    fn peer(&self) -> String {
        format!("tap:{}", self.inner.peer())
    }
}

/// What a session attack probe observed.
///
/// The invariants a graded run asserts: `accepted == 0` (no forged or
/// replayed material ever answered with a sealed frame or a verified
/// `Bye`), `derives_during_attack == 0` (the gateway rejected before any
/// HKDF work — measured via [`channel::key_derivations`], so the probe
/// must be the only key-schedule activity while its attack dials run),
/// and `honest_recovered == attempts_expected` (the fail-closed teardown
/// never strands the legitimate device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionAttackStats {
    /// Attack dials the probe made.
    pub attempts: u64,
    /// Attack dials the gateway bounced (reject, unverified bye, hangup).
    pub rejected: u64,
    /// Attack dials that got a sealed frame or verified `Bye` back —
    /// **must stay zero**.
    pub accepted: u64,
    /// [`channel::key_derivations`] delta across the attack dials alone
    /// (setup and recovery handshakes derive legitimately and are
    /// excluded) — **must stay zero**.
    pub derives_during_attack: u64,
    /// Post-attack honest dials that re-converged to a verified session.
    pub honest_recovered: u64,
}

impl SessionAttackStats {
    /// Folds another probe's ledger into this one.
    pub fn absorb(&mut self, other: SessionAttackStats) {
        self.attempts += other.attempts;
        self.rejected += other.rejected;
        self.accepted += other.accepted;
        self.derives_during_attack += other.derives_during_attack;
        self.honest_recovered += other.honest_recovered;
    }
}

/// Dials the agent in until a session is live. Returns `false` if the
/// handshake would not verify — the probes bail rather than grade an
/// attack against a session that never existed.
fn ensure_session<F>(connect: &mut F, agent: &mut ProverAgent, io_timeout: Duration) -> bool
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    if agent.session_id().is_some() {
        return true;
    }
    let Ok(mut conn) = connect() else {
        return false;
    };
    agent.run_session(conn.as_mut(), io_timeout).is_verified() && agent.session_id().is_some()
}

/// One legitimate sealed round through the wiretap; returns the sealed
/// prover→gateway frame it captured.
fn tap_round<F>(connect: &mut F, agent: &mut ProverAgent, io_timeout: Duration) -> Option<Vec<u8>>
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let conn = connect().ok()?;
    let mut tap = TapTransport::new(conn);
    if !agent.run_session(&mut tap, io_timeout).is_verified() {
        return None;
    }
    tap.last_sent_session_frame()
}

/// One attack dial: resumes `session_id`, waits for the gateway's sealed
/// challenge, answers with whatever `forge` fabricates, and classifies
/// the gateway's verdict. Fail-closed teardown at the gateway is the
/// *expected* outcome; the caller re-converges the honest agent after.
fn attack_dial<F>(
    connect: &mut F,
    device_id: u64,
    session_id: [u8; channel::SESSION_ID_SIZE],
    forge: impl FnOnce(&[u8]) -> GatewayMsg,
    io_timeout: Duration,
    stats: &mut SessionAttackStats,
) where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    stats.attempts += 1;
    let Ok(mut conn) = connect() else {
        stats.rejected += 1;
        return;
    };
    if conn.set_deadline(Some(io_timeout)).is_err() {
        stats.rejected += 1;
        return;
    }
    let hello = GatewayMsg::SessHello {
        device_id,
        session_id: Some(session_id),
    };
    if conn.send(&hello.encode()).is_err() {
        stats.rejected += 1;
        return;
    }
    let challenge = match conn.recv().map(|b| GatewayMsg::decode(&b)) {
        Ok(Ok(GatewayMsg::SessFrame(raw))) => raw,
        // Session already gone (or gateway shedding): cheapest
        // possible rejection, before the attack even fired.
        _ => {
            stats.rejected += 1;
            return;
        }
    };
    if conn.send(&forge(&challenge).encode()).is_err() {
        stats.rejected += 1;
        return;
    }
    match conn.recv().map(|b| GatewayMsg::decode(&b)) {
        Ok(Ok(GatewayMsg::SessFrame(_) | GatewayMsg::Bye { verified: true })) => {
            stats.accepted += 1;
        }
        _ => stats.rejected += 1,
    }
}

/// Re-converges the honest agent after an attack tore its session down:
/// one retry-wrapped dial that transparently re-handshakes.
fn honest_recovery<F>(
    connect: &mut F,
    agent: &mut ProverAgent,
    io_timeout: Duration,
    stats: &mut SessionAttackStats,
) where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let outcome = agent.attest_with_retry(&mut *connect, &RetryPolicy::default(), io_timeout, 50);
    if outcome.is_verified() && agent.session_id().is_some() {
        stats.honest_recovered += 1;
    }
}

/// **Replayed session frame.** Wiretaps one legitimate sealed round, then
/// dials back in with the same session id and answers the gateway's
/// *fresh* challenge with the stale captured frame. The replay window
/// must bounce it before the MAC is even checked, the gateway must tear
/// the session down fail-closed, and the honest agent must re-handshake
/// its way back.
pub fn session_replay_probe<F>(
    mut connect: F,
    agent: &mut ProverAgent,
    device_id: u64,
    io_timeout: Duration,
) -> SessionAttackStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut stats = SessionAttackStats::default();
    if !ensure_session(&mut connect, agent, io_timeout) {
        return stats;
    }
    let Some(captured) = tap_round(&mut connect, agent, io_timeout) else {
        return stats;
    };
    let sid = agent.session_id().expect("live session after tapped round");
    let before = channel::key_derivations();
    attack_dial(
        &mut connect,
        device_id,
        sid,
        |_| GatewayMsg::SessFrame(captured),
        io_timeout,
        &mut stats,
    );
    stats.derives_during_attack += channel::key_derivations() - before;
    honest_recovery(&mut connect, agent, io_timeout, &mut stats);
    stats
}

/// **Key reuse across sessions.** Steals the channel state of session A,
/// lets the honest agent open session B, then (a) tries to resume the
/// dead session A by id — the table must miss cheaply — and (b) answers
/// session B's challenge with a frame sealed under A's keys — the frame
/// MAC must fail without any derivation. Both teardowns are fail-closed;
/// the honest agent re-converges after.
pub fn session_key_reuse_probe<F>(
    mut connect: F,
    agent: &mut ProverAgent,
    device_id: u64,
    io_timeout: Duration,
) -> SessionAttackStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut stats = SessionAttackStats::default();
    if !ensure_session(&mut connect, agent, io_timeout) {
        return stats;
    }
    let Some(mut stale) = agent.take_session() else {
        return stats;
    };
    let sid_a = stale.session_id();
    // The honest agent re-handshakes: session B replaces A at the table.
    if !ensure_session(&mut connect, agent, io_timeout) {
        return stats;
    }
    let sid_b = agent.session_id().expect("session B established");
    let before = channel::key_derivations();
    // (a) Resume-by-id of the replaced session: cheap table miss.
    attack_dial(
        &mut connect,
        device_id,
        sid_a,
        |_| GatewayMsg::SessFrame(Vec::new()),
        io_timeout,
        &mut stats,
    );
    // (b) Session A's keys against session B's challenge.
    attack_dial(
        &mut connect,
        device_id,
        sid_b,
        |_| {
            let inner = GatewayMsg::AttResp(vec![0u8; 32]).encode();
            GatewayMsg::SessFrame(stale.seal_next(&inner))
        },
        io_timeout,
        &mut stats,
    );
    stats.derives_during_attack += channel::key_derivations() - before;
    honest_recovery(&mut connect, agent, io_timeout, &mut stats);
    stats
}

/// **Downgrade to one-shot.** Resumes a live session and answers the
/// sealed challenge with a *bare* (unsealed) `AttResp`, probing whether
/// the gateway can be talked down from the channel to the legacy
/// protocol mid-round. It must refuse before touching any key material.
pub fn session_downgrade_probe<F>(
    mut connect: F,
    agent: &mut ProverAgent,
    device_id: u64,
    io_timeout: Duration,
) -> SessionAttackStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut stats = SessionAttackStats::default();
    if !ensure_session(&mut connect, agent, io_timeout) {
        return stats;
    }
    let sid = agent.session_id().expect("live session");
    let before = channel::key_derivations();
    attack_dial(
        &mut connect,
        device_id,
        sid,
        |_| GatewayMsg::AttResp(vec![0u8; 32]),
        io_timeout,
        &mut stats,
    );
    stats.derives_during_attack += channel::key_derivations() - before;
    honest_recovery(&mut connect, agent, io_timeout, &mut stats);
    stats
}

/// **Mid-session reboot.** Wiretaps a legitimate round, power-cycles the
/// device (volatile session keys gone, sealed freshness record restored
/// from NV), then replays the pre-reboot frame into the gateway's
/// still-live session. The ghost must be rejected, and the rebooted
/// device must re-handshake to a verified session — the NV freshness
/// record is what keeps that second handshake's counter monotonic.
pub fn session_reboot_probe<F>(
    mut connect: F,
    agent: &mut ProverAgent,
    device_id: u64,
    io_timeout: Duration,
) -> SessionAttackStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut stats = SessionAttackStats::default();
    if !ensure_session(&mut connect, agent, io_timeout) {
        return stats;
    }
    let Some(captured) = tap_round(&mut connect, agent, io_timeout) else {
        return stats;
    };
    let sid = agent.session_id().expect("live session after tapped round");
    if agent.reboot().is_err() {
        return stats;
    }
    let before = channel::key_derivations();
    attack_dial(
        &mut connect,
        device_id,
        sid,
        |_| GatewayMsg::SessFrame(captured),
        io_timeout,
        &mut stats,
    );
    stats.derives_during_attack += channel::key_derivations() - before;
    honest_recovery(&mut connect, agent, io_timeout, &mut stats);
    stats
}

/// Runs the full session attack suite in sequence, folding the ledgers.
pub fn session_attack_suite<F>(
    mut connect: F,
    agent: &mut ProverAgent,
    device_id: u64,
    io_timeout: Duration,
) -> SessionAttackStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut stats = SessionAttackStats::default();
    stats.absorb(session_replay_probe(
        &mut connect,
        agent,
        device_id,
        io_timeout,
    ));
    stats.absorb(session_key_reuse_probe(
        &mut connect,
        agent,
        device_id,
        io_timeout,
    ));
    stats.absorb(session_downgrade_probe(
        &mut connect,
        agent,
        device_id,
        io_timeout,
    ));
    stats.absorb(session_reboot_probe(
        &mut connect,
        agent,
        device_id,
        io_timeout,
    ));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_transport::frame::DEFAULT_MAX_FRAME;
    use proverguard_transport::mem::loopback_pair;

    #[test]
    fn clean_config_is_transparent() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut a = FaultyTransport::new(a, FaultConfig::none(1));
        a.send(b"hello").unwrap();
        b.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert!(a.events().is_empty());
    }

    #[test]
    fn black_hole_eats_sends_silently() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut a = FaultyTransport::new(a, FaultConfig::black_hole(2));
        for _ in 0..4 {
            a.send(b"x").unwrap(); // "succeeds" — that's the point
        }
        b.set_deadline(Some(Duration::from_millis(20))).unwrap();
        assert_eq!(b.recv(), Err(TransportError::Timeout));
        assert_eq!(a.events().len(), 4);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let (a, _b) = loopback_pair(DEFAULT_MAX_FRAME);
            let mut a = FaultyTransport::new(a, FaultConfig::lossy(seed));
            for _ in 0..32 {
                let _ = a.send(b"payload");
            }
            a.events()
                .iter()
                .map(|e| (e.message_index, e.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn corruption_reaches_the_peer_mangled() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut a = FaultyTransport::new(a, FaultConfig::corrupting(3));
        b.set_deadline(Some(Duration::from_millis(200))).unwrap();
        let payload = vec![0xAAu8; 32];
        let mut saw_mangled = false;
        for _ in 0..64 {
            a.send(&payload).unwrap();
            match b.recv() {
                Ok(got) => saw_mangled |= got != payload,
                Err(TransportError::Timeout) => break,
                Err(e) => panic!("unexpected transport error: {e:?}"),
            }
        }
        assert!(saw_mangled, "corrupting schedule never mangled a payload");
        assert!(!a.events().is_empty());
    }

    #[test]
    fn duplicate_on_receive_is_replayed() {
        let config = FaultConfig {
            duplicate_per_mille: 1000,
            ..FaultConfig::none(4)
        };
        let (mut a, b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut b = FaultyTransport::new(b, config);
        a.send(b"once").unwrap();
        b.set_deadline(Some(Duration::from_millis(200))).unwrap();
        assert_eq!(b.recv().unwrap(), b"once");
        assert_eq!(b.recv().unwrap(), b"once"); // the duplicate
    }

    #[test]
    fn junk_generators_are_deterministic() {
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        assert_eq!(junk_bytes(&mut s1, 64), junk_bytes(&mut s2, 64));
    }

    #[test]
    fn session_attack_suite_all_rejected_and_honest_agent_converges() {
        use proverguard_attest::gateway::{DeviceDirectory, Gateway, GatewayConfig};
        use proverguard_attest::prover::{Prover, ProverConfig};
        use proverguard_attest::verifier::{ScopePolicy, Verifier};
        use proverguard_transport::mem::LoopbackHub;

        let key = [0x42u8; 16];
        let config = ProverConfig::recommended_segmented();
        let (hub, connector) = LoopbackHub::new(DEFAULT_MAX_FRAME);
        let prover = Prover::provision(config.clone(), &key, b"app v1").unwrap();
        let mut verifier = Verifier::new(&config, &key).unwrap();
        verifier.set_scope_policy(ScopePolicy::History { full_every: 0 });
        let mut directory = DeviceDirectory::new();
        let device_id = directory.register(verifier, prover.expected_memory().to_vec());
        let handle = Gateway::start(
            Box::new(hub),
            directory,
            GatewayConfig {
                workers: 2,
                read_timeout_ms: 10_000,
                ..GatewayConfig::default()
            },
        );
        let mut agent = ProverAgent::with_sessions(prover, device_id);

        let stats = session_attack_suite(
            || {
                connector
                    .connect()
                    .map(|c| Box::new(c) as Box<dyn Transport>)
            },
            &mut agent,
            device_id,
            Duration::from_secs(30),
        );

        // 4 probes = 5 attack dials (key-reuse fires two).
        assert_eq!(stats.attempts, 5, "{stats:?}");
        assert_eq!(stats.rejected, 5, "{stats:?}");
        assert_eq!(stats.accepted, 0, "forged material accepted: {stats:?}");
        assert_eq!(
            stats.derives_during_attack, 0,
            "gateway derived keys while under attack: {stats:?}"
        );
        assert_eq!(stats.honest_recovered, 4, "{stats:?}");

        let report = handle.shutdown();
        assert!(report.stats.partition_holds(), "{:?}", report.stats);
        assert!(
            report.stats.session_partition_holds(),
            "session partition: {:?}",
            report.stats
        );
        // The honest device ends the gauntlet with exactly one live
        // session; every attacked one was torn down fail-closed.
        assert_eq!(report.stats.sessions_active, 1, "{:?}", report.stats);
        assert!(report.stats.sessions_evicted >= 3, "{:?}", report.stats);
    }
}
