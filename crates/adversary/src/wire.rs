//! Wire-level adversary tooling: the crate's seeded fault schedules
//! applied to **real transports**, plus the flood clients that hammer a
//! gateway the way `Adv_ext` hammers a prover.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and rolls the same
//! [`FaultInjector`] ladder the in-process [`crate::FaultyLink`] uses, so
//! a fault matrix graded against the simulated channel applies unchanged
//! to the socketed stack. Two kinds differ by necessity:
//!
//! - Truncate/bit-flip mangle the message **payload** (the framing layer
//!   below re-frames it intact), so corruption lands on the gateway
//!   protocol and attestation parsers — the layers with something to
//!   reject. Codec-level garbage is the flood clients' job
//!   ([`raw_garbage_flood`] writes unframed bytes straight at the codec).
//! - Reboot/clock-glitch are prover-side power faults with no wire
//!   equivalent; the roll is consumed (keeping schedules aligned with
//!   [`crate::FaultyLink`] runs on the same seed) but nothing fires.

use std::time::Duration;

use proverguard_attest::error::RejectReason;
use proverguard_attest::gateway::GatewayMsg;
use proverguard_transport::mem::LoopbackConnector;
use proverguard_transport::{LinkStats, Transport, TransportError};

use crate::fault::{Direction, FaultConfig, FaultEvent, FaultInjector, FaultKind};

/// A [`Transport`] with a seeded fault schedule between the caller and
/// the real link: sends and receives roll the [`FaultInjector`] ladder
/// (send = [`Direction::Request`], receive = [`Direction::Response`]).
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    injector: FaultInjector,
    /// Duplicate-fault copy waiting to be received again.
    replay: Option<Vec<u8>>,
    /// Cap on the real sleep a Delay fault performs, so a schedule tuned
    /// for simulated milliseconds cannot stall a wall-clock bench.
    pub max_real_delay_ms: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the fault schedule of `config`.
    #[must_use]
    pub fn new(inner: T, config: FaultConfig) -> Self {
        FaultyTransport {
            inner,
            injector: FaultInjector::new(config),
            replay: None,
            max_real_delay_ms: 100,
        }
    }

    /// Every fault that has fired so far.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        self.injector.events()
    }

    /// The wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    fn nap(&self) {
        let ms = self.injector.config().delay_ms.min(self.max_real_delay_ms);
        std::thread::sleep(Duration::from_millis(ms));
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        match self.injector.roll(Direction::Request) {
            Some(FaultKind::Drop) => Ok(()), // vanished on the wire
            Some(FaultKind::Duplicate) => {
                self.inner.send(payload)?;
                self.inner.send(payload)
            }
            Some(FaultKind::Delay) => {
                self.nap();
                self.inner.send(payload)
            }
            Some(kind @ (FaultKind::Truncate | FaultKind::BitFlip)) => {
                let mut mangled = payload.to_vec();
                self.injector.mangle(kind, &mut mangled);
                self.inner.send(&mangled)
            }
            // Power faults have no wire equivalent; the roll is consumed
            // to keep the schedule aligned across harnesses.
            Some(FaultKind::Reboot | FaultKind::ClockGlitch) | None => self.inner.send(payload),
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, TransportError> {
        if let Some(copy) = self.replay.take() {
            return Ok(copy);
        }
        loop {
            let payload = self.inner.recv()?;
            match self.injector.roll(Direction::Response) {
                Some(FaultKind::Drop) => continue, // eaten; wait for the next
                Some(FaultKind::Duplicate) => {
                    self.replay = Some(payload.clone());
                    return Ok(payload);
                }
                Some(FaultKind::Delay) => {
                    self.nap();
                    return Ok(payload);
                }
                Some(kind @ (FaultKind::Truncate | FaultKind::BitFlip)) => {
                    let mut mangled = payload;
                    self.injector.mangle(kind, &mut mangled);
                    return Ok(mangled);
                }
                Some(FaultKind::Reboot | FaultKind::ClockGlitch) | None => return Ok(payload),
            }
        }
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), TransportError> {
        self.inner.set_deadline(deadline)
    }

    fn stats(&self) -> LinkStats {
        self.inner.stats()
    }

    fn peer(&self) -> String {
        format!("faulty:{}", self.inner.peer())
    }
}

// ---------------------------------------------------------------------------
// Flood clients
// ---------------------------------------------------------------------------

/// What a flood run observed from the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FloodStats {
    /// Connections/sessions the flood opened (or tried to).
    pub attempts: u64,
    /// `Busy` frames received — the gateway shedding us cheaply.
    pub busy: u64,
    /// `Bye` frames received (always `verified: false` for forgeries).
    pub byes: u64,
    /// Attestation requests answered with forged responses.
    pub forged_responses: u64,
    /// Connections that ended in an error/hang-up (the usual fate of
    /// garbage: the gateway just closes).
    pub closed: u64,
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn junk_bytes(state: &mut u64, max_len: usize) -> Vec<u8> {
    let len = (splitmix64(state) as usize % max_len.max(1)) + 1;
    (0..len).map(|_| (splitmix64(state) & 0xff) as u8).collect()
}

/// Blasts `blasts` bursts of **unframed** random bytes at a loopback
/// gateway — line noise aimed at the frame codec itself. Loopback-only
/// because it needs [`proverguard_transport::mem::MemTransport::send_raw`].
pub fn raw_garbage_flood(connector: &LoopbackConnector, blasts: usize, seed: u64) -> FloodStats {
    let mut state = seed;
    let mut stats = FloodStats::default();
    for _ in 0..blasts {
        stats.attempts += 1;
        let Ok(mut conn) = connector.connect() else {
            stats.closed += 1;
            continue;
        };
        if conn.send_raw(junk_bytes(&mut state, 64)).is_err() {
            stats.closed += 1;
            continue;
        }
        // The gateway either sheds us with Busy or (having failed to
        // parse the noise) hangs up; a short read settles which.
        let _ = conn.set_deadline(Some(Duration::from_millis(200)));
        match conn.recv().map(|b| GatewayMsg::decode(&b)) {
            Ok(Ok(GatewayMsg::Busy)) => stats.busy += 1,
            _ => stats.closed += 1,
        }
    }
    stats
}

/// Opens `frames` connections and sends one **well-framed but
/// protocol-garbage** payload down each — exercises the gateway's
/// handshake rejection (as opposed to the codec rejection of
/// [`raw_garbage_flood`]).
pub fn junk_frame_flood<F>(mut connect: F, frames: usize, seed: u64) -> FloodStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut state = seed.wrapping_add(0x6a75_6e6b); // "junk"
    let mut stats = FloodStats::default();
    for _ in 0..frames {
        stats.attempts += 1;
        let Ok(mut conn) = connect() else {
            stats.closed += 1;
            continue;
        };
        if conn.send(&junk_bytes(&mut state, 256)).is_err() {
            stats.closed += 1;
            continue;
        }
        let _ = conn.set_deadline(Some(Duration::from_millis(200)));
        match conn.recv().map(|b| GatewayMsg::decode(&b)) {
            Ok(Ok(GatewayMsg::Busy)) => stats.busy += 1,
            _ => stats.closed += 1,
        }
    }
    stats
}

/// Runs `sessions` **forged** attestation sessions: a correct `Hello` for
/// `device_id`, then a random (hence MAC-invalid) response to every
/// request. The gateway must burn its retries and report the session
/// failed — and never crash or mis-verify.
pub fn forgery_flood<F>(
    mut connect: F,
    device_id: u64,
    sessions: usize,
    seed: u64,
    io_timeout: Duration,
) -> FloodStats
where
    F: FnMut() -> Result<Box<dyn Transport>, TransportError>,
{
    let mut state = seed.wrapping_add(0x666f_7267); // "forg"
    let mut stats = FloodStats::default();
    for _ in 0..sessions {
        stats.attempts += 1;
        let Ok(mut conn) = connect() else {
            stats.closed += 1;
            continue;
        };
        if conn.set_deadline(Some(io_timeout)).is_err() {
            stats.closed += 1;
            continue;
        }
        if conn
            .send(&GatewayMsg::Hello { device_id }.encode())
            .is_err()
        {
            stats.closed += 1;
            continue;
        }
        loop {
            match conn.recv().map(|b| GatewayMsg::decode(&b)) {
                Ok(Ok(GatewayMsg::AttReq(_))) => {
                    // Sometimes a forged MAC, sometimes an insolent
                    // "your request was malformed" — both must bounce.
                    let reply = if splitmix64(&mut state) & 1 == 0 {
                        GatewayMsg::AttResp(junk_bytes(&mut state, 32))
                    } else {
                        GatewayMsg::Reject(RejectReason::Malformed)
                    };
                    stats.forged_responses += 1;
                    if conn.send(&reply.encode()).is_err() {
                        stats.closed += 1;
                        break;
                    }
                }
                Ok(Ok(GatewayMsg::Busy)) => {
                    stats.busy += 1;
                    break;
                }
                Ok(Ok(GatewayMsg::Bye { .. })) => {
                    stats.byes += 1;
                    break;
                }
                _ => {
                    stats.closed += 1;
                    break;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_transport::frame::DEFAULT_MAX_FRAME;
    use proverguard_transport::mem::loopback_pair;

    #[test]
    fn clean_config_is_transparent() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut a = FaultyTransport::new(a, FaultConfig::none(1));
        a.send(b"hello").unwrap();
        b.set_deadline(Some(Duration::from_secs(1))).unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        assert!(a.events().is_empty());
    }

    #[test]
    fn black_hole_eats_sends_silently() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut a = FaultyTransport::new(a, FaultConfig::black_hole(2));
        for _ in 0..4 {
            a.send(b"x").unwrap(); // "succeeds" — that's the point
        }
        b.set_deadline(Some(Duration::from_millis(20))).unwrap();
        assert_eq!(b.recv(), Err(TransportError::Timeout));
        assert_eq!(a.events().len(), 4);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let (a, _b) = loopback_pair(DEFAULT_MAX_FRAME);
            let mut a = FaultyTransport::new(a, FaultConfig::lossy(seed));
            for _ in 0..32 {
                let _ = a.send(b"payload");
            }
            a.events()
                .iter()
                .map(|e| (e.message_index, e.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn corruption_reaches_the_peer_mangled() {
        let (a, mut b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut a = FaultyTransport::new(a, FaultConfig::corrupting(3));
        b.set_deadline(Some(Duration::from_millis(200))).unwrap();
        let payload = vec![0xAAu8; 32];
        let mut saw_mangled = false;
        for _ in 0..64 {
            a.send(&payload).unwrap();
            match b.recv() {
                Ok(got) => saw_mangled |= got != payload,
                Err(TransportError::Timeout) => break,
                Err(e) => panic!("unexpected transport error: {e:?}"),
            }
        }
        assert!(saw_mangled, "corrupting schedule never mangled a payload");
        assert!(!a.events().is_empty());
    }

    #[test]
    fn duplicate_on_receive_is_replayed() {
        let config = FaultConfig {
            duplicate_per_mille: 1000,
            ..FaultConfig::none(4)
        };
        let (mut a, b) = loopback_pair(DEFAULT_MAX_FRAME);
        let mut b = FaultyTransport::new(b, config);
        a.send(b"once").unwrap();
        b.set_deadline(Some(Duration::from_millis(200))).unwrap();
        assert_eq!(b.recv().unwrap(), b"once");
        assert_eq!(b.recv().unwrap(), b"once"); // the duplicate
    }

    #[test]
    fn junk_generators_are_deterministic() {
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        assert_eq!(junk_bytes(&mut s1, 64), junk_bytes(&mut s2, 64));
    }
}
