//! The experiment substrate: a provisioned prover and its verifier with a
//! shared wall clock.

use proverguard_attest::error::AttestError;
use proverguard_attest::prover::{Prover, ProverConfig};
use proverguard_attest::verifier::Verifier;

/// Default shared key for scenario worlds.
pub const DEFAULT_KEY: [u8; 16] = [0x42; 16];

/// Default application image provisioned into flash.
pub const DEFAULT_IMAGE: &[u8] = b"proverguard demo application image v1";

/// A verifier + prover pair whose clocks advance together (the paper
/// assumes synchronized clocks; deliberate desynchronization is what the
/// delay/roam scenarios then introduce).
#[derive(Debug, Clone)]
pub struct World {
    /// The prover under attack.
    pub prover: Prover,
    /// The genuine verifier.
    pub verifier: Verifier,
}

impl World {
    /// Provisions a world for `config` with the default key and image.
    ///
    /// # Errors
    ///
    /// [`AttestError`] if provisioning fails.
    pub fn new(config: ProverConfig) -> Result<Self, AttestError> {
        Self::with_key(config, &DEFAULT_KEY)
    }

    /// Provisions a world with an explicit shared key.
    ///
    /// # Errors
    ///
    /// [`AttestError`] if provisioning fails.
    pub fn with_key(config: ProverConfig, key: &[u8; 16]) -> Result<Self, AttestError> {
        let prover = Prover::provision(config.clone(), key, DEFAULT_IMAGE)?;
        let verifier = Verifier::new(&config, key)?;
        Ok(World { prover, verifier })
    }

    /// Advances both parties' clocks by `ms` (the prover idles).
    ///
    /// # Errors
    ///
    /// [`AttestError::Device`] if the prover's interrupt service faults.
    pub fn advance_ms(&mut self, ms: u64) -> Result<(), AttestError> {
        self.prover.advance_time_ms(ms)?;
        self.verifier.advance_time_ms(ms);
        Ok(())
    }

    /// Delivers a request to the prover, keeping wall time consistent: the
    /// milliseconds the prover spends computing (up to ~754 ms for an
    /// accepted request) also elapse on the verifier's clock.
    ///
    /// # Errors
    ///
    /// Whatever [`Prover::handle_request`] returns — rejections included.
    pub fn deliver(
        &mut self,
        request: &proverguard_attest::message::AttestRequest,
    ) -> Result<proverguard_attest::message::AttestResponse, AttestError> {
        let result = self.prover.handle_request(request);
        let compute_ms = self.prover.last_cost().total_ms().round() as u64;
        self.verifier.advance_time_ms(compute_ms);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_runs_a_genuine_exchange() {
        let mut w = World::new(ProverConfig::recommended()).unwrap();
        let req = w.verifier.make_request().unwrap();
        let resp = w.prover.handle_request(&req).unwrap();
        assert!(w
            .verifier
            .check_response(&req, &resp, w.prover.expected_memory()));
    }

    #[test]
    fn clocks_advance_in_lockstep() {
        let mut w = World::new(ProverConfig::timestamp_hw64()).unwrap();
        w.advance_ms(5000).unwrap();
        let prover_ms = w.prover.now_ms().unwrap().unwrap();
        assert_eq!(w.verifier.now_ms(), 5000);
        assert!(prover_ms.abs_diff(5000) <= 1, "prover at {prover_ms}");
    }
}
