//! The external adversary `Adv_ext` (§3.2) and the Table 2 experiment.
//!
//! `Adv_ext` controls the network but not the prover's internals. Four
//! attacks are modelled; run against each freshness policy they populate
//! the paper's Table 2 mitigation matrix.

use proverguard_attest::clock::ClockKind;
use proverguard_attest::error::AttestError;
use proverguard_attest::freshness::{FreshnessKind, DEFAULT_MAX_DELAY_MS};
use proverguard_attest::message::AttestRequest;
use proverguard_attest::prover::ProverConfig;

use crate::channel::Channel;
use crate::world::World;

/// An `Adv_ext` attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtAttack {
    /// Verifier impersonation: inject a forged request.
    Forge,
    /// Record a genuine request, deliver it, then deliver it again.
    Replay,
    /// Record two genuine requests and deliver them in reverse order.
    Reorder,
    /// Intercept a genuine request and deliver it after `delay_ms`.
    Delay {
        /// How long the message is held back.
        delay_ms: u64,
    },
}

impl ExtAttack {
    /// The three Table 2 rows (delay uses 4× the acceptance window).
    #[must_use]
    pub fn table2_rows() -> [ExtAttack; 3] {
        [
            ExtAttack::Replay,
            ExtAttack::Reorder,
            ExtAttack::Delay {
                delay_ms: 4 * DEFAULT_MAX_DELAY_MS,
            },
        ]
    }
}

impl std::fmt::Display for ExtAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtAttack::Forge => write!(f, "Forge"),
            ExtAttack::Replay => write!(f, "Replay"),
            ExtAttack::Reorder => write!(f, "Reorder"),
            ExtAttack::Delay { .. } => write!(f, "Delay"),
        }
    }
}

/// What an attack run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// `true` iff the prover rejected the malicious delivery.
    pub detected: bool,
    /// Cycles the malicious delivery cost the prover.
    pub prover_cycles_wasted: u64,
}

/// Runs `attack` against a fresh copy of `world`'s configuration.
///
/// Genuine protocol traffic is exchanged first where the attack needs
/// something to record; the outcome describes only the *malicious*
/// delivery.
///
/// # Errors
///
/// [`AttestError`] on device faults (never on detection — detection is
/// the `detected` flag).
pub fn run_attack(world: &mut World, attack: ExtAttack) -> Result<AttackOutcome, AttestError> {
    // Move both clocks off zero so the first genuine timestamp is strictly
    // greater than the prover's initial `counter_R` word.
    world.advance_ms(1000)?;
    let mut channel = Channel::new();
    match attack {
        ExtAttack::Forge => {
            // The adversary fabricates a request with a bogus authenticator.
            let genuine = world.verifier.make_request()?;
            let forged = AttestRequest {
                auth: vec![0u8; genuine.auth.len()],
                ..genuine
            };
            Ok(deliver_malicious(world, &forged))
        }
        ExtAttack::Replay => {
            let req = world.verifier.make_request()?;
            channel.send(&req, world.verifier.now_ms());
            // Genuine delivery.
            let _ = world.prover.handle_request(&req);
            world.advance_ms(50)?;
            // Malicious redelivery.
            let replayed = channel.recorded(0).expect("recorded").request()?;
            Ok(deliver_malicious(world, &replayed))
        }
        ExtAttack::Reorder => {
            let first = world.verifier.make_request()?;
            channel.send(&first, world.verifier.now_ms());
            world.advance_ms(50)?;
            let second = world.verifier.make_request()?;
            channel.send(&second, world.verifier.now_ms());
            // Deliver the *second* request first (genuine, in the
            // adversary's preferred order)…
            let _ = world.prover.handle_request(&second);
            world.advance_ms(50)?;
            // …then the held-back first request: the malicious delivery.
            let held_back = channel.recorded(0).expect("recorded").request()?;
            Ok(deliver_malicious(world, &held_back))
        }
        ExtAttack::Delay { delay_ms } => {
            let req = world.verifier.make_request()?;
            channel.send(&req, world.verifier.now_ms());
            // The adversary holds the message while time passes.
            world.advance_ms(delay_ms)?;
            let delayed = channel.recorded(0).expect("recorded").request()?;
            Ok(deliver_malicious(world, &delayed))
        }
    }
}

fn deliver_malicious(world: &mut World, request: &AttestRequest) -> AttackOutcome {
    let result = world.prover.handle_request(request);
    let detected = matches!(result, Err(ref e) if e.is_rejection());
    AttackOutcome {
        detected,
        prover_cycles_wasted: world.prover.last_cost().total(),
    }
}

/// One cell of the mitigation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixCell {
    /// The freshness policy (column).
    pub policy: FreshnessKind,
    /// The attack (row).
    pub attack: ExtAttack,
    /// Whether the attack was detected.
    pub mitigated: bool,
}

/// The Table 2 mitigation matrix, generated by simulation.
#[derive(Debug, Clone)]
pub struct MitigationMatrix {
    cells: Vec<MatrixCell>,
}

impl MitigationMatrix {
    /// Runs every Table 2 attack against every freshness policy.
    ///
    /// All provers authenticate requests (§4's premise: authentication is
    /// necessary but insufficient) and timestamp provers get the 64-bit
    /// hardware clock.
    ///
    /// # Errors
    ///
    /// [`AttestError`] if any scenario hits a device fault.
    pub fn generate() -> Result<Self, AttestError> {
        let mut cells = Vec::new();
        for policy in [
            FreshnessKind::NonceHistory,
            FreshnessKind::Counter,
            FreshnessKind::Timestamp,
        ] {
            for attack in ExtAttack::table2_rows() {
                let config = ProverConfig {
                    freshness: policy,
                    clock: if policy == FreshnessKind::Timestamp {
                        ClockKind::Hw64
                    } else {
                        ClockKind::None
                    },
                    ..ProverConfig::recommended()
                };
                let mut world = World::new(config)?;
                let outcome = run_attack(&mut world, attack)?;
                cells.push(MatrixCell {
                    policy,
                    attack,
                    mitigated: outcome.detected,
                });
            }
        }
        Ok(MitigationMatrix { cells })
    }

    /// All cells.
    #[must_use]
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// Looks up one cell.
    #[must_use]
    pub fn mitigated(&self, policy: FreshnessKind, attack: &ExtAttack) -> Option<bool> {
        self.cells
            .iter()
            .find(|c| {
                c.policy == policy
                    && std::mem::discriminant(&c.attack) == std::mem::discriminant(attack)
            })
            .map(|c| c.mitigated)
    }
}

impl std::fmt::Display for MitigationMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<10} {:>8} {:>9} {:>12}",
            "Attack:", "Nonces", "Counter", "Timestamps"
        )?;
        for attack in ExtAttack::table2_rows() {
            write!(f, "{:<10}", attack.to_string())?;
            for policy in [
                FreshnessKind::NonceHistory,
                FreshnessKind::Counter,
                FreshnessKind::Timestamp,
            ] {
                let mark = match self.mitigated(policy, &attack) {
                    Some(true) => "ok",
                    Some(false) => "-",
                    None => "?",
                };
                let width = match policy {
                    FreshnessKind::NonceHistory => 8,
                    FreshnessKind::Counter => 9,
                    _ => 12,
                };
                write!(f, " {mark:>width$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_with(policy: FreshnessKind, clock: ClockKind) -> World {
        let config = ProverConfig {
            freshness: policy,
            clock,
            ..ProverConfig::recommended()
        };
        World::new(config).unwrap()
    }

    #[test]
    fn forgery_detected_with_auth() {
        let mut w = world_with(FreshnessKind::Counter, ClockKind::None);
        let o = run_attack(&mut w, ExtAttack::Forge).unwrap();
        assert!(o.detected);
        // The check itself was cheap (Speck: sub-millisecond).
        assert!(o.prover_cycles_wasted < 24_000);
    }

    #[test]
    fn forgery_succeeds_without_auth() {
        let mut w = World::new(ProverConfig::unprotected()).unwrap();
        let o = run_attack(&mut w, ExtAttack::Forge).unwrap();
        assert!(
            !o.detected,
            "unauthenticated prover answers forged requests"
        );
        // And it cost the full memory MAC — the §3.1 DoS.
        assert!(o.prover_cycles_wasted > 10_000_000);
    }

    #[test]
    fn table2_matrix_matches_paper() {
        let m = MitigationMatrix::generate().unwrap();
        let replay = ExtAttack::Replay;
        let reorder = ExtAttack::Reorder;
        let delay = ExtAttack::Delay { delay_ms: 0 };

        // Row 1: replay — everyone detects it.
        assert_eq!(
            m.mitigated(FreshnessKind::NonceHistory, &replay),
            Some(true)
        );
        assert_eq!(m.mitigated(FreshnessKind::Counter, &replay), Some(true));
        assert_eq!(m.mitigated(FreshnessKind::Timestamp, &replay), Some(true));
        // Row 2: reorder — nonces miss it.
        assert_eq!(
            m.mitigated(FreshnessKind::NonceHistory, &reorder),
            Some(false)
        );
        assert_eq!(m.mitigated(FreshnessKind::Counter, &reorder), Some(true));
        assert_eq!(m.mitigated(FreshnessKind::Timestamp, &reorder), Some(true));
        // Row 3: delay — only timestamps catch it.
        assert_eq!(
            m.mitigated(FreshnessKind::NonceHistory, &delay),
            Some(false)
        );
        assert_eq!(m.mitigated(FreshnessKind::Counter, &delay), Some(false));
        assert_eq!(m.mitigated(FreshnessKind::Timestamp, &delay), Some(true));
    }

    #[test]
    fn matrix_display_renders() {
        let m = MitigationMatrix::generate().unwrap();
        let text = m.to_string();
        assert!(text.contains("Replay"));
        assert!(text.contains("Timestamps"));
    }

    #[test]
    fn short_delay_within_window_accepted() {
        let mut w = world_with(FreshnessKind::Timestamp, ClockKind::Hw64);
        let o = run_attack(&mut w, ExtAttack::Delay { delay_ms: 100 }).unwrap();
        assert!(
            !o.detected,
            "a delivery inside the window is indistinguishable"
        );
    }
}
