//! The Dolev-Yao channel between verifier and prover.
//!
//! `Adv_ext` "can drop, insert and delay messages" (§3.2). The channel
//! records every message that transits it — the adversary's tape — and
//! lets scenarios deliver them in any order, any number of times, at any
//! time.

use proverguard_attest::error::AttestError;
use proverguard_attest::message::AttestRequest;

/// A recorded in-flight request with the verifier-side send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRequest {
    /// The message bytes as observed on the wire (re-parsed on delivery).
    pub bytes: Vec<u8>,
    /// Verifier clock when the message was sent, in ms.
    pub sent_at_ms: u64,
}

impl RecordedRequest {
    /// Re-materializes the request (what the prover will parse).
    ///
    /// # Errors
    ///
    /// [`AttestError::MalformedMessage`] when the recorded bytes do not
    /// parse — which is a *normal* state now that the channel can inject
    /// raw bytes and tamper with recorded ones, not a programming error.
    pub fn request(&self) -> Result<AttestRequest, AttestError> {
        AttestRequest::from_bytes(&self.bytes)
    }
}

/// The adversary-controlled channel.
#[derive(Debug, Clone, Default)]
pub struct Channel {
    tape: Vec<RecordedRequest>,
}

impl Channel {
    /// An empty channel.
    #[must_use]
    pub fn new() -> Self {
        Channel::default()
    }

    /// The verifier sends `request`; the adversary records it and decides
    /// later what to do. Returns the tape index.
    pub fn send(&mut self, request: &AttestRequest, sent_at_ms: u64) -> usize {
        self.tape.push(RecordedRequest {
            bytes: request.to_bytes(),
            sent_at_ms,
        });
        self.tape.len() - 1
    }

    /// The recorded tape.
    #[must_use]
    pub fn tape(&self) -> &[RecordedRequest] {
        &self.tape
    }

    /// Fetches tape entry `index`.
    #[must_use]
    pub fn recorded(&self, index: usize) -> Option<&RecordedRequest> {
        self.tape.get(index)
    }

    /// Injects arbitrary bytes onto the tape — the adversary forging or
    /// fuzzing at the wire level rather than replaying an observed
    /// message. Returns the tape index.
    pub fn inject_raw(&mut self, bytes: &[u8], sent_at_ms: u64) -> usize {
        self.tape.push(RecordedRequest {
            bytes: bytes.to_vec(),
            sent_at_ms,
        });
        self.tape.len() - 1
    }

    /// Mutates the recorded bytes of tape entry `index` in place
    /// (truncation, bit-flips, …). Returns `false` when the index is out
    /// of range.
    pub fn tamper(&mut self, index: usize, f: impl FnOnce(&mut Vec<u8>)) -> bool {
        match self.tape.get_mut(index) {
            Some(entry) => {
                f(&mut entry.bytes);
                true
            }
            None => false,
        }
    }

    /// Number of messages observed.
    #[must_use]
    pub fn observed(&self) -> usize {
        self.tape.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_attest::message::{AttestScope, FreshnessField};

    fn request(counter: u64) -> AttestRequest {
        AttestRequest {
            scope: AttestScope::Whole,
            freshness: FreshnessField::Counter(counter),
            challenge: [1; 16],
            auth: vec![0xaa; 8],
        }
    }

    #[test]
    fn tape_records_in_order() {
        let mut ch = Channel::new();
        let i0 = ch.send(&request(1), 100);
        let i1 = ch.send(&request(2), 200);
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(ch.observed(), 2);
        assert_eq!(ch.recorded(0).unwrap().sent_at_ms, 100);
        assert_eq!(ch.recorded(1).unwrap().request().unwrap(), request(2));
        assert!(ch.recorded(2).is_none());
    }

    #[test]
    fn replay_rematerializes_identical_request() {
        let mut ch = Channel::new();
        let original = request(7);
        ch.send(&original, 0);
        // Deliver twice — byte-identical both times.
        assert_eq!(ch.recorded(0).unwrap().request().unwrap(), original);
        assert_eq!(ch.recorded(0).unwrap().request().unwrap(), original);
    }

    #[test]
    fn injected_garbage_surfaces_as_parse_error_not_panic() {
        let mut ch = Channel::new();
        let idx = ch.inject_raw(&[0xde, 0xad, 0xbe, 0xef], 50);
        let entry = ch.recorded(idx).unwrap();
        assert_eq!(entry.sent_at_ms, 50);
        assert!(entry.request().is_err());
    }

    #[test]
    fn tampered_recording_no_longer_parses() {
        let mut ch = Channel::new();
        ch.send(&request(1), 0);
        assert!(ch.tamper(0, |bytes| bytes.truncate(3)));
        assert!(ch.recorded(0).unwrap().request().is_err());
        assert!(!ch.tamper(9, |_| unreachable!("index out of range")));
    }
}
