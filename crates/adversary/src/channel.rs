//! The Dolev-Yao channel between verifier and prover.
//!
//! `Adv_ext` "can drop, insert and delay messages" (§3.2). The channel
//! records every message that transits it — the adversary's tape — and
//! lets scenarios deliver them in any order, any number of times, at any
//! time.

use proverguard_attest::message::AttestRequest;

/// A recorded in-flight request with the verifier-side send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRequest {
    /// The message bytes as observed on the wire (re-parsed on delivery).
    pub bytes: Vec<u8>,
    /// Verifier clock when the message was sent, in ms.
    pub sent_at_ms: u64,
}

impl RecordedRequest {
    /// Re-materializes the request (what the prover will parse).
    ///
    /// # Panics
    ///
    /// Panics if the recorded bytes no longer parse — impossible for
    /// bytes produced by [`Channel::send`].
    #[must_use]
    pub fn request(&self) -> AttestRequest {
        AttestRequest::from_bytes(&self.bytes).expect("recorded bytes parse")
    }
}

/// The adversary-controlled channel.
#[derive(Debug, Clone, Default)]
pub struct Channel {
    tape: Vec<RecordedRequest>,
}

impl Channel {
    /// An empty channel.
    #[must_use]
    pub fn new() -> Self {
        Channel::default()
    }

    /// The verifier sends `request`; the adversary records it and decides
    /// later what to do. Returns the tape index.
    pub fn send(&mut self, request: &AttestRequest, sent_at_ms: u64) -> usize {
        self.tape.push(RecordedRequest {
            bytes: request.to_bytes(),
            sent_at_ms,
        });
        self.tape.len() - 1
    }

    /// The recorded tape.
    #[must_use]
    pub fn tape(&self) -> &[RecordedRequest] {
        &self.tape
    }

    /// Fetches tape entry `index`.
    #[must_use]
    pub fn recorded(&self, index: usize) -> Option<&RecordedRequest> {
        self.tape.get(index)
    }

    /// Number of messages observed.
    #[must_use]
    pub fn observed(&self) -> usize {
        self.tape.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_attest::message::FreshnessField;

    fn request(counter: u64) -> AttestRequest {
        AttestRequest {
            freshness: FreshnessField::Counter(counter),
            challenge: [1; 16],
            auth: vec![0xaa; 8],
        }
    }

    #[test]
    fn tape_records_in_order() {
        let mut ch = Channel::new();
        let i0 = ch.send(&request(1), 100);
        let i1 = ch.send(&request(2), 200);
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(ch.observed(), 2);
        assert_eq!(ch.recorded(0).unwrap().sent_at_ms, 100);
        assert_eq!(ch.recorded(1).unwrap().request(), request(2));
        assert!(ch.recorded(2).is_none());
    }

    #[test]
    fn replay_rematerializes_identical_request() {
        let mut ch = Channel::new();
        let original = request(7);
        ch.send(&original, 0);
        // Deliver twice — byte-identical both times.
        assert_eq!(ch.recorded(0).unwrap().request(), original);
        assert_eq!(ch.recorded(0).unwrap().request(), original);
    }
}
