//! Primary-task interference (§3.1).
//!
//! "Gratuitous (malicious) invocation of attestation can be detrimental to
//! the execution of prover's main (even critical) functions" — and current
//! low-end attestation runs uninterruptible, so every accepted bogus
//! request blocks the control/sensing/actuation task for the full memory
//! MAC. This module quantifies that: a periodic hard-real-time task (think
//! a 10 Hz control loop) shares the CPU with attestation handling, and we
//! count missed deadlines under a forgery flood for each defence level.
//!
//! The model: requests arrive evenly spaced; each occupies the CPU
//! *non-preemptively* for its handling cost (the §3.1 assumption); a task
//! period whose idle time falls below the task's execution budget misses
//! its deadline.

use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_attest::prover::ProverConfig;
use proverguard_mcu::cycles::cycles_to_ms;

use crate::world::World;
use proverguard_attest::error::AttestError;

/// A periodic hard-real-time task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicTask {
    /// Period (= deadline) in milliseconds.
    pub period_ms: f64,
    /// Worst-case execution time needed each period, in milliseconds.
    pub wcet_ms: f64,
}

impl PeriodicTask {
    /// A 10 Hz control loop needing 10 ms per iteration.
    #[must_use]
    pub fn control_loop_10hz() -> Self {
        PeriodicTask {
            period_ms: 100.0,
            wcet_ms: 10.0,
        }
    }
}

/// Result of an interference run.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceReport {
    /// Configuration label.
    pub label: String,
    /// Task periods simulated.
    pub periods: u64,
    /// Periods whose deadline was missed.
    pub missed: u64,
    /// Mean attestation-handling milliseconds per forgery.
    pub ms_per_forgery: f64,
}

impl InterferenceReport {
    /// Missed-deadline ratio in `[0, 1]`.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.periods == 0 {
            0.0
        } else {
            self.missed as f64 / self.periods as f64
        }
    }
}

/// Simulates `duration_s` seconds of a forgery flood at `rate_per_s`
/// against `config`, with `task` running on the same CPU.
///
/// # Errors
///
/// [`AttestError`] if provisioning fails.
///
/// # Panics
///
/// Panics if `rate_per_s` is zero (use no flood = no interference).
pub fn interference_under_flood(
    config: ProverConfig,
    label: &str,
    task: PeriodicTask,
    rate_per_s: u64,
    duration_s: u64,
) -> Result<InterferenceReport, AttestError> {
    assert!(rate_per_s > 0, "flood rate must be positive");
    let mut world = World::new(config)?;
    world.advance_ms(1000)?;

    // Measure the per-forgery handling cost once (it is constant per
    // configuration), then lay out the busy intervals analytically.
    let bogus = AttestRequest {
        scope: AttestScope::Whole,
        freshness: match world.prover.config().freshness {
            proverguard_attest::freshness::FreshnessKind::Counter => FreshnessField::Counter(1),
            proverguard_attest::freshness::FreshnessKind::Timestamp => {
                FreshnessField::Timestamp(world.verifier.now_ms())
            }
            proverguard_attest::freshness::FreshnessKind::NonceHistory => {
                FreshnessField::Nonce([0xbb; 16])
            }
            proverguard_attest::freshness::FreshnessKind::None => FreshnessField::None,
        },
        challenge: [0xbb; 16],
        auth: vec![0u8; 8],
    };
    let _ = world.prover.handle_request(&bogus);
    let cost_ms = cycles_to_ms(world.prover.last_cost().total());

    let horizon_ms = (duration_s * 1000) as f64;
    let spacing_ms = 1000.0 / rate_per_s as f64;

    // Non-preemptive FIFO service of the arrival stream.
    let mut busy: Vec<(f64, f64)> = Vec::new(); // (start, end)
    let mut server_free_at = 0.0f64;
    let mut t = 0.0f64;
    while t < horizon_ms {
        let start = t.max(server_free_at);
        let end = start + cost_ms;
        busy.push((start, end));
        server_free_at = end;
        t += spacing_ms;
    }

    // Count deadline misses per task period.
    let periods = (horizon_ms / task.period_ms) as u64;
    let mut missed = 0;
    let mut busy_idx = 0;
    for k in 0..periods {
        let window_start = k as f64 * task.period_ms;
        let window_end = window_start + task.period_ms;
        // Advance past intervals that ended before this window.
        while busy_idx < busy.len() && busy[busy_idx].1 <= window_start {
            busy_idx += 1;
        }
        let mut occupied = 0.0;
        let mut i = busy_idx;
        while i < busy.len() && busy[i].0 < window_end {
            let overlap = busy[i].1.min(window_end) - busy[i].0.max(window_start);
            if overlap > 0.0 {
                occupied += overlap;
            }
            i += 1;
        }
        if task.period_ms - occupied < task.wcet_ms {
            missed += 1;
        }
    }

    Ok(InterferenceReport {
        label: label.to_string(),
        periods,
        missed,
        ms_per_forgery: cost_ms,
    })
}

/// The standard §3.1 comparison: unprotected vs Speck-gated vs ECDSA-gated
/// provers under the same flood.
///
/// # Errors
///
/// [`AttestError`] if any provisioning fails.
pub fn standard_interference(
    task: PeriodicTask,
    rate_per_s: u64,
    duration_s: u64,
) -> Result<Vec<InterferenceReport>, AttestError> {
    use proverguard_attest::auth::AuthMethod;

    let mut out = Vec::new();
    out.push(interference_under_flood(
        ProverConfig::unprotected(),
        "unprotected",
        task,
        rate_per_s,
        duration_s,
    )?);
    out.push(interference_under_flood(
        ProverConfig::recommended(),
        "Speck-gated",
        task,
        rate_per_s,
        duration_s,
    )?);
    let ecdsa = ProverConfig {
        auth: AuthMethod::Ecdsa,
        ..ProverConfig::recommended()
    };
    out.push(interference_under_flood(
        ecdsa,
        "ECDSA-gated",
        task,
        rate_per_s,
        duration_s,
    )?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_prover_misses_everything_under_modest_flood() {
        // 2 forgeries/s x 754 ms each = CPU saturated.
        let r = interference_under_flood(
            ProverConfig::unprotected(),
            "open",
            PeriodicTask::control_loop_10hz(),
            2,
            10,
        )
        .unwrap();
        assert!(r.miss_ratio() > 0.9, "miss ratio {}", r.miss_ratio());
    }

    #[test]
    fn gated_prover_misses_nothing() {
        let r = interference_under_flood(
            ProverConfig::recommended(),
            "speck",
            PeriodicTask::control_loop_10hz(),
            100, // even a heavy flood
            10,
        )
        .unwrap();
        assert_eq!(r.missed, 0, "{r:?}");
    }

    #[test]
    fn ecdsa_gate_still_hurts_at_scale() {
        use proverguard_attest::auth::AuthMethod;
        let ecdsa = ProverConfig {
            auth: AuthMethod::Ecdsa,
            ..ProverConfig::recommended()
        };
        // 5/s x 170.9 ms = 85% utilisation from forgeries alone.
        let r = interference_under_flood(ecdsa, "ecdsa", PeriodicTask::control_loop_10hz(), 5, 10)
            .unwrap();
        assert!(r.miss_ratio() > 0.3, "miss ratio {}", r.miss_ratio());
    }

    #[test]
    fn ordering_matches_the_paper() {
        let reports = standard_interference(PeriodicTask::control_loop_10hz(), 5, 10).unwrap();
        let ratio = |label: &str| {
            reports
                .iter()
                .find(|r| r.label.contains(label))
                .expect("present")
                .miss_ratio()
        };
        assert!(ratio("unprotected") >= ratio("ECDSA-gated"));
        assert!(ratio("ECDSA-gated") > ratio("Speck-gated"));
        assert_eq!(ratio("Speck-gated"), 0.0);
    }

    #[test]
    fn zero_flood_duration_yields_empty_report() {
        let r = interference_under_flood(
            ProverConfig::recommended(),
            "x",
            PeriodicTask::control_loop_10hz(),
            1,
            0,
        )
        .unwrap();
        assert_eq!(r.periods, 0);
        assert_eq!(r.miss_ratio(), 0.0);
    }
}
