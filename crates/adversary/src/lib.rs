//! Adversaries against the prover (§3.2), and the experiment scenarios
//! that reproduce the paper's security analysis.
//!
//! - [`world`] — a verifier + prover pair with a shared notion of wall
//!   time, the substrate every scenario runs on.
//! - [`channel`] — a Dolev-Yao network: the adversary observes, drops,
//!   delays, reorders, replays and injects messages.
//! - [`ext`] — the external adversary `Adv_ext`: verifier impersonation
//!   (forgery), replay, reorder and delay attacks. Running all attacks
//!   against all freshness policies regenerates **Table 2**.
//! - [`roam`] — the roaming adversary `Adv_roam`: eavesdrop (Phase I),
//!   compromise-and-leave (Phase II: counter rollback, clock reset, key
//!   extraction, IDT hijack, timer kill), replay (Phase III) — §5's
//!   attacks, which succeed against the open device and fail against the
//!   EA-MAC profiles of §6.
//! - [`dos`] — denial-of-service economics: cycles, milliseconds and
//!   battery energy an attacker drains per bogus request (§3.1), and the
//!   "ECDSA-authentication-as-DoS" paradox (§4.1).
//! - [`fault`] — deterministic fault injection: seeded drop / duplicate /
//!   delay / truncate / bit-flip faults plus prover reboots and clock
//!   glitches, wired into the verifier's retry/backoff
//!   [`SessionDriver`](proverguard_attest::session::SessionDriver).
//! - [`campaign`] — a lightweight simulated fleet answering OTA-campaign
//!   actions ([`proverguard_attest::campaign`]) under seeded torn-flash /
//!   offline / compromised fault schedules, with an oracle view of each
//!   device's actual flash contents.
//! - [`soak`] — the chaos soak: a simulated fleet of provers under
//!   combined fault + flood pressure, scheduled by the verifier-side
//!   [`FleetController`](proverguard_attest::fleet::FleetController),
//!   graded against deterministic liveness invariants.
//! - [`scale`] — fleet-scale honest load: wire-honest [`SimDevice`]s
//!   (one HMAC per response, no MCU simulation) driven by an event-driven
//!   client loop, for measuring the verifier gateway's concurrency
//!   ceiling at tens of thousands of sessions.
//! - [`toctou`] — the transient-malware adversary: infect a segment of
//!   the application image, act, restore the original bytes between
//!   rounds. Defeats `Whole` and `Segmented` sweeps (content is pristine
//!   at check time), caught by `History` rounds via the per-segment
//!   last-write epoch log.
//!
//! # Example
//!
//! ```
//! use proverguard_adversary::ext::{run_attack, ExtAttack};
//! use proverguard_adversary::world::World;
//! use proverguard_attest::prover::ProverConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut world = World::new(ProverConfig::recommended())?;
//! let outcome = run_attack(&mut world, ExtAttack::Replay)?;
//! assert!(outcome.detected, "counter policy must detect replay");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod channel;
pub mod dos;
pub mod ext;
pub mod fault;
pub mod report;
pub mod roam;
pub mod scale;
pub mod soak;
pub mod toctou;
pub mod wire;
pub mod workload;
pub mod world;

pub use ext::{ExtAttack, MitigationMatrix};
pub use fault::{FaultConfig, FaultEvent, FaultInjector, FaultKind, FaultyLink};
pub use report::SuiteReport;
pub use roam::{RoamAttack, RoamOutcome};
pub use scale::{drive_oneshot_wave, SimDevice, WaveReport};
pub use soak::{run_soak, DeviceRole, DeviceSummary, SoakConfig, SoakReport};
pub use toctou::{immutable_segments, toctou_alarm, TransientMalware};
pub use wire::{forgery_flood, junk_frame_flood, raw_garbage_flood, FaultyTransport, FloodStats};
pub use world::World;
