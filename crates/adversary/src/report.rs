//! One-call reproduction: run the paper's full security evaluation and
//! get a structured report.
//!
//! [`SuiteReport::run_all`] executes the Table 2 matrix, the §5 roaming
//! attacks against both protection levels, and the DoS flood comparison,
//! and [`SuiteReport::claims_hold`] checks every claim the paper makes
//! about them. This is the API equivalent of running all the
//! `proverguard-bench` binaries.

use proverguard_attest::clock::ClockKind;
use proverguard_attest::error::AttestError;
use proverguard_attest::freshness::FreshnessKind;
use proverguard_attest::profile::Protection;
use proverguard_attest::prover::ProverConfig;

use crate::dos::{standard_comparison, FloodReport};
use crate::ext::{ExtAttack, MitigationMatrix};
use crate::roam::{run_roam_attack, RoamAttack, RoamOutcome};
use crate::world::World;

/// One §5 scenario result at both protection levels.
#[derive(Debug, Clone)]
pub struct RoamComparison {
    /// Scenario label.
    pub label: String,
    /// Outcome on the open (unprotected) device.
    pub open: RoamOutcome,
    /// Outcome on the EA-MAC device.
    pub protected: RoamOutcome,
}

impl RoamComparison {
    /// The paper's claim for this scenario: the attack works on the open
    /// device and is fully blocked by EA-MAC.
    #[must_use]
    pub fn claim_holds(&self) -> bool {
        self.open.replay_accepted
            && self.open.tampering.iter().all(|t| t.succeeded)
            && self.protected.fully_blocked()
            && !self.protected.replay_accepted
    }
}

/// The full evaluation in one structure.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// The Table 2 mitigation matrix.
    pub matrix: MitigationMatrix,
    /// The §5 roaming-attack comparisons.
    pub roam: Vec<RoamComparison>,
    /// The DoS flood comparison (§3.1/§4.1).
    pub floods: Vec<FloodReport>,
}

impl SuiteReport {
    /// Runs everything. `flood_size` bogus requests are used for the DoS
    /// comparison (20 is plenty; larger values only slow the host down).
    ///
    /// # Errors
    ///
    /// [`AttestError`] if any scenario hits an unexpected device fault.
    pub fn run_all(flood_size: u64) -> Result<Self, AttestError> {
        let matrix = MitigationMatrix::generate()?;

        let scenarios: [(&str, RoamAttack, FreshnessKind, ClockKind); 5] = [
            (
                "counter rollback",
                RoamAttack::CounterRollback,
                FreshnessKind::Counter,
                ClockKind::None,
            ),
            (
                "clock reset (HW64)",
                RoamAttack::ClockReset,
                FreshnessKind::Timestamp,
                ClockKind::Hw64,
            ),
            (
                "clock reset (SW)",
                RoamAttack::ClockReset,
                FreshnessKind::Timestamp,
                ClockKind::Software,
            ),
            (
                "IDT hijack",
                RoamAttack::IdtHijack,
                FreshnessKind::Timestamp,
                ClockKind::Software,
            ),
            (
                "key extraction",
                RoamAttack::KeyExtraction,
                FreshnessKind::Counter,
                ClockKind::None,
            ),
        ];
        let mut roam = Vec::new();
        for (label, attack, freshness, clock) in scenarios {
            let run = |protection| -> Result<RoamOutcome, AttestError> {
                let config = ProverConfig {
                    freshness,
                    clock,
                    protection,
                    ..ProverConfig::recommended()
                };
                run_roam_attack(&mut World::new(config)?, attack, 5000)
            };
            roam.push(RoamComparison {
                label: label.to_string(),
                open: run(Protection::Open)?,
                protected: run(Protection::EaMac)?,
            });
        }

        let floods = standard_comparison(flood_size)?;
        Ok(SuiteReport {
            matrix,
            roam,
            floods,
        })
    }

    /// `true` iff every claim of the paper's evaluation holds in this run.
    #[must_use]
    pub fn claims_hold(&self) -> bool {
        self.table2_holds() && self.roam.iter().all(RoamComparison::claim_holds) && self.dos_holds()
    }

    /// The Table 2 checkmark pattern.
    #[must_use]
    pub fn table2_holds(&self) -> bool {
        let m = &self.matrix;
        let expect = |p, a: &ExtAttack, v| m.mitigated(p, a) == Some(v);
        let delay = ExtAttack::Delay { delay_ms: 0 };
        expect(FreshnessKind::NonceHistory, &ExtAttack::Replay, true)
            && expect(FreshnessKind::NonceHistory, &ExtAttack::Reorder, false)
            && expect(FreshnessKind::NonceHistory, &delay, false)
            && expect(FreshnessKind::Counter, &ExtAttack::Replay, true)
            && expect(FreshnessKind::Counter, &ExtAttack::Reorder, true)
            && expect(FreshnessKind::Counter, &delay, false)
            && expect(FreshnessKind::Timestamp, &ExtAttack::Replay, true)
            && expect(FreshnessKind::Timestamp, &ExtAttack::Reorder, true)
            && expect(FreshnessKind::Timestamp, &delay, true)
    }

    /// §3.1/§4.1: the unprotected prover is the most expensive per
    /// forgery; symmetric MACs are orders of magnitude cheaper; ECDSA sits
    /// in between (the paradox).
    #[must_use]
    pub fn dos_holds(&self) -> bool {
        let cost = |needle: &str| {
            self.floods
                .iter()
                .find(|r| r.label.contains(needle))
                .map(FloodReport::ms_per_request)
        };
        match (cost("unprotected"), cost("Speck"), cost("ECDSA")) {
            (Some(open), Some(speck), Some(ecdsa)) => open > ecdsa && ecdsa > 1000.0 * speck,
            _ => false,
        }
    }
}

impl std::fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== Table 2 (simulated) ==")?;
        writeln!(f, "{}", self.matrix)?;
        writeln!(f, "== §5 roaming adversary ==")?;
        for c in &self.roam {
            writeln!(
                f,
                "{:<22} open: {:<9} EA-MAC: {:<9} claim holds: {}",
                c.label,
                if c.open.replay_accepted {
                    "DoS!"
                } else {
                    "rejected"
                },
                if c.protected.replay_accepted {
                    "DoS!"
                } else {
                    "rejected"
                },
                c.claim_holds()
            )?;
        }
        writeln!(f, "\n== §3.1/§4.1 DoS economics ==")?;
        for r in &self.floods {
            writeln!(
                f,
                "{:<32} answered {:>3}/{:<3}  {:>9.3} ms/forgery",
                r.label,
                r.answered,
                r.requests,
                r.ms_per_request()
            )?;
        }
        writeln!(f, "\nall paper claims hold: {}", self.claims_hold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_reproduces_every_claim() {
        let report = SuiteReport::run_all(3).expect("suite runs");
        assert!(report.table2_holds(), "table 2 pattern");
        for c in &report.roam {
            assert!(c.claim_holds(), "roam scenario {}", c.label);
        }
        assert!(report.dos_holds(), "dos ordering");
        assert!(report.claims_hold());
    }

    #[test]
    fn display_renders_all_sections() {
        let report = SuiteReport::run_all(2).expect("suite runs");
        let text = report.to_string();
        assert!(text.contains("Table 2"));
        assert!(text.contains("roaming adversary"));
        assert!(text.contains("DoS economics"));
        assert!(text.contains("all paper claims hold: true"));
    }
}
