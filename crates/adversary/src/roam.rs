//! The roaming adversary `Adv_roam` (§3.2, §5).
//!
//! `Adv_roam` operates in three phases:
//!
//! 1. **Phase I** — eavesdrop on genuine `Vrf`→`Prv` attestation requests.
//! 2. **Phase II** — compromise the prover, change local state (roll the
//!    counter back, reset the clock, hijack the IDT, kill the timer,
//!    extract `K_Attest`), then erase all traces and leave.
//! 3. **Phase III** — after waiting an arbitrary time, replay the recorded
//!    request (or forge a new one with the stolen key).
//!
//! Phase II malware runs as ordinary software — program counter inside the
//! application ([`map::APP_CODE`]) — so each tampering primitive goes
//! through the device bus and is either permitted (the `Open` baseline:
//! the attack of §5 succeeds, undetectably for counters) or denied by the
//! EA-MAC rules of §6.

use proverguard_attest::auth::RequestSigner;
use proverguard_attest::clock::{ms_to_ticks, ClockKind};
use proverguard_attest::error::AttestError;
use proverguard_attest::freshness::FreshnessKind;
use proverguard_attest::message::{AttestRequest, AttestScope, FreshnessField};
use proverguard_mcu::device::{timer_regs, DEFAULT_TIMER_PRESCALER_LOG2, DEFAULT_TIMER_WIDTH};
use proverguard_mcu::map;
use proverguard_mcu::Mcu;

use crate::channel::Channel;
use crate::world::World;

/// The `Adv_roam` attack variants of §5 / Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoamAttack {
    /// §5 "Adv_roam and Counters": roll `counter_R` back from `i` to
    /// `i-1`, leave, replay `attreq(i)`.
    CounterRollback,
    /// §5 "Adv_roam and Timestamps": set the prover clock back by δ,
    /// leave, wait δ, replay `attreq(t_i)`.
    ClockReset,
    /// Figure 1b surface: redirect the timer-wrap IDT entry so
    /// `Code_Clock` never runs and the SW-clock silently stops.
    IdtHijack,
    /// Figure 1b surface: disable the timer via its control register.
    TimerKill,
    /// Phase II information gathering: read `K_Attest` and use it to
    /// forge fresh authenticated requests.
    KeyExtraction,
}

impl std::fmt::Display for RoamAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoamAttack::CounterRollback => write!(f, "counter rollback"),
            RoamAttack::ClockReset => write!(f, "clock reset"),
            RoamAttack::IdtHijack => write!(f, "IDT hijack"),
            RoamAttack::TimerKill => write!(f, "timer kill"),
            RoamAttack::KeyExtraction => write!(f, "key extraction"),
        }
    }
}

/// One Phase II tampering action and whether the device allowed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperAttempt {
    /// What was attempted.
    pub action: String,
    /// `true` iff the bus access succeeded (no EA-MPU rule stopped it).
    pub succeeded: bool,
}

/// Result of a full three-phase run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoamOutcome {
    /// Phase II tampering attempts, in order.
    pub tampering: Vec<TamperAttempt>,
    /// Phase III: did the prover accept the malicious request (= DoS
    /// succeeded)?
    pub replay_accepted: bool,
    /// How far the prover's clock lags the true (verifier) time after the
    /// attack, in ms — §5's observation that a clock reset "leaves some
    /// evidence", unlike the trace-free counter rollback.
    pub clock_lag_ms: Option<u64>,
}

impl RoamOutcome {
    /// `true` iff every Phase II tamper attempt was blocked.
    #[must_use]
    pub fn fully_blocked(&self) -> bool {
        self.tampering.iter().all(|t| !t.succeeded)
    }
}

// ---- Phase II tampering primitives (all executed as APP_CODE) ------------

fn tamper_write(mcu: &mut Mcu, action: &str, addr: u32, data: &[u8]) -> TamperAttempt {
    TamperAttempt {
        action: action.to_string(),
        succeeded: mcu.bus_write(addr, data, map::APP_CODE).is_ok(),
    }
}

/// Rolls the protected `counter_R` word back to `value`.
pub fn rollback_counter(mcu: &mut Mcu, value: u64) -> TamperAttempt {
    tamper_write(
        mcu,
        "rollback counter_R",
        map::COUNTER_R.start,
        &value.to_le_bytes(),
    )
}

/// Resets the prover clock to read `target_ms`.
pub fn reset_clock(mcu: &mut Mcu, clock: ClockKind, target_ms: u64) -> TamperAttempt {
    match clock {
        ClockKind::None => TamperAttempt {
            action: "reset clock (none installed)".to_string(),
            succeeded: false,
        },
        ClockKind::Hw64 | ClockKind::Hw32Div => {
            let prescaler = mcu.rtc().map_or(0, |r| r.prescaler_log2());
            let ticks = ms_to_ticks(target_ms, prescaler);
            tamper_write(
                mcu,
                "reset hardware RTC",
                map::MMIO_RTC.start,
                &ticks.to_le_bytes(),
            )
        }
        ClockKind::Software => {
            let msb = ms_to_ticks(target_ms, DEFAULT_TIMER_PRESCALER_LOG2) >> DEFAULT_TIMER_WIDTH;
            tamper_write(
                mcu,
                "rewrite Clock_MSB",
                map::CLOCK_MSB.start,
                &msb.to_le_bytes(),
            )
        }
    }
}

/// Redirects the timer-wrap vector at malware.
pub fn hijack_idt(mcu: &mut Mcu) -> TamperAttempt {
    tamper_write(
        mcu,
        "hijack IDT vector 0",
        map::IDT.start,
        &map::APP_CODE.to_le_bytes(),
    )
}

/// Disables the `Clock_LSB` timer (and with it the SW-clock).
pub fn kill_timer(mcu: &mut Mcu) -> TamperAttempt {
    tamper_write(
        mcu,
        "disable timer via control register",
        map::MMIO_TIMER.start + timer_regs::CONTROL,
        &[0u8],
    )
}

/// Attempts to read `K_Attest` as application code.
pub fn extract_key(mcu: &mut Mcu) -> (TamperAttempt, Option<[u8; 16]>) {
    match mcu.read_attest_key(map::APP_CODE) {
        Ok(key) => (
            TamperAttempt {
                action: "read K_Attest".to_string(),
                succeeded: true,
            },
            Some(key),
        ),
        Err(_) => (
            TamperAttempt {
                action: "read K_Attest".to_string(),
                succeeded: false,
            },
            None,
        ),
    }
}

// ---- The three-phase scenario ---------------------------------------------

/// Runs the full three-phase `Adv_roam` scenario for `attack`, with a
/// Phase III wait of `wait_ms`.
///
/// # Errors
///
/// [`AttestError`] on unexpected device faults (tampering denials are
/// recorded in the outcome, not raised).
pub fn run_roam_attack(
    world: &mut World,
    attack: RoamAttack,
    wait_ms: u64,
) -> Result<RoamOutcome, AttestError> {
    // Let real time accumulate so Phase II can set the clock *back*.
    world.advance_ms(wait_ms + 1000)?;

    // ---- Phase I: eavesdrop on a genuine request.
    //
    // For the counter/clock-rollback attacks the request is delivered (the
    // paper's §5 narrative: the prover processes attreq(i), then Phase II
    // rolls the state back). For the clock-*freeze* attacks (IDT hijack,
    // timer kill) the adversary instead exercises its Dolev-Yao power to
    // DROP the message: delivering it would let the genuine attestation's
    // ~754 ms of compute push the clock past the acceptance window before
    // the freeze, spoiling the replay. Freezing at the recorded timestamp
    // is strictly better for the adversary.
    let deliver_genuine = !matches!(attack, RoamAttack::IdtHijack | RoamAttack::TimerKill);
    let mut channel = Channel::new();
    let genuine = world.verifier.make_request()?;
    channel.send(&genuine, world.verifier.now_ms());
    if deliver_genuine {
        world
            .prover
            .handle_request(&genuine)
            .expect("genuine request must be accepted");
    }

    // ---- Phase II: compromise, tamper, erase traces, leave.
    // The malware controls the CPU, so any timer wraps still pending from
    // the genuine attestation's ~754 ms of compute are serviced before it
    // tampers — otherwise they would be applied *after* a Clock_MSB reset
    // and silently skew the attack by the attestation's duration.
    world.prover.advance_time_ms(0)?;
    let recorded = channel.recorded(0).expect("recorded").request()?;
    let clock_kind = world.prover.config().clock;
    let mut tampering = Vec::new();
    match attack {
        RoamAttack::CounterRollback => {
            if let FreshnessField::Counter(i) = recorded.freshness {
                tampering.push(rollback_counter(world.prover.mcu_mut(), i - 1));
            }
        }
        RoamAttack::ClockReset => {
            if let FreshnessField::Timestamp(t) = recorded.freshness {
                // Roll the last-accepted word back below t…
                tampering.push(rollback_counter(world.prover.mcu_mut(), t - 1));
                // …and set the clock to t - δ so that after waiting δ the
                // prover believes it is t again.
                tampering.push(reset_clock(
                    world.prover.mcu_mut(),
                    clock_kind,
                    t.saturating_sub(wait_ms),
                ));
            }
        }
        RoamAttack::IdtHijack => {
            // The dropped request was never processed, so counter_R needs
            // no rollback — freezing the clock suffices.
            tampering.push(hijack_idt(world.prover.mcu_mut()));
        }
        RoamAttack::TimerKill => {
            tampering.push(kill_timer(world.prover.mcu_mut()));
        }
        RoamAttack::KeyExtraction => {
            let (attempt, _) = extract_key(world.prover.mcu_mut());
            tampering.push(attempt);
        }
    }

    // ---- Phase III: wait, then strike.
    world.advance_ms(wait_ms)?;
    let malicious = match attack {
        RoamAttack::KeyExtraction => forge_with_stolen_key(world, &recorded)?,
        _ => recorded,
    };
    let replay_accepted = world.prover.handle_request(&malicious).is_ok();

    // Residual evidence: does the prover's clock lag true time?
    let clock_lag_ms = world
        .prover
        .now_ms()?
        .map(|prover_now| world.verifier.now_ms().saturating_sub(prover_now));

    Ok(RoamOutcome {
        tampering,
        replay_accepted,
        clock_lag_ms,
    })
}

/// Phase III for key extraction: forge a *fresh* authenticated request
/// with whatever key Phase II obtained (garbage if the read was blocked).
fn forge_with_stolen_key(
    world: &mut World,
    recorded: &AttestRequest,
) -> Result<AttestRequest, AttestError> {
    let (_, stolen) = extract_key(world.prover.mcu_mut());
    let key = stolen.unwrap_or([0u8; 16]);
    let freshness = match (world.prover.config().freshness, recorded.freshness) {
        (FreshnessKind::Counter, FreshnessField::Counter(i)) => FreshnessField::Counter(i + 1),
        (FreshnessKind::Timestamp, _) => FreshnessField::Timestamp(world.verifier.now_ms()),
        (FreshnessKind::NonceHistory, _) => FreshnessField::Nonce([0xee; 16]),
        _ => FreshnessField::None,
    };
    let mut forged = AttestRequest {
        scope: AttestScope::Whole,
        freshness,
        challenge: [0xee; 16],
        auth: Vec::new(),
    };
    let signer = RequestSigner::new(world.prover.config().auth, &key)?;
    forged.auth = signer.sign(&forged.signed_bytes());
    Ok(forged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proverguard_attest::profile::Protection;
    use proverguard_attest::prover::ProverConfig;

    fn world(config: ProverConfig) -> World {
        World::new(config).unwrap()
    }

    fn open(mut config: ProverConfig) -> ProverConfig {
        config.protection = Protection::Open;
        config
    }

    #[test]
    fn counter_rollback_succeeds_on_open_device() {
        let mut w = world(open(ProverConfig::recommended()));
        let o = run_roam_attack(&mut w, RoamAttack::CounterRollback, 5000).unwrap();
        assert!(o.tampering[0].succeeded);
        assert!(o.replay_accepted, "§5: the replay is accepted as fresh");
        // And no clock evidence exists — the attack is undetectable.
        assert_eq!(o.clock_lag_ms, None);
    }

    #[test]
    fn counter_rollback_blocked_by_eamac() {
        let mut w = world(ProverConfig::recommended());
        let o = run_roam_attack(&mut w, RoamAttack::CounterRollback, 5000).unwrap();
        assert!(o.fully_blocked());
        assert!(!o.replay_accepted);
    }

    #[test]
    fn clock_reset_succeeds_on_open_device_but_leaves_evidence() {
        let mut w = world(open(ProverConfig::timestamp_hw64()));
        let o = run_roam_attack(&mut w, RoamAttack::ClockReset, 5000).unwrap();
        assert!(o.tampering.iter().all(|t| t.succeeded), "{:?}", o.tampering);
        assert!(o.replay_accepted);
        // §5: "the prover's clock remains behind" — by about δ.
        let lag = o.clock_lag_ms.unwrap();
        assert!(lag >= 4000, "expected ~5000 ms lag, got {lag}");
    }

    #[test]
    fn clock_reset_blocked_by_eamac() {
        let mut w = world(ProverConfig::timestamp_hw64());
        let o = run_roam_attack(&mut w, RoamAttack::ClockReset, 5000).unwrap();
        assert!(o.fully_blocked());
        assert!(!o.replay_accepted);
        assert_eq!(o.clock_lag_ms, Some(0));
    }

    #[test]
    fn sw_clock_reset_blocked_by_eamac() {
        let mut w = world(ProverConfig::timestamp_sw_clock());
        let o = run_roam_attack(&mut w, RoamAttack::ClockReset, 5000).unwrap();
        assert!(o.fully_blocked());
        assert!(!o.replay_accepted);
    }

    #[test]
    fn idt_hijack_stops_sw_clock_on_open_device() {
        let mut w = world(open(ProverConfig::timestamp_sw_clock()));
        let o = run_roam_attack(&mut w, RoamAttack::IdtHijack, 5000).unwrap();
        assert!(o.tampering.iter().all(|t| t.succeeded));
        assert!(
            o.replay_accepted,
            "frozen clock accepts the stale timestamp"
        );
        assert!(o.clock_lag_ms.unwrap() >= 4000);
    }

    #[test]
    fn idt_hijack_blocked_by_eamac() {
        let mut w = world(ProverConfig::timestamp_sw_clock());
        let o = run_roam_attack(&mut w, RoamAttack::IdtHijack, 5000).unwrap();
        assert!(o.fully_blocked());
        assert!(!o.replay_accepted);
        // The SW-clock kept running.
        assert!(o.clock_lag_ms.unwrap() < 100);
    }

    #[test]
    fn timer_kill_blocked_by_eamac() {
        let mut w = world(ProverConfig::timestamp_sw_clock());
        let o = run_roam_attack(&mut w, RoamAttack::TimerKill, 3000).unwrap();
        assert!(o.fully_blocked());
        assert!(!o.replay_accepted);
    }

    #[test]
    fn timer_kill_succeeds_on_open_device() {
        let mut w = world(open(ProverConfig::timestamp_sw_clock()));
        let o = run_roam_attack(&mut w, RoamAttack::TimerKill, 3000).unwrap();
        assert!(o.tampering.iter().all(|t| t.succeeded));
        assert!(o.replay_accepted);
    }

    #[test]
    fn key_extraction_lets_adversary_forge_on_open_device() {
        let mut w = world(open(ProverConfig::recommended()));
        let o = run_roam_attack(&mut w, RoamAttack::KeyExtraction, 1000).unwrap();
        assert!(o.tampering[0].succeeded, "key readable on open device");
        assert!(o.replay_accepted, "forged request with stolen key accepted");
    }

    #[test]
    fn key_extraction_blocked_by_eamac() {
        let mut w = world(ProverConfig::recommended());
        let o = run_roam_attack(&mut w, RoamAttack::KeyExtraction, 1000).unwrap();
        assert!(!o.tampering[0].succeeded);
        assert!(!o.replay_accepted, "garbage-key forgery rejected");
    }
}
