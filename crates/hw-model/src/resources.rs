//! The resource vector used throughout the hardware model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// FPGA resource usage: registers (flip-flops) and look-up tables.
///
/// These are the two columns of the paper's Table 3.
///
/// # Example
///
/// ```
/// use proverguard_hw::Resources;
///
/// let rule = Resources::new(116, 182);
/// let three_rules = rule * 3;
/// assert_eq!(three_rules, Resources::new(348, 546));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Resources {
    /// Flip-flop / register count.
    pub registers: u64,
    /// Look-up table count.
    pub luts: u64,
}

impl Resources {
    /// Zero resources.
    pub const ZERO: Resources = Resources {
        registers: 0,
        luts: 0,
    };

    /// Creates a resource vector.
    #[must_use]
    pub fn new(registers: u64, luts: u64) -> Self {
        Resources { registers, luts }
    }

    /// Relative size of `self` with respect to `baseline`, in percent,
    /// returned as `(register_pct, lut_pct)`.
    ///
    /// # Panics
    ///
    /// Panics if either baseline component is zero.
    #[must_use]
    pub fn percent_of(&self, baseline: &Resources) -> (f64, f64) {
        assert!(
            baseline.registers > 0 && baseline.luts > 0,
            "baseline must be non-zero"
        );
        (
            100.0 * self.registers as f64 / baseline.registers as f64,
            100.0 * self.luts as f64 / baseline.luts as f64,
        )
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources {
            registers: self.registers + rhs.registers,
            luts: self.luts + rhs.luts,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;

    fn mul(self, rhs: u64) -> Resources {
        Resources {
            registers: self.registers * rhs,
            luts: self.luts * rhs,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, Add::add)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} registers / {} LUTs", self.registers, self.luts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(100, 200);
        let b = Resources::new(16, 82);
        assert_eq!(a + b, Resources::new(116, 282));
        assert_eq!(a * 3, Resources::new(300, 600));
        let total: Resources = [a, b, Resources::ZERO].into_iter().sum();
        assert_eq!(total, Resources::new(116, 282));
    }

    #[test]
    fn percent_of_baseline() {
        let overhead = Resources::new(180, 246);
        let baseline = Resources::new(6038, 15142);
        let (r, l) = overhead.percent_of(&baseline);
        // The paper's §6.3: "2.98% and 1.62%".
        assert!((r - 2.98).abs() < 0.01, "register pct {r}");
        assert!((l - 1.62).abs() < 0.01, "lut pct {l}");
    }

    #[test]
    #[should_panic(expected = "baseline must be non-zero")]
    fn percent_of_zero_baseline_panics() {
        let _ = Resources::new(1, 1).percent_of(&Resources::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(Resources::new(64, 64).to_string(), "64 registers / 64 LUTs");
    }
}
