//! Whole-device design composition (the §6.3 overhead experiment).
//!
//! A [`Design`] is the Siskiyou Peak core plus an EA-MPU sized for the
//! protection rules the selected features demand, plus the feature
//! components themselves. [`Design::synthesize`] turns it into a
//! [`SynthesisReport`].
//!
//! [`SynthesisReport`]: crate::report::SynthesisReport

use crate::components::{
    AttestKey, Component, EaMpu, HardwareClock, ReplayCounter, SiskiyouPeak, SoftwareClock,
};
use crate::report::{ComponentCost, SynthesisReport};
use crate::resources::Resources;

/// Which real-time clock (if any) the design includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockKind {
    /// No clock: the design can mitigate replay/reorder (counter) but not
    /// delay attacks.
    #[default]
    None,
    /// Dedicated 64-bit hardware register incremented every cycle (Fig. 1a).
    Wide64,
    /// 32-bit hardware register behind a ÷2²⁰ prescaler (§6.3).
    Divided32,
    /// Software clock: `Clock_LSB` wrap-around interrupt + `Code_Clock`
    /// maintained `Clock_MSB` (Fig. 1b).
    Software,
}

impl std::fmt::Display for ClockKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockKind::None => write!(f, "no clock"),
            ClockKind::Wide64 => write!(f, "64 bit clock"),
            ClockKind::Divided32 => write!(f, "32 bit clock"),
            ClockKind::Software => write!(f, "SW-clock"),
        }
    }
}

/// A composable prover hardware design.
///
/// # Example
///
/// ```
/// use proverguard_hw::design::{ClockKind, Design};
///
/// let sw = Design::full(ClockKind::Software);
/// let report = sw.synthesize();
/// let (reg_pct, lut_pct) = report.overhead_vs(&Design::baseline().synthesize());
/// // §6.3: "5.76% and 3.61% of the overall cost".
/// assert!((reg_pct - 5.76).abs() < 0.01);
/// assert!((lut_pct - 3.61).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    clock: ClockKind,
    replay_counter: bool,
}

impl Design {
    /// The paper's base-line: attestation support without `Adv_ext` /
    /// `Adv_roam` protection. Two EA-MPU rules — one locking down the
    /// EA-MPU itself, one protecting `K_Attest`.
    #[must_use]
    pub fn baseline() -> Self {
        Design {
            name: "base-line (attestation only)".to_string(),
            clock: ClockKind::None,
            replay_counter: false,
        }
    }

    /// Base-line plus replay counter (mitigates replay and reorder but not
    /// delay).
    #[must_use]
    pub fn with_counter() -> Self {
        Design {
            name: "counter (replay/reorder protection)".to_string(),
            clock: ClockKind::None,
            replay_counter: true,
        }
    }

    /// Base-line plus the selected clock implementation (full `Adv_roam`
    /// mitigation for the clock path; §6.3 accounts clock variants without
    /// the counter rule, and we follow its arithmetic exactly).
    #[must_use]
    pub fn with_clock(clock: ClockKind) -> Self {
        Design {
            name: format!("{clock} variant"),
            clock,
            replay_counter: false,
        }
    }

    /// The full protection stack: counter plus clock.
    #[must_use]
    pub fn full(clock: ClockKind) -> Self {
        Design {
            name: format!("full protection ({clock} + counter)"),
            clock,
            replay_counter: true,
        }
    }

    /// Human-readable design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock variant of this design.
    #[must_use]
    pub fn clock(&self) -> ClockKind {
        self.clock
    }

    /// Produces the synthesis report: per-component costs, EA-MPU sizing
    /// and totals.
    #[must_use]
    pub fn synthesize(&self) -> SynthesisReport {
        // Feature components (everything except core + MPU).
        let mut features: Vec<(String, Resources, u64)> = Vec::new();
        let key = AttestKey;
        features.push((key.name().to_string(), key.cost(), key.mpu_rules_required()));
        if self.replay_counter {
            let c = ReplayCounter;
            features.push((c.name().to_string(), c.cost(), c.mpu_rules_required()));
        }
        match self.clock {
            ClockKind::None => {}
            ClockKind::Wide64 => {
                let c = HardwareClock::wide64();
                features.push((c.name().to_string(), c.cost(), c.mpu_rules_required()));
            }
            ClockKind::Divided32 => {
                let c = HardwareClock::divided32();
                features.push((c.name().to_string(), c.cost(), c.mpu_rules_required()));
            }
            ClockKind::Software => {
                let c = SoftwareClock;
                features.push((c.name().to_string(), c.cost(), c.mpu_rules_required()));
            }
        }

        // One rule always locks down the EA-MPU configuration itself.
        let lockdown_rules = 1;
        let total_rules: u64 = lockdown_rules + features.iter().map(|(_, _, r)| r).sum::<u64>();

        let core = SiskiyouPeak;
        let mpu = EaMpu::new(total_rules);

        let mut costs = vec![
            ComponentCost::new(core.name(), core.cost(), 0),
            ComponentCost::new(mpu.name(), mpu.cost(), total_rules),
        ];
        for (name, cost, rules) in features {
            costs.push(ComponentCost::new(&name, cost, rules));
        }
        SynthesisReport::new(&self.name, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_section_6_3() {
        // "The total cost of the base-line system is 5528+278+(116·2)=6038
        // registers and 14361+417+(182·2)=15142 LUTs".
        let report = Design::baseline().synthesize();
        assert_eq!(report.total(), Resources::new(6038, 15142));
        assert_eq!(report.mpu_rules(), 2);
    }

    #[test]
    fn clock_64_overhead_matches_section_6_3() {
        let base = Design::baseline().synthesize();
        let v64 = Design::with_clock(ClockKind::Wide64).synthesize();
        let delta = v64.delta_vs(&base);
        // "116+64=180 registers and 182+64=246 LUTs".
        assert_eq!(delta, Resources::new(180, 246));
        let (r, l) = v64.overhead_vs(&base);
        assert!((r - 2.98).abs() < 0.01, "{r}");
        assert!((l - 1.62).abs() < 0.01, "{l}");
    }

    #[test]
    fn clock_32_overhead_matches_section_6_3() {
        let base = Design::baseline().synthesize();
        let v32 = Design::with_clock(ClockKind::Divided32).synthesize();
        assert_eq!(v32.delta_vs(&base), Resources::new(148, 214));
        let (r, l) = v32.overhead_vs(&base);
        assert!((r - 2.45).abs() < 0.01, "{r}");
        assert!((l - 1.41).abs() < 0.01, "{l}");
    }

    #[test]
    fn sw_clock_overhead_matches_section_6_3() {
        let base = Design::baseline().synthesize();
        // §6.3 prices the SW-clock variant at three new EA-MPU rules
        // (IDT lockdown, Clock_MSB, and the tick source / counter rule);
        // `full` with the counter reproduces that accounting.
        let sw = Design::full(ClockKind::Software).synthesize();
        assert_eq!(sw.delta_vs(&base), Resources::new(348, 546));
        let (r, l) = sw.overhead_vs(&base);
        assert!((r - 5.76).abs() < 0.01, "{r}");
        assert!((l - 3.61).abs() < 0.01, "{l}");
    }

    #[test]
    fn counter_only_costs_one_rule() {
        let base = Design::baseline().synthesize();
        let counter = Design::with_counter().synthesize();
        assert_eq!(counter.delta_vs(&base), Resources::new(116, 182));
        assert_eq!(counter.mpu_rules(), 3);
    }

    #[test]
    fn rule_counts_per_design() {
        assert_eq!(Design::baseline().synthesize().mpu_rules(), 2);
        assert_eq!(
            Design::with_clock(ClockKind::Wide64)
                .synthesize()
                .mpu_rules(),
            3
        );
        assert_eq!(
            Design::with_clock(ClockKind::Software)
                .synthesize()
                .mpu_rules(),
            4
        );
        assert_eq!(
            Design::full(ClockKind::Software).synthesize().mpu_rules(),
            5
        );
    }
}
