//! Synthesis reports: per-component cost breakdowns and overhead
//! comparisons, renderable as the paper's Table 3.

use crate::resources::Resources;
use std::fmt;

/// One line item of a synthesis report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentCost {
    name: String,
    cost: Resources,
    mpu_rules: u64,
}

impl ComponentCost {
    /// Creates a line item.
    #[must_use]
    pub fn new(name: &str, cost: Resources, mpu_rules: u64) -> Self {
        ComponentCost {
            name: name.to_string(),
            cost,
            mpu_rules,
        }
    }

    /// Component name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direct resource cost.
    #[must_use]
    pub fn cost(&self) -> Resources {
        self.cost
    }

    /// EA-MPU rules attributed to this component.
    #[must_use]
    pub fn mpu_rules(&self) -> u64 {
        self.mpu_rules
    }
}

/// The result of synthesizing a [`Design`](crate::design::Design).
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    design_name: String,
    components: Vec<ComponentCost>,
}

impl SynthesisReport {
    /// Builds a report from its line items.
    #[must_use]
    pub fn new(design_name: &str, components: Vec<ComponentCost>) -> Self {
        SynthesisReport {
            design_name: design_name.to_string(),
            components,
        }
    }

    /// Design name.
    #[must_use]
    pub fn design_name(&self) -> &str {
        &self.design_name
    }

    /// Line items.
    #[must_use]
    pub fn components(&self) -> &[ComponentCost] {
        &self.components
    }

    /// Total resources across all components.
    #[must_use]
    pub fn total(&self) -> Resources {
        self.components.iter().map(ComponentCost::cost).sum()
    }

    /// Total EA-MPU rules provisioned (reported on the EA-MPU line item).
    #[must_use]
    pub fn mpu_rules(&self) -> u64 {
        self.components
            .iter()
            .find(|c| c.name().starts_with("EA-MPU"))
            .map_or(0, ComponentCost::mpu_rules)
    }

    /// Absolute resource delta of `self` over `baseline`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is smaller than `baseline` (a protection variant
    /// can only add hardware).
    #[must_use]
    pub fn delta_vs(&self, baseline: &SynthesisReport) -> Resources {
        let a = self.total();
        let b = baseline.total();
        assert!(
            a.registers >= b.registers && a.luts >= b.luts,
            "variant must not be smaller than the baseline"
        );
        Resources::new(a.registers - b.registers, a.luts - b.luts)
    }

    /// Relative overhead of `self` over `baseline` in percent,
    /// `(register_pct, lut_pct)` — the numbers §6.3 reports.
    #[must_use]
    pub fn overhead_vs(&self, baseline: &SynthesisReport) -> (f64, f64) {
        self.delta_vs(baseline).percent_of(&baseline.total())
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design: {}", self.design_name)?;
        writeln!(
            f,
            "{:<28} {:>10} {:>10} {:>10}",
            "component", "registers", "LUTs", "MPU rules"
        )?;
        for c in &self.components {
            writeln!(
                f,
                "{:<28} {:>10} {:>10} {:>10}",
                c.name(),
                c.cost().registers,
                c.cost().luts,
                c.mpu_rules()
            )?;
        }
        let total = self.total();
        writeln!(
            f,
            "{:<28} {:>10} {:>10} {:>10}",
            "TOTAL",
            total.registers,
            total.luts,
            self.mpu_rules()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SynthesisReport {
        SynthesisReport::new(
            "sample",
            vec![
                ComponentCost::new("core", Resources::new(100, 200), 0),
                ComponentCost::new("EA-MPU (TrustLite)", Resources::new(50, 60), 2),
            ],
        )
    }

    #[test]
    fn totals_sum_components() {
        assert_eq!(sample().total(), Resources::new(150, 260));
        assert_eq!(sample().mpu_rules(), 2);
    }

    #[test]
    fn delta_and_overhead() {
        let base = sample();
        let variant = SynthesisReport::new(
            "variant",
            vec![
                ComponentCost::new("core", Resources::new(100, 200), 0),
                ComponentCost::new("EA-MPU (TrustLite)", Resources::new(65, 86), 3),
            ],
        );
        assert_eq!(variant.delta_vs(&base), Resources::new(15, 26));
        let (r, l) = variant.overhead_vs(&base);
        assert!((r - 10.0).abs() < 1e-9);
        assert!((l - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "variant must not be smaller")]
    fn shrinking_variant_panics() {
        let base = sample();
        let smaller = SynthesisReport::new(
            "smaller",
            vec![ComponentCost::new("core", Resources::new(10, 10), 0)],
        );
        let _ = smaller.delta_vs(&base);
    }

    #[test]
    fn display_contains_all_rows() {
        let text = sample().to_string();
        assert!(text.contains("core"));
        assert!(text.contains("EA-MPU"));
        assert!(text.contains("TOTAL"));
    }
}
