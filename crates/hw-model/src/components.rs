//! Calibrated per-component costs (the rows of Table 3).
//!
//! Each component reports its direct FPGA resource cost and the number of
//! EA-MPU protection rules that must be *configured* to protect it. The
//! rule costs themselves are owned by the [`EaMpu`] component: the paper's
//! Table 3 prices the EA-MPU as `278 + 116·#r` registers and
//! `417 + 182·#r` LUTs, where `#r` is the number of configurable rules.

use crate::resources::Resources;

/// Per-rule register cost of the TrustLite-style EA-MPU.
pub const MPU_RULE_REGISTERS: u64 = 116;
/// Per-rule LUT cost of the TrustLite-style EA-MPU.
pub const MPU_RULE_LUTS: u64 = 182;
/// Fixed register cost of the EA-MPU with zero rules.
pub const MPU_BASE_REGISTERS: u64 = 278;
/// Fixed LUT cost of the EA-MPU with zero rules.
pub const MPU_BASE_LUTS: u64 = 417;

/// A hardware component with a resource cost and an EA-MPU rule demand.
///
/// Implementors correspond to the columns of the paper's Table 3.
pub trait Component {
    /// Human-readable name (matches Table 3 headers where applicable).
    fn name(&self) -> &str;

    /// Direct FPGA resource cost of the component itself.
    fn cost(&self) -> Resources;

    /// Number of EA-MPU rules that must be provisioned to protect this
    /// component (Table 3 row "EA-MPU rules").
    fn mpu_rules_required(&self) -> u64 {
        0
    }
}

/// The Intel Siskiyou Peak softcore (the prover CPU).
///
/// Calibrated cost from Table 3: 5528 registers, 14361 LUTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiskiyouPeak;

impl Component for SiskiyouPeak {
    fn name(&self) -> &str {
        "Siskiyou Peak"
    }

    fn cost(&self) -> Resources {
        Resources::new(5528, 14361)
    }
}

/// The execution-aware memory protection unit with `rules` configurable
/// rules (TrustLite).
///
/// # Example
///
/// ```
/// use proverguard_hw::components::{Component, EaMpu};
/// use proverguard_hw::Resources;
///
/// // Table 3: 278 + 116·#r registers, 417 + 182·#r LUTs.
/// assert_eq!(EaMpu::new(2).cost(), Resources::new(278 + 116 * 2, 417 + 182 * 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EaMpu {
    rules: u64,
}

impl EaMpu {
    /// An EA-MPU with `rules` configurable protection rules.
    #[must_use]
    pub fn new(rules: u64) -> Self {
        EaMpu { rules }
    }

    /// Number of configurable rules.
    #[must_use]
    pub fn rules(&self) -> u64 {
        self.rules
    }

    /// Cost of one additional rule (used by the §6.3 overhead arithmetic).
    #[must_use]
    pub fn rule_cost() -> Resources {
        Resources::new(MPU_RULE_REGISTERS, MPU_RULE_LUTS)
    }
}

impl Component for EaMpu {
    fn name(&self) -> &str {
        "EA-MPU (TrustLite)"
    }

    fn cost(&self) -> Resources {
        Resources::new(
            MPU_BASE_REGISTERS + MPU_RULE_REGISTERS * self.rules,
            MPU_BASE_LUTS + MPU_RULE_LUTS * self.rules,
        )
    }
}

/// The attestation key storage (`K_Attest`).
///
/// Table 3: zero direct hardware cost (the key lives in existing
/// ROM/flash), but one EA-MPU rule to restrict read access to
/// `Code_Attest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttestKey;

impl Component for AttestKey {
    fn name(&self) -> &str {
        "Attest-Key"
    }

    fn cost(&self) -> Resources {
        Resources::ZERO
    }

    fn mpu_rules_required(&self) -> u64 {
        1
    }
}

/// The replay counter (`counter_R`).
///
/// Table 3: zero direct cost (a word of existing non-volatile memory) plus
/// one EA-MPU rule making it writable only by `Code_Attest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayCounter;

impl Component for ReplayCounter {
    fn name(&self) -> &str {
        "Counter"
    }

    fn cost(&self) -> Resources {
        Resources::ZERO
    }

    fn mpu_rules_required(&self) -> u64 {
        1
    }
}

/// A dedicated hardware real-time clock register of `width` bits,
/// optionally behind a clock divider.
///
/// Table 3 prices a `w`-bit clock at `w` registers and `w` LUTs (the
/// counter flip-flops plus its increment logic); the paper treats the
/// divider as free prescaler reuse, and we follow it. Protecting the
/// clock costs one EA-MPU rule (§6.3 counts one additional rule for the
/// hardware-clock variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareClock {
    width: u32,
    divider_log2: u32,
}

impl HardwareClock {
    /// A 64-bit clock incremented every CPU cycle (Figure 1a, first variant).
    #[must_use]
    pub fn wide64() -> Self {
        HardwareClock {
            width: 64,
            divider_log2: 0,
        }
    }

    /// A 32-bit clock behind a divide-by-2²⁰ prescaler (§6.3 second variant).
    #[must_use]
    pub fn divided32() -> Self {
        HardwareClock {
            width: 32,
            divider_log2: 20,
        }
    }

    /// An arbitrary clock for ablation sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 128.
    #[must_use]
    pub fn custom(width: u32, divider_log2: u32) -> Self {
        assert!(width > 0 && width <= 128, "clock width out of range");
        HardwareClock {
            width,
            divider_log2,
        }
    }

    /// Counter width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// log₂ of the divider (0 = increment every cycle).
    #[must_use]
    pub fn divider_log2(&self) -> u32 {
        self.divider_log2
    }

    /// Seconds until the counter wraps around at `cpu_hz`.
    ///
    /// §6.3: a 64-bit register at 24 MHz wraps after 24 372.6 years; a
    /// 32-bit register after ~3 minutes; 32-bit ÷ 2²⁰ after ~6 years.
    #[must_use]
    pub fn wraparound_seconds(&self, cpu_hz: f64) -> f64 {
        let ticks = 2f64.powi(self.width as i32);
        let tick_hz = cpu_hz / 2f64.powi(self.divider_log2 as i32);
        ticks / tick_hz
    }

    /// Clock resolution in seconds at `cpu_hz` (one tick period).
    #[must_use]
    pub fn resolution_seconds(&self, cpu_hz: f64) -> f64 {
        2f64.powi(self.divider_log2 as i32) / cpu_hz
    }
}

impl Component for HardwareClock {
    fn name(&self) -> &str {
        match (self.width, self.divider_log2) {
            (64, 0) => "64 bit clock",
            (32, 20) => "32 bit clock",
            _ => "custom clock",
        }
    }

    fn cost(&self) -> Resources {
        Resources::new(self.width as u64, self.width as u64)
    }

    fn mpu_rules_required(&self) -> u64 {
        1
    }
}

/// The software clock of Figure 1b: a short hardware counter
/// (`Clock_LSB`, already present on common MCUs, hence zero direct cost)
/// whose wrap-around interrupt is served by `Code_Clock`, which maintains
/// `Clock_MSB` in protected RAM.
///
/// Table 3 / §6.3: no direct hardware, but EA-MPU rules to (1) lock the
/// IDT and (2) protect `Clock_MSB` — and in the §6.3 overhead accounting
/// a third rule for the counter-style protection of the LSB tick source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SoftwareClock;

impl SoftwareClock {
    /// Rules attributable to the SW-clock proper (IDT + `Clock_MSB`), the
    /// value in Table 3's "SW-clock" column.
    pub const TABLE3_RULES: u64 = 2;
}

impl Component for SoftwareClock {
    fn name(&self) -> &str {
        "SW-clock"
    }

    fn cost(&self) -> Resources {
        Resources::ZERO
    }

    fn mpu_rules_required(&self) -> u64 {
        Self::TABLE3_RULES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_siskiyou_row() {
        assert_eq!(SiskiyouPeak.cost(), Resources::new(5528, 14361));
        assert_eq!(SiskiyouPeak.mpu_rules_required(), 0);
    }

    #[test]
    fn table3_mpu_formula() {
        for r in 0..10 {
            let mpu = EaMpu::new(r);
            assert_eq!(mpu.cost(), Resources::new(278 + 116 * r, 417 + 182 * r));
        }
    }

    #[test]
    fn table3_key_and_counter_rows() {
        assert_eq!(AttestKey.cost(), Resources::ZERO);
        assert_eq!(AttestKey.mpu_rules_required(), 1);
        assert_eq!(ReplayCounter.cost(), Resources::ZERO);
        assert_eq!(ReplayCounter.mpu_rules_required(), 1);
    }

    #[test]
    fn table3_clock_rows() {
        assert_eq!(HardwareClock::wide64().cost(), Resources::new(64, 64));
        assert_eq!(HardwareClock::divided32().cost(), Resources::new(32, 32));
        assert_eq!(SoftwareClock.cost(), Resources::ZERO);
        assert_eq!(SoftwareClock.mpu_rules_required(), 2);
    }

    #[test]
    fn wraparound_64bit_matches_paper() {
        // §6.3: "a 64 bit register incremented every clock cycle wraps
        // around after 24,372.6 years on a 24 Mhz CPU".
        let years = HardwareClock::wide64().wraparound_seconds(24e6) / (365.25 * 86_400.0);
        assert!((years - 24_372.6).abs() < 30.0, "got {years} years");
    }

    #[test]
    fn wraparound_32bit_matches_paper() {
        // §6.3: "given a 32 bit register, the wrap-around time is about
        // 3 minutes at 24 Mhz".
        let raw32 = HardwareClock::custom(32, 0).wraparound_seconds(24e6);
        assert!(
            (raw32 / 60.0 - 3.0).abs() < 0.1,
            "got {} minutes",
            raw32 / 60.0
        );

        // "By dividing the clock by 2^20 ... wrap-around can be increased
        // to 6 years while keeping clock resolution at 42 ms."
        let divided = HardwareClock::divided32();
        let years = divided.wraparound_seconds(24e6) / (365.25 * 86_400.0);
        assert!((years - 5.95).abs() < 0.2, "got {years} years");
        let res_ms = divided.resolution_seconds(24e6) * 1e3;
        assert!((res_ms - 43.7).abs() < 2.0, "got {res_ms} ms");
    }

    #[test]
    #[should_panic(expected = "clock width out of range")]
    fn zero_width_clock_rejected() {
        let _ = HardwareClock::custom(0, 0);
    }
}
