//! Structural resource estimator.
//!
//! Where [`crate::components`] carries the paper's *calibrated* numbers,
//! this module derives component costs from first principles: a circuit is
//! a bag of flip-flops and 4-input LUT equivalents, and standard digital
//! blocks (registers, counters, comparators, range checks) have well-known
//! footprints. The estimates are intentionally coarse — their job is to
//! show that the calibrated constants are *plausible* (tests assert
//! agreement within a tolerance band) and to extrapolate costs for
//! configurations the paper never synthesized (ablation sweeps).

use crate::resources::Resources;

/// A `width`-bit register with load enable: one FF per bit plus one LUT per
/// bit of input-select logic.
#[must_use]
pub fn register(width: u32) -> Resources {
    Resources::new(width as u64, width as u64)
}

/// A `width`-bit synchronous up-counter: one FF and one LUT (the
/// increment/carry logic) per bit — exactly the paper's `w`/`w` clock cost.
#[must_use]
pub fn counter(width: u32) -> Resources {
    Resources::new(width as u64, width as u64)
}

/// A `width`-bit equality/magnitude comparator: ~one LUT per two bits for
/// the compare tree plus a small merge cone.
#[must_use]
pub fn comparator(width: u32) -> Resources {
    Resources::new(0, (width as u64).div_ceil(2) + 2)
}

/// An address range check `lo <= addr < hi`: two comparators.
#[must_use]
pub fn range_check(addr_width: u32) -> Resources {
    comparator(addr_width) + comparator(addr_width)
}

/// One EA-MPU rule, built structurally.
///
/// A TrustLite-style rule stores a *data* address range (two 32-bit bounds),
/// a *code* address range that is allowed to touch it (two 24-bit bounds —
/// code sits in a smaller ROM/flash window), and a small permissions/valid
/// word; matching logic is a data range check, a PC range check, and a
/// permission decode cone.
#[must_use]
pub fn mpu_rule(data_addr_width: u32, code_addr_width: u32) -> Resources {
    let storage = register(data_addr_width) // data lo
        + register(data_addr_width)         // data hi
        + register(code_addr_width)         // code lo
        + register(code_addr_width)         // code hi
        + register(4); // perms (r/w/x) + valid
    let matching =
        range_check(data_addr_width) + range_check(code_addr_width) + Resources::new(0, 8); // decode/merge cone
    storage + matching
}

/// The EA-MPU common fabric: bus snoop and pipeline registers, fault
/// address/status capture, the configuration shadow interface, and the
/// rule-priority mux. Register breakdown: data-address snoop (32) +
/// PC snoop (24) + control state (8) + fault address (32) + status (32) +
/// config address/data shadow (64) + bus pipeline stage (64) = 256 FFs,
/// plus ~120 LUTs of bus decode.
#[must_use]
pub fn mpu_fabric(data_addr_width: u32, code_addr_width: u32, rules: u32) -> Resources {
    let snoop = register(data_addr_width) + register(code_addr_width) + register(8);
    let capture = register(32) + register(32);
    let config_if = register(64) + Resources::new(0, 56);
    let pipeline = register(64);
    let priority_mux = Resources::new(0, 4 * rules as u64 + 16);
    snoop + capture + config_if + pipeline + priority_mux
}

/// Structural estimate of a full EA-MPU with `rules` rules.
///
/// # Example
///
/// ```
/// use proverguard_hw::structural::ea_mpu_estimate;
///
/// let est = ea_mpu_estimate(2);
/// // Paper (calibrated): 510 registers / 781 LUTs for #r = 2.
/// let err = (est.registers as f64 - 510.0).abs() / 510.0;
/// assert!(err < 0.25);
/// ```
#[must_use]
pub fn ea_mpu_estimate(rules: u32) -> Resources {
    mpu_fabric(32, 24, rules) + mpu_rule(32, 24) * rules as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Component, EaMpu};

    #[test]
    fn structural_rule_near_calibrated_rule() {
        let est = mpu_rule(32, 24);
        // Calibrated: 116 registers / 182 LUTs per rule.
        let reg_err = (est.registers as f64 - 116.0).abs() / 116.0;
        let lut_err = (est.luts as f64 - 182.0).abs() / 182.0;
        assert!(
            reg_err < 0.25,
            "register estimate {} too far from 116",
            est.registers
        );
        assert!(lut_err < 0.45, "lut estimate {} too far from 182", est.luts);
    }

    #[test]
    fn structural_mpu_tracks_calibrated_across_rule_counts() {
        for rules in 1..=8u32 {
            let est = ea_mpu_estimate(rules);
            let cal = EaMpu::new(rules as u64).cost();
            let reg_err =
                (est.registers as f64 - cal.registers as f64).abs() / cal.registers as f64;
            assert!(
                reg_err < 0.30,
                "rules={rules}: structural {} vs calibrated {}",
                est.registers,
                cal.registers
            );
        }
    }

    #[test]
    fn structural_cost_is_linear_in_rules() {
        let delta1 = {
            let a = ea_mpu_estimate(3);
            let b = ea_mpu_estimate(2);
            a.registers - b.registers
        };
        let delta2 = {
            let a = ea_mpu_estimate(8);
            let b = ea_mpu_estimate(7);
            a.registers - b.registers
        };
        assert_eq!(delta1, delta2, "per-rule register cost must be constant");
    }

    #[test]
    fn counter_matches_paper_clock_costs() {
        assert_eq!(counter(64), Resources::new(64, 64));
        assert_eq!(counter(32), Resources::new(32, 32));
    }

    #[test]
    fn comparator_scales_with_width() {
        assert!(comparator(32).luts > comparator(16).luts);
        assert_eq!(comparator(32).registers, 0);
    }
}
