//! FPGA resource-cost model for the paper's hardware evaluation.
//!
//! The paper evaluates its prover-protection mechanisms by the number of
//! FPGA **registers** (flip-flops) and **look-up tables** each component
//! adds to a TrustLite-style system built around the Intel Siskiyou Peak
//! softcore (Table 3), and reports the relative overhead of three clock
//! designs (§6.3). We do not have an FPGA synthesis toolchain, so this
//! crate substitutes two complementary models (see `DESIGN.md` §3):
//!
//! - [`components`] — *calibrated* per-component costs taken from the
//!   paper's published numbers (Siskiyou Peak core, the EA-MPU base +
//!   per-rule formula, and the clock variants). These regenerate Table 3
//!   and the §6.3 overhead percentages exactly.
//! - [`structural`] — a *structural* estimator that builds the same
//!   components out of flip-flops, LUT-equivalents, adders and
//!   comparators. It exists to sanity-check the calibrated constants
//!   (tests assert the structural estimates land within a tolerance band)
//!   and to support ablations the paper doesn't report, e.g. sweeping the
//!   EA-MPU rule count or clock width.
//!
//! [`design`] composes components into whole devices and produces
//! [`report::SynthesisReport`]s with totals and overhead-vs-baseline
//! percentages.
//!
//! # Example
//!
//! ```
//! use proverguard_hw::design::Design;
//!
//! let baseline = Design::baseline();
//! let report = baseline.synthesize();
//! // The paper's §6.3 base-line: 6038 registers and 15142 LUTs.
//! assert_eq!(report.total().registers, 6038);
//! assert_eq!(report.total().luts, 15142);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod design;
pub mod report;
pub mod resources;
pub mod structural;

pub use components::Component;
pub use design::{ClockKind, Design};
pub use report::SynthesisReport;
pub use resources::Resources;
