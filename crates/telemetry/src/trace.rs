//! Span/event tracing on the deterministic device cycle clock.
//!
//! The tracer never reads wall time. Instead, whoever owns the cycle
//! clock (the prover, which advances its [`Mcu`]) publishes the current
//! cycle count with [`set_now`]; spans and events are stamped with the
//! most recently published value. Because the simulation's cycle clock is
//! deterministic, traces are reproducible bit for bit — the property the
//! whole measurement trail rests on.
//!
//! Spans are guard-based and nest naturally:
//!
//! ```
//! use proverguard_telemetry::trace;
//!
//! trace::reset();
//! trace::enable();
//! trace::set_now(0);
//! {
//!     let _auth = trace::span("auth.mac_check");
//!     trace::set_now(408); // the Speck block check, in cycles
//! }
//! let events = trace::drain();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].cycles(), 408);
//! trace::disable();
//! ```
//!
//! The tracer is **disabled by default** and costs nothing on the device
//! when off: no instrumentation point ever advances the MCU clock or
//! touches the battery, and a disabled [`span`]/[`event`] call is a
//! single flag check that returns an inert guard. State is thread-local,
//! so parallel tests never share a ring buffer.
//!
//! Completed spans land in a **bounded ring buffer**: once
//! [`Tracer::capacity`] events are held, the oldest is overwritten and
//! counted in [`dropped`]. Exporters consume the ring via [`drain`] or
//! [`snapshot`].
//!
//! [`Mcu`]: https://docs.rs/proverguard-mcu

use std::cell::RefCell;
use std::collections::VecDeque;

/// Default ring-buffer capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One recorded trace entry, stamped in device cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed span.
    Span {
        /// Static span name (e.g. `"prover.auth"`).
        name: &'static str,
        /// Cycle count when the span opened.
        start_cycles: u64,
        /// Cycle count when the span guard dropped.
        end_cycles: u64,
        /// Nesting depth at open time (0 = top level).
        depth: u16,
    },
    /// A point event.
    Instant {
        /// Static event name (e.g. `"fleet.breaker.open"`).
        name: &'static str,
        /// Cycle count when the event fired.
        at_cycles: u64,
        /// One free-form numeric argument (device index, backoff ms, …).
        arg: u64,
    },
}

impl TraceEvent {
    /// The event's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Span { name, .. } | TraceEvent::Instant { name, .. } => name,
        }
    }

    /// Span duration in cycles; 0 for instant events.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        match self {
            TraceEvent::Span {
                start_cycles,
                end_cycles,
                ..
            } => end_cycles.saturating_sub(*start_cycles),
            TraceEvent::Instant { .. } => 0,
        }
    }

    /// The cycle stamp the event starts at.
    #[must_use]
    pub fn start(&self) -> u64 {
        match self {
            TraceEvent::Span { start_cycles, .. } => *start_cycles,
            TraceEvent::Instant { at_cycles, .. } => *at_cycles,
        }
    }
}

/// The per-thread tracer state. Use the module-level free functions for
/// day-to-day instrumentation; [`with`] exposes the raw state for tests
/// and exporters.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    now_cycles: u64,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    depth: u16,
    dropped: u64,
}

/// A span that was opened while the tracer was enabled, waiting for its
/// guard to drop.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    name: &'static str,
    start_cycles: u64,
    depth: u16,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Tracer {
            enabled: false,
            now_cycles: 0,
            capacity: DEFAULT_CAPACITY,
            events: VecDeque::new(),
            depth: 0,
            dropped: 0,
        }
    }

    /// Is the tracer recording?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off. Disabling leaves the ring intact.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// The most recently published cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now_cycles
    }

    /// Publishes the current cycle count. Monotonicity is the caller's
    /// business: the tracer stamps whatever it was last told.
    pub fn set_now(&mut self, cycles: u64) {
        if self.enabled {
            self.now_cycles = cycles;
        }
    }

    /// Ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resizes the ring (oldest events are dropped if shrinking).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Current nesting depth of open spans.
    #[must_use]
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Events currently held, oldest first (the ring is not consumed).
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }

    /// Takes all held events, oldest first, leaving the ring empty.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    /// Clears events, depth, the drop counter and the published clock
    /// (the enabled flag and capacity survive).
    pub fn clear(&mut self) {
        self.events.clear();
        self.depth = 0;
        self.dropped = 0;
        self.now_cycles = 0;
    }

    fn begin_span(&mut self, name: &'static str) -> Option<OpenSpan> {
        if !self.enabled {
            return None;
        }
        let open = OpenSpan {
            name,
            start_cycles: self.now_cycles,
            depth: self.depth,
        };
        self.depth = self.depth.saturating_add(1);
        Some(open)
    }

    fn end_span(&mut self, open: OpenSpan) {
        self.depth = self.depth.saturating_sub(1);
        self.push(TraceEvent::Span {
            name: open.name,
            start_cycles: open.start_cycles,
            end_cycles: self.now_cycles.max(open.start_cycles),
            depth: open.depth,
        });
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.events.push_back(event);
    }
}

thread_local! {
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer::new());
}

/// Runs `f` with this thread's tracer. Do not call tracing free functions
/// from within `f` — the state is already borrowed.
pub fn with<R>(f: impl FnOnce(&mut Tracer) -> R) -> R {
    TRACER.with(|t| f(&mut t.borrow_mut()))
}

/// Starts recording on this thread.
pub fn enable() {
    with(|t| t.set_enabled(true));
}

/// Stops recording on this thread (the ring is kept).
pub fn disable() {
    with(|t| t.set_enabled(false));
}

/// Is this thread's tracer recording?
#[must_use]
pub fn is_enabled() -> bool {
    with(|t| t.is_enabled())
}

/// Publishes the current device cycle count (no-op while disabled).
pub fn set_now(cycles: u64) {
    with(|t| t.set_now(cycles));
}

/// The most recently published cycle count.
#[must_use]
pub fn now() -> u64 {
    with(|t| t.now())
}

/// Opens a span named `name` at the current cycle stamp. The span closes
/// (and is recorded) when the returned guard drops. While the tracer is
/// disabled the guard is inert and nothing is recorded.
#[must_use = "a span closes when its guard drops — bind it to a variable"]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        open: with(|t| t.begin_span(name)),
    }
}

/// Records a point event with argument 0 (no-op while disabled).
pub fn event(name: &'static str) {
    event_with(name, 0);
}

/// Records a point event carrying one numeric argument (no-op while
/// disabled).
pub fn event_with(name: &'static str, arg: u64) {
    with(|t| {
        if t.enabled {
            let at_cycles = t.now_cycles;
            t.push(TraceEvent::Instant {
                name,
                at_cycles,
                arg,
            });
        }
    });
}

/// Takes all events recorded on this thread, oldest first.
#[must_use]
pub fn drain() -> Vec<TraceEvent> {
    with(Tracer::drain)
}

/// Copies (without consuming) all events recorded on this thread.
#[must_use]
pub fn snapshot() -> Vec<TraceEvent> {
    with(|t| t.snapshot())
}

/// Events lost to ring overflow on this thread.
#[must_use]
pub fn dropped() -> u64 {
    with(|t| t.dropped())
}

/// Resizes this thread's ring buffer.
pub fn set_capacity(capacity: usize) {
    with(|t| t.set_capacity(capacity));
}

/// Clears this thread's events, depth, drop counter and published clock.
pub fn reset() {
    with(Tracer::clear);
}

/// Closes its span on drop. Obtained from [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            with(|t| t.end_span(open));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that share the thread-local tracer — `cargo test`
    /// may run them on the same worker thread in any order.
    fn with_clean_tracer(f: impl FnOnce()) {
        reset();
        enable();
        f();
        disable();
        reset();
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        reset();
        assert!(!is_enabled());
        set_now(100);
        let g = span("never");
        drop(g);
        event("nope");
        assert!(drain().is_empty());
        assert_eq!(now(), 0, "set_now is a no-op while disabled");
    }

    #[test]
    fn spans_record_enter_exit_cycles_and_nest() {
        with_clean_tracer(|| {
            set_now(10);
            let outer = span("outer");
            set_now(20);
            {
                let _inner = span("inner");
                set_now(35);
            }
            set_now(40);
            drop(outer);

            let events = drain();
            assert_eq!(events.len(), 2);
            // Children complete (and are recorded) before their parent.
            assert_eq!(
                events[0],
                TraceEvent::Span {
                    name: "inner",
                    start_cycles: 20,
                    end_cycles: 35,
                    depth: 1,
                }
            );
            assert_eq!(
                events[1],
                TraceEvent::Span {
                    name: "outer",
                    start_cycles: 10,
                    end_cycles: 40,
                    depth: 0,
                }
            );
            assert_eq!(events[1].cycles(), 30);
        });
    }

    #[test]
    fn instants_carry_their_argument() {
        with_clean_tracer(|| {
            set_now(7);
            event_with("breaker.open", 3);
            let events = drain();
            assert_eq!(
                events[0],
                TraceEvent::Instant {
                    name: "breaker.open",
                    at_cycles: 7,
                    arg: 3,
                }
            );
            assert_eq!(events[0].cycles(), 0);
            assert_eq!(events[0].start(), 7);
        });
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        with_clean_tracer(|| {
            set_capacity(4);
            for i in 0..10 {
                set_now(i);
                event("tick");
            }
            assert_eq!(dropped(), 6);
            let events = drain();
            assert_eq!(events.len(), 4);
            // Oldest were overwritten: the survivors are the last four.
            assert_eq!(events[0].start(), 6);
            assert_eq!(events[3].start(), 9);
            set_capacity(DEFAULT_CAPACITY);
        });
    }

    #[test]
    fn clear_resets_state_but_not_enablement() {
        with_clean_tracer(|| {
            set_now(5);
            event("x");
            reset();
            assert!(is_enabled());
            assert_eq!(now(), 0);
            assert_eq!(dropped(), 0);
            assert!(snapshot().is_empty());
        });
    }

    #[test]
    fn span_closed_after_disable_is_still_recorded() {
        with_clean_tracer(|| {
            set_now(1);
            let g = span("cross");
            set_now(9);
            disable();
            drop(g); // was opened while enabled: completes anyway
            enable();
            let events = drain();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].cycles(), 8);
        });
    }

    #[test]
    fn backwards_clock_clamps_span_to_zero_width() {
        with_clean_tracer(|| {
            set_now(100);
            let g = span("weird");
            set_now(100); // a stuck clock
            drop(g);
            let events = drain();
            assert_eq!(events[0].cycles(), 0);
        });
    }
}
