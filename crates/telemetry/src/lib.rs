//! Cycle-accurate telemetry for the ProverGuard suite.
//!
//! The paper's whole argument is a *cost* argument: a bogus `attreq`
//! costs the prover up to 754 ms of whole-memory MACing at 24 MHz, so
//! defences are ranked by **where in the pipeline cycles die** (parse →
//! admission → auth → freshness → MAC). This crate gives every bench,
//! soak, and test one shared vocabulary for that accounting:
//!
//! - [`trace`] — a span/event tracer driven by the deterministic device
//!   cycle clock (never wall time). Spans nest, land in a bounded ring
//!   buffer, and cost nothing when the tracer is disabled: no
//!   instrumentation point ever advances the MCU clock, so the prover's
//!   measured cycle counts are identical with tracing on or off.
//! - [`metrics`] — a registry of counters, gauges and log-bucketed
//!   [`CycleHistogram`]s (p50/p90/p99/max from fixed power-of-two
//!   buckets; integer-only hot path) keyed by interned static names.
//! - [`export`] — JSONL trace dumps, Chrome-`trace_event` JSON for
//!   `chrome://tracing` / Perfetto, and the plain-text [`PhaseTable`]
//!   (phase, calls, cycles, ms @ clock, % of total) that CI diffs.
//!
//! The crate is a deliberate **leaf**: zero dependencies, so every other
//! workspace crate — including `proverguard-crypto`, itself a leaf
//! otherwise — can be instrumented without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{to_chrome_trace, to_jsonl, PhaseRow, PhaseTable};
pub use metrics::{CycleHistogram, Registry};
pub use trace::{SpanGuard, TraceEvent, Tracer};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_level_reexports_compile() {
        let _table = crate::PhaseTable::default();
        let _hist = crate::CycleHistogram::new();
        let _reg = crate::Registry::new();
    }
}
