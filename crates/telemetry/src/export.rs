//! Exporters: JSONL dump, Chrome `trace_event` JSON, and the per-phase
//! cycle table.
//!
//! Floats are allowed *here* — exporters run off the device, after the
//! measurement is over. The hot path (tracer + registry) stays integer.
//!
//! The phase table is the CI-facing artefact: for a set of span names it
//! reports calls, total cycles, milliseconds at a given clock, and the
//! share of the table's total — the "where do cycles die" view that the
//! paper's Table 1 / Figure 1 cost argument is built on.

use crate::trace::TraceEvent;

/// Minimal JSON string escaping for the static names we emit.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One JSON object per line, one line per event. Spans carry
/// `start_cycles`/`end_cycles`/`depth`; instants carry `at_cycles`/`arg`.
#[must_use]
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        match event {
            TraceEvent::Span {
                name,
                start_cycles,
                end_cycles,
                depth,
            } => out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"start_cycles\":{},\"end_cycles\":{},\"depth\":{}}}\n",
                escape(name), start_cycles, end_cycles, depth
            )),
            TraceEvent::Instant {
                name,
                at_cycles,
                arg,
            } => out.push_str(&format!(
                "{{\"type\":\"instant\",\"name\":\"{}\",\"at_cycles\":{},\"arg\":{}}}\n",
                escape(name), at_cycles, arg
            )),
        }
    }
    out
}

/// A Chrome `trace_event` JSON document (open `chrome://tracing` or
/// Perfetto and load it). Cycle stamps are converted to microseconds at
/// `clock_hz`; spans become `ph:"X"` complete events, instants `ph:"i"`.
#[must_use]
pub fn to_chrome_trace(events: &[TraceEvent], clock_hz: u64) -> String {
    let hz = clock_hz.max(1) as f64;
    let us = |cycles: u64| cycles as f64 * 1_000_000.0 / hz;
    let mut entries = Vec::with_capacity(events.len());
    for event in events {
        match event {
            TraceEvent::Span {
                name,
                start_cycles,
                end_cycles,
                depth,
            } => entries.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"start_cycles\":{},\"depth\":{}}}}}",
                escape(name),
                us(*start_cycles),
                us(end_cycles.saturating_sub(*start_cycles)),
                start_cycles,
                depth
            )),
            TraceEvent::Instant {
                name,
                at_cycles,
                arg,
            } => entries.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"t\",\"ts\":{:.3},\"args\":{{\"arg\":{}}}}}",
                escape(name),
                us(*at_cycles),
                arg
            )),
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        entries.join(",")
    )
}

/// One row of the per-phase table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Span name, e.g. `"prover.attest_mac"`.
    pub name: &'static str,
    /// Number of completed spans with that name.
    pub calls: u64,
    /// Total cycles across those spans (saturating).
    pub cycles: u64,
}

impl PhaseRow {
    /// Mean cycles per call (integer division), or 0 if no calls.
    #[must_use]
    pub fn cycles_per_call(&self) -> u64 {
        self.cycles.checked_div(self.calls).unwrap_or(0)
    }
}

/// Per-phase cycle totals aggregated from span events, in first-seen
/// order.
#[derive(Debug, Clone, Default)]
pub struct PhaseTable {
    rows: Vec<PhaseRow>,
}

impl PhaseTable {
    /// Aggregates every span event (instants are ignored).
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        Self::from_events_filtered(events, |_| true)
    }

    /// Aggregates span events whose name starts with `prefix`.
    #[must_use]
    pub fn from_events_with_prefix(events: &[TraceEvent], prefix: &str) -> Self {
        Self::from_events_filtered(events, |name| name.starts_with(prefix))
    }

    fn from_events_filtered(events: &[TraceEvent], keep: impl Fn(&str) -> bool) -> Self {
        let mut table = PhaseTable::default();
        for event in events {
            if let TraceEvent::Span { name, .. } = event {
                if keep(name) {
                    table.add(name, event.cycles());
                }
            }
        }
        table
    }

    fn add(&mut self, name: &'static str, cycles: u64) {
        match self.rows.iter_mut().find(|r| r.name == name) {
            Some(row) => {
                row.calls = row.calls.saturating_add(1);
                row.cycles = row.cycles.saturating_add(cycles);
            }
            None => self.rows.push(PhaseRow {
                name,
                calls: 1,
                cycles,
            }),
        }
    }

    /// The aggregated rows, in first-seen order.
    #[must_use]
    pub fn rows(&self) -> &[PhaseRow] {
        &self.rows
    }

    /// The row named `name`, if present.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Saturating sum of all rows' cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.rows
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.cycles))
    }

    /// Renders the plain-text table: phase, calls, cycles, ms at
    /// `clock_hz`, and % of the table total. Stable format, suitable for
    /// diffing in CI.
    #[must_use]
    pub fn render(&self, clock_hz: u64) -> String {
        let total = self.total_cycles();
        let hz = clock_hz.max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>8} {:>14} {:>10} {:>7}\n",
            "phase", "calls", "cycles", "ms", "%"
        ));
        out.push_str(&format!("{}\n", "-".repeat(24 + 8 + 14 + 10 + 7 + 4)));
        for row in &self.rows {
            let ms = row.cycles as f64 * 1_000.0 / hz;
            let pct = if total == 0 {
                0.0
            } else {
                row.cycles as f64 * 100.0 / total as f64
            };
            out.push_str(&format!(
                "{:<24} {:>8} {:>14} {:>10.3} {:>6.1}%\n",
                row.name, row.calls, row.cycles, ms, pct
            ));
        }
        out.push_str(&format!(
            "{:<24} {:>8} {:>14} {:>10.3} {:>6.1}%\n",
            "total",
            self.rows
                .iter()
                .fold(0u64, |a, r| a.saturating_add(r.calls)),
            total,
            total as f64 * 1_000.0 / hz,
            if total == 0 { 0.0 } else { 100.0 }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Span {
                name: "prover.parse",
                start_cycles: 0,
                end_cycles: 96,
                depth: 0,
            },
            TraceEvent::Span {
                name: "prover.auth",
                start_cycles: 96,
                end_cycles: 500,
                depth: 0,
            },
            TraceEvent::Span {
                name: "prover.parse",
                start_cycles: 500,
                end_cycles: 596,
                depth: 0,
            },
            TraceEvent::Instant {
                name: "session.retry",
                at_cycles: 600,
                arg: 2,
            },
        ]
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let text = to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[0].contains("\"name\":\"prover.parse\""));
        assert!(lines[3].contains("\"type\":\"instant\""));
        assert!(lines[3].contains("\"arg\":2"));
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let doc = to_chrome_trace(&sample_events(), 24_000_000);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\","));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        // 96 cycles @ 24 MHz = 4 µs.
        assert!(doc.contains("\"dur\":4.000"));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn phase_table_aggregates_and_sums() {
        let table = PhaseTable::from_events(&sample_events());
        assert_eq!(table.rows().len(), 2);
        let parse = table.row("prover.parse").unwrap();
        assert_eq!(parse.calls, 2);
        assert_eq!(parse.cycles, 192);
        assert_eq!(parse.cycles_per_call(), 96);
        assert_eq!(table.total_cycles(), 192 + 404);
        assert!(table.row("session.retry").is_none(), "instants excluded");
    }

    #[test]
    fn phase_table_prefix_filter() {
        let mut events = sample_events();
        events.push(TraceEvent::Span {
            name: "crypto.sha1",
            start_cycles: 0,
            end_cycles: 10,
            depth: 1,
        });
        let table = PhaseTable::from_events_with_prefix(&events, "prover.");
        assert!(table.row("crypto.sha1").is_none());
        assert_eq!(table.rows().len(), 2);
    }

    #[test]
    fn render_has_header_rows_and_total() {
        let table = PhaseTable::from_events(&sample_events());
        let text = table.render(24_000_000);
        assert!(text.contains("phase"));
        assert!(text.contains("prover.parse"));
        assert!(text.contains("prover.auth"));
        assert!(text.contains("total"));
        assert!(text.contains("100.0%"));
    }

    #[test]
    fn empty_table_renders_without_panicking() {
        let table = PhaseTable::default();
        let text = table.render(24_000_000);
        assert!(text.contains("total"));
        assert_eq!(table.total_cycles(), 0);
    }
}
