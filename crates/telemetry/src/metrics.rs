//! Metrics registry: counters, gauges, and log-bucketed cycle histograms.
//!
//! Metrics are keyed by **interned static names** — the registry holds a
//! `&'static str` per slot and looks it up by pointer-or-content equality,
//! so the hot path never allocates or hashes strings. All arithmetic in
//! the recording path is integer-only and saturating: no floats, no
//! panics on overflow, ever.
//!
//! Histograms use **fixed power-of-two buckets**: bucket 0 holds the
//! value 0, bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i - 1]`. With 65
//! buckets the full `u64` range is covered. Percentiles are resolved to a
//! bucket upper bound with pure integer math — good enough to tell a
//! 408-cycle Speck MAC from an 18-million-cycle whole-memory HMAC, which
//! is the discrimination the paper's cost argument needs.
//!
//! ```
//! use proverguard_telemetry::metrics;
//!
//! metrics::reset();
//! metrics::counter_add("session.retries", 2);
//! metrics::histogram_record("prover.attest_mac.cycles", 18_000_000);
//! let snap = metrics::snapshot();
//! assert_eq!(snap.counter("session.retries"), Some(2));
//! ```

use std::cell::RefCell;

/// Number of histogram buckets: one for zero plus one per bit of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed histogram of cycle counts (or any `u64` quantity).
#[derive(Debug, Clone)]
pub struct CycleHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl CycleHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        CycleHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value lands in: 0 for 0, else `64 - leading_zeros`,
    /// so bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The largest value bucket `index` can hold (`u64::MAX` for the last).
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one observation. Integer-only; count and sum saturate.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] =
            self.buckets[Self::bucket_index(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (integer division), or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Raw bucket counts, for exporters.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Folds another histogram into this one: bucket-wise addition, with
    /// count and sum saturating and max taking the larger. Used to
    /// aggregate per-thread histograms (each gateway worker records into
    /// its own thread-local registry) into one fleet-wide distribution.
    pub fn absorb(&mut self, other: &CycleHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (0–100), resolved to the upper bound of the
    /// bucket holding the rank-`ceil(count * p / 100)` observation and
    /// clamped to the observed maximum. Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = u64::from(p.min(100));
        // ceil(count * p / 100) without overflow; rank >= 1 for p > 0.
        let rank = (u128::from(self.count) * u128::from(p))
            .div_ceil(100)
            .max(1);
        let mut seen: u128 = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += u128::from(n);
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Slot {
    /// Monotonic saturating counter.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(u64),
    /// Log-bucketed distribution (boxed: a histogram is ~0.5 KiB and
    /// would otherwise bloat every counter/gauge slot to its size).
    Histogram(Box<CycleHistogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A name-keyed collection of metrics. Most code uses the thread-local
/// global via the module free functions; an owned registry is handy for
/// tests and for isolating one workload's metrics from another's.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<(&'static str, Slot)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn slot(&mut self, name: &'static str, make: impl FnOnce() -> Slot) -> &mut Slot {
        // Linear scan over interned statics: registries hold tens of
        // names, and a pointer-width compare beats hashing at that size.
        let idx = match self.entries.iter().position(|(n, _)| *n == name) {
            Some(i) => i,
            None => {
                self.entries.push((name, make()));
                self.entries.len() - 1
            }
        };
        &mut self.entries[idx].1
    }

    /// Adds `delta` to the counter `name` (registering it if new).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        match self.slot(name, || Slot::Counter(0)) {
            Slot::Counter(v) => *v = v.saturating_add(delta),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the gauge `name` to `value` (registering it if new).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        match self.slot(name, || Slot::Gauge(0)) {
            Slot::Gauge(v) => *v = value,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Records `value` into the histogram `name` (registering it if new).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram_record(&mut self, name: &'static str, value: u64) {
        match self.slot(name, || Slot::Histogram(Box::default())) {
            Slot::Histogram(h) => h.record(value),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// The counter `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, s)| match s {
            Slot::Counter(v) if *n == name => Some(*v),
            _ => None,
        })
    }

    /// The gauge `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, s)| match s {
            Slot::Gauge(v) if *n == name => Some(*v),
            _ => None,
        })
    }

    /// The histogram `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&CycleHistogram> {
        self.entries.iter().find_map(|(n, s)| match s {
            Slot::Histogram(h) if *n == name => Some(h.as_ref()),
            _ => None,
        })
    }

    /// All entries in registration order.
    #[must_use]
    pub fn entries(&self) -> &[(&'static str, Slot)] {
        &self.entries
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Folds `other` into this registry: counters add, histograms merge
    /// bucket-wise ([`CycleHistogram::absorb`]), and gauges take the
    /// **maximum** of the two values — gauges are last-write-wins within
    /// one thread, so across threads the peak is the only aggregate that
    /// never under-reports (e.g. peak queue depth).
    ///
    /// # Panics
    /// If a name is registered with different metric kinds in the two
    /// registries.
    pub fn merge(&mut self, other: &Registry) {
        for (name, slot) in &other.entries {
            match slot {
                Slot::Counter(v) => self.counter_add(name, *v),
                Slot::Gauge(v) => {
                    let current = self.gauge(name).unwrap_or(0);
                    self.gauge_set(name, current.max(*v));
                }
                Slot::Histogram(h) => match self.slot(name, || Slot::Histogram(Box::default())) {
                    Slot::Histogram(mine) => mine.absorb(h),
                    other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
                },
            }
        }
    }

    /// A plain-text dump: one line per metric, histograms with
    /// count/mean/p50/p90/p99/max.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, slot) in &self.entries {
            match slot {
                Slot::Counter(v) => out.push_str(&format!("{name} = {v}\n")),
                Slot::Gauge(v) => out.push_str(&format!("{name} = {v} (gauge)\n")),
                Slot::Histogram(h) => out.push_str(&format!(
                    "{name}: count={} mean={} p50={} p90={} p99={} max={}\n",
                    h.count(),
                    h.mean(),
                    h.percentile(50),
                    h.percentile(90),
                    h.percentile(99),
                    h.max(),
                )),
            }
        }
        out
    }
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::new());
}

/// Runs `f` with this thread's registry. Do not call metrics free
/// functions from within `f` — the state is already borrowed.
pub fn with<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Adds `delta` to the thread-local counter `name`.
pub fn counter_add(name: &'static str, delta: u64) {
    with(|r| r.counter_add(name, delta));
}

/// Sets the thread-local gauge `name`.
pub fn gauge_set(name: &'static str, value: u64) {
    with(|r| r.gauge_set(name, value));
}

/// Records `value` into the thread-local histogram `name`.
pub fn histogram_record(name: &'static str, value: u64) {
    with(|r| r.histogram_record(name, value));
}

/// A point-in-time copy of this thread's registry.
#[must_use]
pub fn snapshot() -> Registry {
    with(|r| Registry {
        entries: r.entries.clone(),
    })
}

/// Clears this thread's registry.
pub fn reset() {
    with(Registry::clear);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // Satellite: explicit bucket-edge coverage.
        assert_eq!(CycleHistogram::bucket_index(0), 0);
        assert_eq!(CycleHistogram::bucket_index(1), 1);
        assert_eq!(CycleHistogram::bucket_index(2), 2);
        assert_eq!(CycleHistogram::bucket_index(3), 2);
        assert_eq!(CycleHistogram::bucket_index(4), 3);
        assert_eq!(CycleHistogram::bucket_index(7), 3);
        assert_eq!(CycleHistogram::bucket_index(8), 4);
        for i in 1..64 {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(CycleHistogram::bucket_index(low), i, "low edge of {i}");
            assert_eq!(CycleHistogram::bucket_index(high), i, "high edge of {i}");
        }
        assert_eq!(CycleHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(CycleHistogram::bucket_index(1u64 << 63), 64);
        assert_eq!(CycleHistogram::bucket_upper_bound(0), 0);
        assert_eq!(CycleHistogram::bucket_upper_bound(1), 1);
        assert_eq!(CycleHistogram::bucket_upper_bound(4), 15);
        assert_eq!(CycleHistogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = CycleHistogram::new();
        for v in [0u64, 1, 100, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5201);
        assert_eq!(h.max(), 5000);
        assert_eq!(h.mean(), 1040);
        // p50 rank = 3 → third observation (100) → bucket [64,127] → 127.
        assert_eq!(h.percentile(50), 127);
        // p100 resolves to the observed max, not a bucket bound.
        assert_eq!(h.percentile(100), 5000);
        assert_eq!(h.percentile(0), 0);
    }

    #[test]
    fn histogram_saturates_instead_of_overflowing() {
        let mut h = CycleHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(99), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = CycleHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = Registry::new();
        r.counter_add("c", 1);
        r.counter_add("c", 2);
        r.gauge_set("g", 7);
        r.gauge_set("g", 4);
        r.histogram_record("h", 10);
        assert_eq!(r.counter("c"), Some(3));
        assert_eq!(r.gauge("g"), Some(4));
        assert_eq!(r.histogram("h").unwrap().count(), 1);
        assert_eq!(r.counter("missing"), None);
        let text = r.render();
        assert!(text.contains("c = 3"));
        assert!(text.contains("g = 4 (gauge)"));
        assert!(text.contains("h: count=1"));
    }

    #[test]
    fn counter_saturates() {
        let mut r = Registry::new();
        r.counter_add("c", u64::MAX);
        r.counter_add("c", 10);
        assert_eq!(r.counter("c"), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let mut r = Registry::new();
        r.counter_add("x", 1);
        r.gauge_set("x", 1);
    }

    #[test]
    fn merge_folds_worker_registries() {
        let mut a = Registry::new();
        a.counter_add("bytes", 100);
        a.gauge_set("queue.peak", 3);
        a.histogram_record("latency", 8);
        a.histogram_record("latency", 16);

        let mut b = Registry::new();
        b.counter_add("bytes", 50);
        b.counter_add("busy", 2);
        b.gauge_set("queue.peak", 7);
        b.histogram_record("latency", 1024);

        a.merge(&b);
        assert_eq!(a.counter("bytes"), Some(150));
        assert_eq!(a.counter("busy"), Some(2));
        // Gauges merge by max: the fleet-wide peak.
        assert_eq!(a.gauge("queue.peak"), Some(7));
        let h = a.histogram("latency").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 8 + 16 + 1024);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn absorb_saturates_and_keeps_buckets() {
        let mut a = CycleHistogram::new();
        a.record(u64::MAX);
        let mut b = CycleHistogram::new();
        b.record(1);
        a.absorb(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), u64::MAX); // saturated
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.buckets()[CycleHistogram::bucket_index(1)], 1);
    }

    #[test]
    #[should_panic(expected = "not a histogram")]
    fn merge_kind_mismatch_panics() {
        let mut a = Registry::new();
        a.counter_add("x", 1);
        let mut b = Registry::new();
        b.histogram_record("x", 1);
        a.merge(&b);
    }

    #[test]
    fn thread_local_free_functions() {
        reset();
        counter_add("tl.c", 5);
        gauge_set("tl.g", 9);
        histogram_record("tl.h", 42);
        let snap = snapshot();
        assert_eq!(snap.counter("tl.c"), Some(5));
        assert_eq!(snap.gauge("tl.g"), Some(9));
        assert_eq!(snap.histogram("tl.h").unwrap().max(), 42);
        reset();
        assert!(snapshot().entries().is_empty());
    }
}
