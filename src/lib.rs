//! Umbrella crate for the ProverGuard reproduction suite.
//!
//! This package exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests in `tests/`. The actual library surface
//! lives in the workspace crates:
//!
//! - [`proverguard_crypto`] — from-scratch cryptographic primitives (Table 1).
//! - [`proverguard_hw`] — FPGA resource estimation (Table 3, §6.3).
//! - [`proverguard_mcu`] — simulated low-end MCU with an execution-aware MPU.
//! - [`proverguard_attest`] — the paper's contribution: prover-side DoS
//!   protection for remote attestation.
//! - [`proverguard_adversary`] — `Adv_ext` / `Adv_roam` attack engines.

pub use proverguard_adversary as adversary;
pub use proverguard_attest as attest;
pub use proverguard_crypto as crypto;
pub use proverguard_hw as hw;
pub use proverguard_mcu as mcu;
